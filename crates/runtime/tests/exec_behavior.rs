//! Behavioral tests of the executor beyond bit-equivalence: thread scaling
//! hooks, wavefront execution of forward loops, observer tracing, and
//! degenerate shapes.

use wf_runtime::AccessObserver;
use wf_wisefuse::plan_from_optimized;

/// Counts accesses (stand-in for the cache simulator, which lives
/// downstream of this crate).
#[derive(Default)]
struct Counter {
    total: u64,
    writes: u64,
}

impl AccessObserver for Counter {
    fn access(&mut self, _array: usize, _offset: usize, is_write: bool) {
        self.total += 1;
        if is_write {
            self.writes += 1;
        }
    }
}
use wf_harness::pool::ThreadPool;
use wf_runtime::{execute_reference, ExecContext, ProgramData, WfError};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::{optimize, Model};

fn recurrence_2d() -> Scop {
    // Gauss-Seidel-like recurrence on both axes: every legal outer
    // hyperplane carries a dependence (forward loop), giving the wavefront
    // case once an inner parallel hyperplane exists.
    let mut b = ScopBuilder::new("wave", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 1)
        .bounds(1, Aff::konst(1), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0) - 1, Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1) - 1])
        .rhs(Expr::mul(
            Expr::Const(0.5),
            Expr::add(Expr::Load(0), Expr::Load(1)),
        ))
        .done();
    b.build()
}

#[test]
fn wavefront_execution_is_correct_with_threads() {
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Maxfuse).unwrap();
    assert!(!opt.outer_parallel(), "outer loop must be forward");
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &[16]);
    init.init_random(5);
    let mut oracle = init.clone();
    execute_reference(&scop, &mut oracle);
    for threads in [2usize, 4, 8] {
        let mut data = init.clone();
        ExecContext::with_threads(threads)
            .execute(&scop, &opt.transformed, &plan, &mut data)
            .unwrap();
        assert_eq!(data.max_abs_diff(&oracle), 0.0, "{threads} threads");
    }
}

#[test]
fn borrowed_pool_matches_global_pool() {
    // A context over a caller-owned pool sizes itself to the pool and
    // produces the same bytes as the global-pool path.
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Maxfuse).unwrap();
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &[16]);
    init.init_random(5);
    let mut oracle = init.clone();
    execute_reference(&scop, &mut oracle);
    let pool = ThreadPool::new(4);
    let ctx = ExecContext::new(&pool);
    assert_eq!(ctx.threads(), 4, "context sizes itself to the pool");
    let mut data = init.clone();
    ctx.execute(&scop, &opt.transformed, &plan, &mut data)
        .unwrap();
    assert_eq!(data.max_abs_diff(&oracle), 0.0);
}

#[test]
fn observer_sees_every_access() {
    // S0 makes 1 write + 1 read per instance over N=8 -> 16 accesses
    // (domain is 1..N-1, so 7 instances, 14 accesses).
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Nofuse).unwrap();
    let plan = plan_from_optimized(&scop, &opt);
    let params = [8i128];
    let mut data = ProgramData::new(&scop, &params);
    let mut obs = Counter::default();
    ExecContext::serial()
        .execute_observed(&scop, &opt.transformed, &plan, &mut data, &mut obs)
        .unwrap();
    // Domain is (1..N-1)^2 = 7*7 instances; 2 reads + 1 write each.
    assert_eq!(obs.total, 7 * 7 * 3);
    assert_eq!(obs.writes, 7 * 7);
}

#[test]
fn tracing_rejects_parallel_runs() {
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Nofuse).unwrap();
    let plan = plan_from_optimized(&scop, &opt);
    let params = [8i128];
    let mut data = ProgramData::new(&scop, &params);
    let mut obs = Counter::default();
    let err = ExecContext::with_threads(4)
        .execute_observed(&scop, &opt.transformed, &plan, &mut data, &mut obs)
        .unwrap_err();
    assert!(
        matches!(&err, WfError::Invalid { message }
            if message.contains("address tracing requires serial execution")),
        "typed Invalid error, got {err:?}"
    );
}

#[test]
fn more_threads_than_iterations_is_fine() {
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Maxfuse).unwrap();
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &[4]);
    init.init_random(1);
    let mut oracle = init.clone();
    execute_reference(&scop, &mut oracle);
    let mut data = init.clone();
    ExecContext::with_threads(64)
        .execute(&scop, &opt.transformed, &plan, &mut data)
        .unwrap();
    assert_eq!(data.max_abs_diff(&oracle), 0.0);
}

/// Zero-depth (scalar) statements execute exactly once.
#[test]
fn scalar_statement_runs_once() {
    let mut b = ScopBuilder::new("s", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let acc = b.scalar("acc");
    let a = b.array("A", &[Aff::param(0)]);
    b.stmt("S0", 0, &[0])
        .write(acc, &[])
        .rhs(Expr::Const(3.5))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .read(acc, &[])
        .rhs(Expr::Load(0))
        .done();
    let scop = b.build();
    for model in Model::ALL {
        let opt = optimize(&scop, model).unwrap();
        let plan = plan_from_optimized(&scop, &opt);
        let mut data = ProgramData::new(&scop, &[5]);
        ExecContext::serial()
            .execute(&scop, &opt.transformed, &plan, &mut data)
            .unwrap();
        assert_eq!(data.arrays[0].get(&[]), 3.5, "{model:?}");
        for i in 0..5 {
            assert_eq!(data.arrays[1].get(&[i]), 3.5, "{model:?} A[{i}]");
        }
    }
}

/// Built-in verification: a correct schedule passes, and the verify knob
/// produces the same bytes as an unverified run.
#[test]
fn builtin_verification_accepts_correct_schedules() {
    let scop = recurrence_2d();
    let opt = optimize(&scop, Model::Wisefuse).unwrap();
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &[16]);
    init.init_random(9);
    let mut verified = init.clone();
    wf_runtime::ExecContext::with_options(wf_runtime::ExecOptions::new().threads(4).verify(true))
        .execute(&scop, &opt.transformed, &plan, &mut verified)
        .expect("a legal schedule must verify");
    let mut plain = init.clone();
    ExecContext::with_threads(4)
        .execute(&scop, &opt.transformed, &plan, &mut plain)
        .unwrap();
    assert_eq!(verified.max_abs_diff(&plain), 0.0);
}
