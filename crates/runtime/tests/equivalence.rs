//! The central correctness property of the whole stack: for every fusion
//! model, executing the transformed program produces **bit-for-bit** the
//! same arrays as the original program order. (All models reorder the same
//! floating-point operations along legal schedules; none changes any
//! operation, so exact equality is required, not approximate.)

use wf_runtime::{execute_reference, ExecContext, ProgramData};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::plan_from_optimized;
use wf_wisefuse::{optimize, Model};

fn check_all_models(scop: &Scop, params: &[i128]) {
    let mut oracle = ProgramData::new(scop, params);
    oracle.init_random(7);
    let initial = oracle.clone();
    execute_reference(scop, &mut oracle);

    for model in Model::ALL {
        let opt = optimize(scop, model)
            .unwrap_or_else(|e| panic!("{}: {model:?} failed: {e}", scop.name));
        let plan = plan_from_optimized(scop, &opt);
        for threads in [1usize, 4] {
            let mut data = initial.clone();
            ExecContext::with_threads(threads)
                .execute(scop, &opt.transformed, &plan, &mut data)
                .unwrap();
            assert_eq!(
                data.max_abs_diff(&oracle),
                0.0,
                "{}: model {model:?} threads {threads} diverges from original",
                scop.name
            );
        }
    }
}

/// Producer/consumer pair.
#[test]
fn equivalence_producer_consumer() {
    let mut b = ScopBuilder::new("pc", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let bb = b.array("B", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(bb, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(3.0)))
        .done();
    check_all_models(&b.build(), &[17]);
}

/// advect-like: fusion legal only with shifting; wisefuse cuts instead.
#[test]
fn equivalence_advect_like() {
    let mut b = ScopBuilder::new("advect2", &["N"]);
    b.context_ge(Aff::param(0) - 8);
    let a = b.array("A", &[Aff::param(0)]);
    let out = b.array("B", &[Aff::param(0)]);
    b.stmt("S1", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S4", 1, &[1, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 2)
        .write(out, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .read(a, &[Aff::iter(0) + 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
        .done();
    check_all_models(&b.build(), &[23]);
}

/// gemver's interchange-requiring pair, 2-D.
#[test]
fn equivalence_gemver_core() {
    let mut b = ScopBuilder::new("gemver2", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let u1 = b.array("u1", &[Aff::param(0)]);
    let v1 = b.array("v1", &[Aff::param(0)]);
    let x = b.array("x", &[Aff::param(0)]);
    let y = b.array("y", &[Aff::param(0)]);
    b.stmt("S1", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1)])
        .read(u1, &[Aff::iter(0)])
        .read(v1, &[Aff::iter(1)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    b.stmt("S2", 2, &[1, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(x, &[Aff::iter(0)])
        .read(x, &[Aff::iter(0)])
        .read(a, &[Aff::iter(1), Aff::iter(0)])
        .read(y, &[Aff::iter(1)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    check_all_models(&b.build(), &[9]);
}

/// Carried recurrence fused with an independent statement: the recurrence
/// loop must stay serial and ordered.
#[test]
fn equivalence_recurrence_mix() {
    let mut b = ScopBuilder::new("recmix", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Const(1.0)))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(0.5)))
        .done();
    check_all_models(&b.build(), &[13]);
}

/// Triangular (lu-like) domain with deep self-dependences.
#[test]
fn equivalence_triangular() {
    let mut b = ScopBuilder::new("lu-ish", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 3, &[0, 0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::iter(0) + 1, Aff::param(0) - 1)
        .bounds(2, Aff::iter(0) + 1, Aff::param(0) - 1)
        .write(a, &[Aff::iter(1), Aff::iter(2)])
        .read(a, &[Aff::iter(1), Aff::iter(2)])
        .read(a, &[Aff::iter(1), Aff::iter(0)])
        .read(a, &[Aff::iter(0), Aff::iter(2)])
        .rhs(Expr::sub(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    check_all_models(&b.build(), &[8]);
}

/// Mixed dimensionality (2-D producer, 1-D consumer).
#[test]
fn equivalence_mixed_dims() {
    let mut b = ScopBuilder::new("mixdim", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let r = b.array("r", &[Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .rhs(Expr::add(Expr::Iter(0), Expr::Iter(1)))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(r, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0), Aff::param(0) - 1])
        .rhs(Expr::Load(0))
        .done();
    check_all_models(&b.build(), &[7]);
}
