//! Tiled execution must remain bit-for-bit equivalent to the original
//! program: tiling only reorders iterations *within* the permutability
//! guarantees the scheduler established.

use wf_codegen::tiling::{bands, build_tiled_plan, default_tiles};
use wf_deps::analyze;
use wf_runtime::{execute_reference, ExecContext, ProgramData};
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, Maxfuse, PlutoConfig, Smartfuse};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};

fn matmul() -> Scop {
    let mut b = ScopBuilder::new("mm", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let bb = b.array("B", &[Aff::param(0), Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 3, &[0, 0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .bounds(2, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0), Aff::iter(1)])
        .read(c, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(2)])
        .read(bb, &[Aff::iter(1), Aff::iter(2)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    b.build()
}

/// Two fused stencil producers + consumer (fusion composes with tiling).
fn fused_stencils() -> Scop {
    let mut b = ScopBuilder::new("fs", &["N"]);
    b.context_ge(Aff::param(0) - 8);
    let src = b.array("SRC", &[Aff::param(0) + 2, Aff::param(0) + 2]);
    let t1 = b.array("T1", &[Aff::param(0) + 2, Aff::param(0) + 2]);
    let t2 = b.array("T2", &[Aff::param(0) + 2, Aff::param(0) + 2]);
    let (i, j) = (Aff::iter(0), Aff::iter(1));
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0))
        .bounds(1, Aff::konst(1), Aff::param(0))
        .write(t1, &[i.clone(), j.clone()])
        .read(src, &[i.clone() - 1, j.clone()])
        .read(src, &[i.clone() + 1, j.clone()])
        .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
        .done();
    b.stmt("S1", 2, &[1, 0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0))
        .bounds(1, Aff::konst(1), Aff::param(0))
        .write(t2, &[i.clone(), j.clone()])
        .read(t1, &[i.clone(), j.clone()])
        .read(src, &[i, j])
        .rhs(Expr::mul(Expr::Load(0), Expr::Load(1)))
        .done();
    b.build()
}

fn check_tiled(scop: &Scop, params: &[i128], sizes: &[i128]) {
    let ddg = analyze(scop);
    let mut init = ProgramData::new(scop, params);
    init.init_random(17);
    let mut oracle = init.clone();
    execute_reference(scop, &mut oracle);
    for strat in [&Maxfuse as &dyn wf_schedule::FusionStrategy, &Smartfuse] {
        let t = schedule_scop(scop, &ddg, strat, &PlutoConfig::default()).unwrap();
        let p = props::analyze(scop, &ddg, &t);
        let par: Vec<Vec<bool>> = p
            .iter()
            .map(|row| {
                row.iter()
                    .map(|x| matches!(x, Some(LoopProp::Parallel)))
                    .collect()
            })
            .collect();
        for &size in sizes {
            let tiles = default_tiles(&t, size);
            let plan = build_tiled_plan(scop, &t, par.clone(), &tiles);
            for threads in [1usize, 3] {
                let mut data = init.clone();
                ExecContext::with_threads(threads)
                    .execute(scop, &t, &plan, &mut data)
                    .unwrap();
                assert_eq!(
                    data.max_abs_diff(&oracle),
                    0.0,
                    "{}: tile size {size}, {threads} threads diverges",
                    scop.name
                );
            }
        }
    }
}

#[test]
fn tiled_matmul_is_equivalent() {
    check_tiled(&matmul(), &[13], &[2, 4, 5]);
}

#[test]
fn tiled_fused_stencils_are_equivalent() {
    check_tiled(&fused_stencils(), &[11], &[3, 4]);
}

#[test]
fn matmul_band_is_tileable() {
    let scop = matmul();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Maxfuse, &PlutoConfig::default()).unwrap();
    let bs = bands(&t);
    assert!(bs.iter().any(|b| b.len() >= 2), "bands: {bs:?}");
    assert!(!default_tiles(&t, 32).is_empty());
}

/// Tile sizes larger than the domain degenerate gracefully (one tile).
#[test]
fn oversized_tiles_are_harmless() {
    check_tiled(&matmul(), &[6], &[64]);
}
