//! End-to-end validation of the C backend: emit C for a kernel under every
//! fusion model, compile it with the system C compiler, run it, and compare
//! its output-state hash **bit for bit** with the interpreting executor.
//!
//! Skips silently when no C compiler is installed (CI images without gcc).

use std::io::Write as _;
use std::process::Command;
use wf_codegen::emit_c;
use wf_runtime::{ExecContext, ProgramData};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::plan_from_optimized;
use wf_wisefuse::{optimize, Model};

fn cc() -> Option<&'static str> {
    ["cc", "gcc", "clang"]
        .into_iter()
        .find(|&cand| Command::new(cand).arg("--version").output().is_ok())
        .map(|v| v as _)
}

fn check_c_matches_interpreter(scop: &Scop, params: &[i128], seed: u64) {
    let Some(cc) = cc() else {
        eprintln!("no C compiler found; skipping C backend test");
        return;
    };
    let dir = std::env::temp_dir().join(format!("wf_cemit_{}_{}", scop.name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for model in Model::ALL {
        let opt = optimize(scop, model).unwrap();
        let plan = plan_from_optimized(scop, &opt);
        // Interpreter side.
        let mut data = ProgramData::new(scop, params);
        data.init_lcg(seed);
        ExecContext::serial()
            .execute(scop, &opt.transformed, &plan, &mut data)
            .unwrap();
        let want = data.bit_hash();
        // C side.
        let source = emit_c(scop, &opt.transformed, &plan, params, seed);
        let c_path = dir.join(format!("{}_{}.c", scop.name, model.name()));
        let bin_path = dir.join(format!("{}_{}", scop.name, model.name()));
        std::fs::File::create(&c_path)
            .unwrap()
            .write_all(source.as_bytes())
            .unwrap();
        let compile = Command::new(cc)
            .args(["-O1", "-o"])
            .arg(&bin_path)
            .arg(&c_path)
            .arg("-lm")
            .output()
            .expect("compiler runs");
        assert!(
            compile.status.success(),
            "{}: {model:?}: C compilation failed:\n{}\n--- source ---\n{source}",
            scop.name,
            String::from_utf8_lossy(&compile.stderr)
        );
        let run = Command::new(&bin_path).output().expect("binary runs");
        assert!(
            run.status.success(),
            "{}: {model:?}: binary crashed",
            scop.name
        );
        let got: u64 = String::from_utf8_lossy(&run.stdout).trim().parse().unwrap();
        assert_eq!(
            got, want,
            "{}: {model:?}: compiled C diverges from the interpreter",
            scop.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn c_backend_producer_consumer() {
    let mut b = ScopBuilder::new("pc", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let bb = b.array("B", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(bb, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(3.0)))
        .done();
    check_c_matches_interpreter(&b.build(), &[33], 1);
}

#[test]
fn c_backend_gemver_like() {
    let mut b = ScopBuilder::new("gvl", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let x = b.array("x", &[Aff::param(0)]);
    let y = b.array("y", &[Aff::param(0)]);
    b.stmt("S1", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1)])
        .rhs(Expr::add(Expr::Load(0), Expr::Const(1.5)))
        .done();
    b.stmt("S2", 2, &[1, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(x, &[Aff::iter(0)])
        .read(x, &[Aff::iter(0)])
        .read(a, &[Aff::iter(1), Aff::iter(0)])
        .read(y, &[Aff::iter(1)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    check_c_matches_interpreter(&b.build(), &[12], 2);
}

#[test]
fn c_backend_triangular() {
    let mut b = ScopBuilder::new("tri", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 1)
        .bounds(1, Aff::iter(0), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0) - 1, Aff::iter(1)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(0.99)))
        .done();
    check_c_matches_interpreter(&b.build(), &[11], 3);
}

#[test]
fn c_backend_shifted_fusion() {
    // maxfuse shifts the consumer here: exercises non-zero schedule
    // constants in the emitted guards.
    let mut b = ScopBuilder::new("shift", &["N"]);
    b.context_ge(Aff::param(0) - 8);
    let a = b.array("A", &[Aff::param(0)]);
    let out = b.array("B", &[Aff::param(0)]);
    b.stmt("S1", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S4", 1, &[1, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 2)
        .write(out, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .read(a, &[Aff::iter(0) + 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
        .done();
    check_c_matches_interpreter(&b.build(), &[21], 4);
}
