//! The oracle executor: runs a SCoP in **original program order**,
//! independently of the scheduler and code generator, by enumerating every
//! statement instance, sorting by the interleaved `(β0, i1, β1, …)` vector,
//! and interpreting in that order. Transformed executions must reproduce
//! its results bit-for-bit (all schedules are legal reorderings of the same
//! floating-point operations... provided the transformation is indeed
//! legal, which is exactly what the equivalence tests establish).

use crate::data::ProgramData;
use crate::exec::exec_statement;
use wf_polyhedra::Polyhedron;
use wf_scop::Scop;

/// Execute the SCoP in original program order over `data`.
///
/// Intended for correctness oracles at small problem sizes; it materializes
/// and sorts every statement instance.
pub fn execute_reference(scop: &Scop, data: &mut ProgramData) {
    let maxd = scop.statements.iter().map(|s| s.depth).max().unwrap_or(0);
    let params = data.params.clone();
    // (original-order key, statement, iters)
    let mut instances: Vec<(Vec<i128>, usize, Vec<i128>)> = Vec::new();
    for (s, st) in scop.statements.iter().enumerate() {
        let mut cs = st.domain.clone();
        for (j, &p) in params.iter().enumerate() {
            cs.add_fixed(st.depth + j, p);
        }
        let points = Polyhedron::from(cs)
            .enumerate(200_000_000)
            .expect("reference domains are bounded and small");
        for point in points {
            let iters: Vec<i128> = point[..st.depth].to_vec();
            let mut key = Vec::with_capacity(2 * maxd + 1);
            for level in 0..=maxd {
                key.push(*st.beta.get(level).unwrap_or(&0) as i128);
                if level < maxd {
                    key.push(iters.get(level).copied().unwrap_or(0));
                }
            }
            instances.push((key, s, iters));
        }
    }
    instances.sort();
    let mut none = None;
    for (_, s, iters) in instances {
        exec_statement(scop, s, &iters, data, &mut none);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    /// for i: A[i] = i; for i: B[i] = A[i] * 2  =>  B[i] == 2 i.
    #[test]
    fn sequential_nests() {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 2);
        let a = b.array("A", &[Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(bb, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::mul(Expr::Load(0), Expr::Const(2.0)))
            .done();
        let scop = b.build();
        let mut d = ProgramData::new(&scop, &[5]);
        execute_reference(&scop, &mut d);
        for i in 0..5 {
            assert_eq!(d.arrays[1].get(&[i]), 2.0 * i as f64);
        }
    }

    /// Interleaving inside one nest: S0 then S1 per iteration.
    /// S0: A[i] = i;  S1: A[i] = A[i] + 1  =>  A[i] == i + 1.
    #[test]
    fn intra_nest_interleaving() {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 2);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[0, 1])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::add(Expr::Load(0), Expr::Const(1.0)))
            .done();
        let scop = b.build();
        let mut d = ProgramData::new(&scop, &[4]);
        execute_reference(&scop, &mut d);
        for i in 0..4 {
            assert_eq!(d.arrays[0].get(&[i]), i as f64 + 1.0);
        }
    }

    /// Loop-carried recurrence: A[i] = A[i-1] + 1 with A[0] preset.
    #[test]
    fn carried_recurrence() {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 2);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) - 1])
            .rhs(Expr::add(Expr::Load(0), Expr::Const(1.0)))
            .done();
        let scop = b.build();
        let mut d = ProgramData::new(&scop, &[6]);
        d.arrays[0].set(&[0], 10.0);
        execute_reference(&scop, &mut d);
        for i in 0..6 {
            assert_eq!(d.arrays[0].get(&[i]), 10.0 + i as f64);
        }
    }
}
