//! Program data: named dense `f64` tensors.

use wf_harness::{Lcg64, SplitMix64};
use wf_scop::Scop;

/// A dense row-major tensor of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    /// Extent per dimension (empty for a scalar).
    pub extents: Vec<usize>,
    /// Row-major contents (length = product of extents, 1 for a scalar).
    pub data: Vec<f64>,
}

impl Tensor {
    /// An all-zero tensor.
    #[must_use]
    pub fn zeros(extents: Vec<usize>) -> Tensor {
        let len = extents.iter().product::<usize>().max(1);
        Tensor {
            extents,
            data: vec![0.0; len],
        }
    }

    /// Row-major linear offset of a subscript vector.
    ///
    /// # Panics
    /// Panics (in debug) on arity mismatch and (always) on out-of-range
    /// subscripts — an out-of-bounds access in a transformed program is a
    /// scheduling bug we must not mask.
    #[must_use]
    pub fn offset(&self, idx: &[i128]) -> usize {
        debug_assert_eq!(idx.len(), self.extents.len(), "subscript arity");
        let mut off = 0usize;
        for (k, &i) in idx.iter().enumerate() {
            let i = usize::try_from(i).unwrap_or_else(|_| {
                panic!(
                    "negative subscript {i} in dim {k} (extents {:?})",
                    self.extents
                )
            });
            assert!(
                i < self.extents[k],
                "subscript {i} out of range dim {k} (extents {:?})",
                self.extents
            );
            off = off * self.extents[k] + i;
        }
        off
    }

    /// Read an element.
    #[must_use]
    pub fn get(&self, idx: &[i128]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Write an element.
    pub fn set(&mut self, idx: &[i128], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }
}

/// All arrays of a SCoP plus the parameter values of this run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramData {
    /// One tensor per SCoP array, same order.
    pub arrays: Vec<Tensor>,
    /// Parameter values.
    pub params: Vec<i128>,
}

impl ProgramData {
    /// Allocate zero-initialized arrays for the given parameter values.
    ///
    /// # Panics
    /// Panics if the parameters violate the SCoP context.
    #[must_use]
    pub fn new(scop: &Scop, params: &[i128]) -> ProgramData {
        assert_eq!(params.len(), scop.n_params(), "parameter arity");
        assert!(
            scop.context.contains(params),
            "parameters {params:?} violate the SCoP context"
        );
        let arrays = scop
            .arrays
            .iter()
            .map(|a| Tensor::zeros(a.extents(params)))
            .collect();
        ProgramData {
            arrays,
            params: params.to_vec(),
        }
    }

    /// Deterministically fill every array with pseudo-random values in
    /// `(0, 1)` — identical for identical seeds, so different fusion models
    /// can be compared bit-for-bit. The generator is the harness's
    /// [`SplitMix64`], so the stream is pinned forever by the golden-value
    /// tests below and never shifts under toolchain or dependency changes.
    pub fn init_random(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        for t in &mut self.arrays {
            for v in &mut t.data {
                *v = rng.gen_f64(0.01, 1.0);
            }
        }
    }

    /// Maximum absolute element-wise difference across all arrays.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &ProgramData) -> f64 {
        assert_eq!(self.arrays.len(), other.arrays.len());
        let mut m = 0.0f64;
        for (a, b) in self.arrays.iter().zip(&other.arrays) {
            assert_eq!(a.extents, b.extents, "shape mismatch");
            for (x, y) in a.data.iter().zip(&b.data) {
                m = m.max((x - y).abs());
            }
        }
        m
    }

    /// Total bytes of array data (for reporting).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.arrays
            .iter()
            .map(|t| t.data.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn scop() -> Scop {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 2);
        let a = b.array("A", &[Aff::param(0), Aff::param(0) + 1]);
        let _ = b.scalar("s");
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0), Aff::zero()])
            .rhs(Expr::Const(1.0))
            .done();
        b.build()
    }

    #[test]
    fn allocation_respects_extents() {
        let d = ProgramData::new(&scop(), &[4]);
        assert_eq!(d.arrays[0].extents, vec![4, 5]);
        assert_eq!(d.arrays[0].data.len(), 20);
        assert_eq!(d.arrays[1].data.len(), 1, "scalar holds one element");
    }

    #[test]
    fn row_major_offsets() {
        let t = Tensor::zeros(vec![3, 4]);
        assert_eq!(t.offset(&[0, 0]), 0);
        assert_eq!(t.offset(&[0, 3]), 3);
        assert_eq!(t.offset(&[1, 0]), 4);
        assert_eq!(t.offset(&[2, 3]), 11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        let t = Tensor::zeros(vec![3]);
        let _ = t.offset(&[3]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(vec![2, 2]);
        t.set(&[1, 0], 7.5);
        assert_eq!(t.get(&[1, 0]), 7.5);
        assert_eq!(t.get(&[0, 1]), 0.0);
    }

    #[test]
    fn deterministic_init() {
        let mut a = ProgramData::new(&scop(), &[4]);
        let mut b = ProgramData::new(&scop(), &[4]);
        a.init_random(42);
        b.init_random(42);
        assert_eq!(a, b);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let mut c = ProgramData::new(&scop(), &[4]);
        c.init_random(43);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    #[should_panic(expected = "violate the SCoP context")]
    fn context_enforced() {
        let _ = ProgramData::new(&scop(), &[1]);
    }

    /// Golden values for the benchmark seed (2024). These pin the
    /// [`wf_harness::SplitMix64`] stream behind `init_random`: if they ever
    /// change, every recorded `BENCH_*.json` baseline and cross-model
    /// bit-for-bit comparison is invalidated, so treat a failure here as a
    /// harness regression, not a test to update.
    #[test]
    fn golden_values_for_seed_2024() {
        let mut d = ProgramData::new(&scop(), &[4]);
        d.init_random(2024);
        let got: Vec<u64> = d.arrays[0].data[..4].iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got,
            vec![
                0x3fe4_0c99_2bb9_a39b, // 0.6265378812796486
                0x3fbb_33d4_155f_1970, // 0.10625958940281577
                0x3fd3_8ecb_08f5_5a33, // 0.30559039950222483
                0x3fc0_00d0_91c7_1233, // 0.12502486341522143
            ]
        );
    }
}

impl ProgramData {
    /// Deterministic fill with a documented 64-bit LCG (Knuth MMIX
    /// constants), producing values in `[0.01, 1.0)`. Unlike
    /// [`ProgramData::init_random`], this generator is trivially
    /// reproducible from C — the emitted-C backend uses the identical
    /// recurrence so interpreter and compiled executions can be compared
    /// bit-for-bit.
    pub fn init_lcg(&mut self, seed: u64) {
        let mut rng = Lcg64::new(seed);
        for t in &mut self.arrays {
            for v in &mut t.data {
                *v = 0.01 + rng.next_f64() * 0.99;
            }
        }
    }

    /// FNV-1a hash over the raw bits of every element, array by array —
    /// the exact-equality fingerprint printed by the emitted C programs.
    #[must_use]
    pub fn bit_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in &self.arrays {
            for v in &t.data {
                h ^= v.to_bits();
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod lcg_tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn scop() -> wf_scop::Scop {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 2);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.build()
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = ProgramData::new(&scop(), &[16]);
        let mut b = ProgramData::new(&scop(), &[16]);
        a.init_lcg(7);
        b.init_lcg(7);
        assert_eq!(a, b);
        assert!(a.arrays[0].data.iter().all(|&v| (0.01..1.0).contains(&v)));
        let mut c = ProgramData::new(&scop(), &[16]);
        c.init_lcg(8);
        assert_ne!(a, c);
    }

    #[test]
    fn bit_hash_distinguishes() {
        let mut a = ProgramData::new(&scop(), &[16]);
        a.init_lcg(7);
        let h1 = a.bit_hash();
        a.arrays[0].set(&[3], 42.0);
        assert_ne!(a.bit_hash(), h1);
    }
}
