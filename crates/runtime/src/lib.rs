//! Interpreting executor for transformed SCoPs.
//!
//! This crate stands in for "compile the transformed C with icc and run on
//! the Xeon": it executes an [`wf_codegen::ExecPlan`] over real `f64`
//! tensors in real memory, with
//!
//! * **coarse-grained parallelism**: the outermost parallel loop dimension
//!   of each fusion partition is split into contiguous chunks across the
//!   shared [`wf_harness::pool::ThreadPool`] — worker startup is amortized
//!   across kernel launches instead of paid per parallel band,
//! * **wavefront execution**: when the outer loop is a forward-dependence
//!   (pipelined) loop, inner parallel dimensions are parallelized instead —
//!   paying a pool fork/join barrier per outer iteration, the "constant
//!   communication cost after each wavefront" the paper describes,
//! * **panic containment**: a faulting partition surfaces as a typed
//!   [`WfError::JobPanic`] instead of aborting the process,
//! * an [`AccessObserver`] hook through which the cache simulator taps the
//!   exact address trace (serial execution only).
//!
//! Everything goes through the [`ExecContext`] handle — pool binding plus
//! [`ExecOptions`], with the environment (`WF_THREADS`) parsed exactly
//! once at [`ExecContext::from_env`].
//!
//! Interpreter overhead is uniform across fusion models, so *relative*
//! timings between models are meaningful — the quantity Figure 7 reports.

#![warn(missing_docs)]

pub mod data;
pub mod exec;
pub mod reference;

pub use data::{ProgramData, Tensor};
pub use exec::{AccessObserver, ExecContext, ExecOptions};
pub use reference::execute_reference;
pub use wf_harness::WfError;
