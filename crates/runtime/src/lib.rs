//! Interpreting executor for transformed SCoPs.
//!
//! This crate stands in for "compile the transformed C with icc and run on
//! the Xeon": it executes an [`wf_codegen::ExecPlan`] over real `f64`
//! tensors in real memory, with
//!
//! * **coarse-grained parallelism**: the outermost parallel loop dimension
//!   of each fusion partition is split across scoped threads,
//! * **wavefront execution**: when the outer loop is a forward-dependence
//!   (pipelined) loop, inner parallel dimensions are parallelized instead —
//!   paying a thread fork/join barrier per outer iteration, the "constant
//!   communication cost after each wavefront" the paper describes,
//! * an [`AccessObserver`] hook through which the cache simulator taps the
//!   exact address trace (serial execution only).
//!
//! Interpreter overhead is uniform across fusion models, so *relative*
//! timings between models are meaningful — the quantity Figure 7 reports.

#![warn(missing_docs)]

pub mod data;
pub mod exec;
pub mod reference;

pub use data::{ProgramData, Tensor};
pub use exec::{execute_plan, AccessObserver, ExecOptions};
pub use reference::execute_reference;
