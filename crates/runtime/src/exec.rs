//! The plan executor, fronted by [`ExecContext`].
//!
//! All parallel-band execution runs on the shared
//! [`wf_harness::pool::ThreadPool`] — the same substrate the optimizer's
//! model jobs and bench-all already use — via borrowed fork/join
//! ([`ThreadPool::try_scope`]). Iterations are split into deterministic
//! contiguous chunks (the same iteration→chunk mapping at every worker
//! count, so results are byte-identical from 1 thread to N), and a panic
//! in one partition is contained by the pool and surfaced as a typed
//! [`WfError::JobPanic`] instead of aborting the process.

use crate::data::ProgramData;
use crate::reference::execute_reference;
use wf_codegen::plan::{guard, ExecPlan, StmtPlan};
use wf_harness::pool::{self, ThreadPool};
use wf_harness::{fault, obs, WfError};
use wf_schedule::pluto::Transformed;
use wf_schedule::transform::DimKind;
use wf_scop::Scop;

/// Observes every array element access (serial execution only); the cache
/// simulator implements this to collect the address trace.
pub trait AccessObserver {
    /// Called once per element access with the array id, its linear offset,
    /// and whether the access writes.
    fn access(&mut self, array: usize, offset: usize, is_write: bool);

    /// Called once per executed statement instance, before its accesses.
    /// Default: ignored. The performance model uses this to attribute work.
    fn begin_statement(&mut self, stmt: usize) {
        let _ = stmt;
    }
}

/// Execution options, built fluently in the `Optimizer` style:
///
/// ```
/// use wf_runtime::ExecOptions;
/// let opts = ExecOptions::new().threads(4).verify(true);
/// assert_eq!(opts.n_threads(), 4);
/// assert!(opts.verifies());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    threads: usize,
    verify: bool,
    per_band_pool: bool,
}

impl ExecOptions {
    /// Serial execution, no verification.
    #[must_use]
    pub fn new() -> ExecOptions {
        ExecOptions {
            threads: 1,
            verify: false,
            per_band_pool: false,
        }
    }

    /// Worker threads for parallel loop dimensions (clamped to ≥ 1;
    /// 1 = serial).
    #[must_use]
    pub fn threads(mut self, n: usize) -> ExecOptions {
        self.threads = n.max(1);
        self
    }

    /// Check the transformed output against the reference interpreter
    /// after every [`ExecContext::execute`]; a mismatch surfaces as
    /// [`WfError::Schedule`].
    #[must_use]
    pub fn verify(mut self, on: bool) -> ExecOptions {
        self.verify = on;
        self
    }

    /// Spin up a fresh pool per parallel band instead of reusing the
    /// context's shared pool — the old scoped-spawn cost model, kept so
    /// `wfc bench-all` can measure scoped-vs-pooled side by side.
    #[must_use]
    pub fn per_band_pool(mut self, on: bool) -> ExecOptions {
        self.per_band_pool = on;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.threads
    }

    /// Whether reference verification is on.
    #[must_use]
    pub fn verifies(&self) -> bool {
        self.verify
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::new()
    }
}

/// Which pool a context forks parallel bands onto.
#[derive(Clone, Copy)]
enum PoolRef<'p> {
    /// The process-wide pool ([`pool::global`]), spun up lazily on the
    /// first parallel band.
    Global,
    /// A caller-owned pool.
    Borrowed(&'p ThreadPool),
}

/// The unified execution handle: a thread-pool reference plus
/// [`ExecOptions`], threaded through the interpreter, the bench harness,
/// and `wfc`. Replaces the old `execute_plan` free function and the
/// env-var reads scattered at its call sites — the environment is parsed
/// exactly once, at [`ExecContext::from_env`].
///
/// ```
/// use wf_runtime::{ExecContext, ExecOptions};
/// let ctx = ExecContext::with_options(ExecOptions::new().threads(4).verify(true));
/// assert_eq!(ctx.threads(), 4);
/// ```
#[derive(Clone)]
pub struct ExecContext<'p> {
    pool: PoolRef<'p>,
    opts: ExecOptions,
}

impl ExecContext<'static> {
    /// A serial context: 1 thread, no verification, never touches a pool.
    #[must_use]
    pub fn serial() -> ExecContext<'static> {
        ExecContext {
            pool: PoolRef::Global,
            opts: ExecOptions::new(),
        }
    }

    /// A context over the global pool with `n` worker threads.
    #[must_use]
    pub fn with_threads(n: usize) -> ExecContext<'static> {
        ExecContext::with_options(ExecOptions::new().threads(n))
    }

    /// A context over the global pool with explicit options.
    #[must_use]
    pub fn with_options(opts: ExecOptions) -> ExecContext<'static> {
        ExecContext {
            pool: PoolRef::Global,
            opts,
        }
    }

    /// A context sized from the environment — the one place `WF_THREADS`
    /// is consulted.
    ///
    /// # Errors
    /// [`WfError::Invalid`] when `WF_THREADS` is set but not a positive
    /// integer.
    pub fn from_env() -> Result<ExecContext<'static>, WfError> {
        Ok(ExecContext::with_threads(pool::try_env_threads()?))
    }
}

impl<'p> ExecContext<'p> {
    /// A context forking onto a caller-owned pool, sized to match it.
    #[must_use]
    pub fn new(pool: &'p ThreadPool) -> ExecContext<'p> {
        ExecContext {
            pool: PoolRef::Borrowed(pool),
            opts: ExecOptions::new().threads(pool.n_threads()),
        }
    }

    /// Replace the options, keeping the pool binding.
    #[must_use]
    pub fn options(mut self, opts: ExecOptions) -> ExecContext<'p> {
        self.opts = opts;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.opts.n_threads()
    }

    /// The context's options.
    #[must_use]
    pub fn opts(&self) -> &ExecOptions {
        &self.opts
    }

    /// The pool parallel bands fork onto. Only called on the parallel
    /// path, so a serial context never spins up the global pool.
    fn pool(&self) -> &ThreadPool {
        match self.pool {
            PoolRef::Global => pool::global(),
            PoolRef::Borrowed(p) => p,
        }
    }

    /// Execute a transformed SCoP over the given data.
    ///
    /// With more than one thread the outermost parallel loop dimension of
    /// each fused group is split into contiguous chunks across pool
    /// workers; inside a non-parallel (forward-dependence) loop, inner
    /// parallel dimensions are parallelized per outer iteration —
    /// wavefront execution with a join barrier per wavefront. The
    /// iteration→chunk mapping depends only on the thread count and loop
    /// bounds, and chunks partition the range, so output is byte-identical
    /// at every thread count.
    ///
    /// # Errors
    /// * [`WfError::JobPanic`] — a partition job panicked (contained by
    ///   the pool; sibling partitions still ran to completion).
    /// * [`WfError::Schedule`] — verification was requested and the
    ///   transformed output diverges from the reference interpreter.
    pub fn execute(
        &self,
        scop: &Scop,
        t: &Transformed,
        plan: &ExecPlan,
        data: &mut ProgramData,
    ) -> Result<(), WfError> {
        let expected = if self.opts.verifies() {
            let mut reference = data.clone();
            execute_reference(scop, &mut reference);
            Some(reference)
        } else {
            None
        };
        self.run(scop, t, plan, data, &mut None)?;
        if let Some(expected) = expected {
            let diff = data.max_abs_diff(&expected);
            if diff != 0.0 {
                return Err(WfError::Schedule {
                    message: format!(
                        "verification failed: transformed output diverges \
                         from the reference interpreter (max |diff| = {diff:e})"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Execute serially while `observer` taps the address trace.
    ///
    /// # Errors
    /// [`WfError::Invalid`] when the context is configured with more than
    /// one thread — address tracing requires serial execution.
    pub fn execute_observed(
        &self,
        scop: &Scop,
        t: &Transformed,
        plan: &ExecPlan,
        data: &mut ProgramData,
        observer: &mut dyn AccessObserver,
    ) -> Result<(), WfError> {
        if self.threads() > 1 {
            return Err(WfError::invalid(
                "address tracing requires serial execution (use ExecContext::serial)",
            ));
        }
        self.run(scop, t, plan, data, &mut Some(observer))
    }

    /// Run the reference interpreter (original program order) over `data`.
    pub fn reference(&self, scop: &Scop, data: &mut ProgramData) {
        execute_reference(scop, data);
    }

    fn run(
        &self,
        scop: &Scop,
        t: &Transformed,
        plan: &ExecPlan,
        data: &mut ProgramData,
        observer: &mut Option<&mut dyn AccessObserver>,
    ) -> Result<(), WfError> {
        let _span = wf_harness::span!(
            "runtime.execute",
            "threads" => self.threads().to_string(),
            "stmts" => scop.n_statements().to_string(),
        );
        let group: Vec<usize> = (0..scop.n_statements()).collect();
        let mut z = Vec::with_capacity(plan.dims.len());
        let ctx = Ctx {
            scop,
            t,
            plan,
            exec: self,
        };
        run_group(&ctx, &group, &mut z, data, observer)
    }
}

struct Ctx<'a, 'p> {
    scop: &'a Scop,
    t: &'a Transformed,
    plan: &'a ExecPlan,
    exec: &'a ExecContext<'p>,
}

/// Shared mutable program data for parallel loop bodies.
///
/// SAFETY: a loop dimension is only marked parallel when the scheduler
/// proved no dependence is carried by it — distinct iterations touch
/// disjoint (or read-only) locations, so concurrent bodies are data-race
/// free by construction. This wrapper just carries that proof obligation
/// across the thread boundary.
struct SharedData(*mut ProgramData);
unsafe impl Send for SharedData {}
unsafe impl Sync for SharedData {}

fn run_group(
    ctx: &Ctx<'_, '_>,
    group: &[usize],
    z: &mut Vec<i128>,
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) -> Result<(), WfError> {
    if group.is_empty() {
        return Ok(());
    }
    let d = z.len();
    if d == ctx.plan.dims.len() {
        for &s in group {
            exec_leaf(ctx, &ctx.plan.stmts[s], z, data, observer);
        }
        return Ok(());
    }
    match ctx.plan.dims[d] {
        DimKind::Scalar => {
            // Split by scalar value; bounds pin z_d exactly per statement.
            let mut by_val: std::collections::BTreeMap<i128, Vec<usize>> = Default::default();
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                let lo = b.lower(z, &data.params).expect("scalar dim bounded");
                let hi = b.upper(z, &data.params).expect("scalar dim bounded");
                debug_assert_eq!(lo, hi, "scalar dim must pin a single value");
                by_val.entry(lo).or_default().push(s);
            }
            for (v, sub) in by_val {
                z.push(v);
                run_group(ctx, &sub, z, data, observer)?;
                z.pop();
            }
        }
        DimKind::Loop => {
            // Union bounds over the group.
            let params = data.params.clone();
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                if let (Some(l), Some(h)) = (b.lower(z, &params), b.upper(z, &params)) {
                    if l <= h {
                        lo = lo.min(l);
                        hi = hi.max(h);
                    }
                }
            }
            if lo > hi {
                return Ok(());
            }
            let parallel = group.iter().all(|&s| ctx.plan.parallel[d][s]);
            let span = (hi - lo + 1) as usize;
            if parallel && ctx.exec.threads() > 1 && observer.is_none() && span > 1 {
                run_parallel(ctx, group, z, lo, hi, data)?;
            } else {
                for v in lo..=hi {
                    // Filter statements active at this iteration; the common
                    // case (every member active) avoids the allocation.
                    let active = |s: usize, zz: &[i128]| {
                        let b = &ctx.plan.stmts[s].bounds[d];
                        matches!((b.lower(zz, &params), b.upper(zz, &params)),
                            (Some(l), Some(h)) if l <= v && v <= h)
                    };
                    let n_active = group.iter().filter(|&&s| active(s, z)).count();
                    if n_active == 0 {
                        continue;
                    }
                    if n_active == group.len() {
                        z.push(v);
                        run_group(ctx, group, z, data, observer)?;
                        z.pop();
                    } else {
                        let sub: Vec<usize> =
                            group.iter().copied().filter(|&s| active(s, z)).collect();
                        z.push(v);
                        run_group(ctx, &sub, z, data, observer)?;
                        z.pop();
                    }
                }
            }
        }
    }
    Ok(())
}

/// Split `[lo, hi]` into contiguous chunks across pool workers. Each
/// worker walks its own copy of the `z` prefix; the shared tensors are
/// raced-for-free per the scheduler's parallelism proof. Chunk `w` covers
/// `[lo + w·chunk, min(lo + (w+1)·chunk - 1, hi)]` — a pure function of
/// the thread count and bounds, so the mapping (and the output) is
/// deterministic. A panicking chunk is contained by the pool and
/// surfaced as [`WfError::JobPanic`]; sibling chunks complete normally.
fn run_parallel(
    ctx: &Ctx<'_, '_>,
    group: &[usize],
    z: &[i128],
    lo: i128,
    hi: i128,
    data: &mut ProgramData,
) -> Result<(), WfError> {
    let span = (hi - lo + 1) as usize;
    let nthreads = ctx.exec.threads().min(span);
    let chunk = span.div_ceil(nthreads);
    let shared = SharedData(data as *mut ProgramData);
    let params = data.params.clone();
    let _band = wf_harness::span!(
        "runtime.band",
        "depth" => z.len().to_string(),
        "span" => span.to_string(),
        "workers" => nthreads.to_string(),
    );
    obs::add("runtime.parallel_bands", 1);
    // Borrow the whole wrapper so the closure captures `&SharedData` (which
    // is Sync), not the raw pointer field via disjoint capture.
    let shared = &shared;
    let run_chunk = |w: usize| {
        fault::maybe_panic("runtime.partition");
        let c_lo = lo + (w * chunk) as i128;
        let c_hi = (c_lo + chunk as i128 - 1).min(hi);
        if c_lo > c_hi {
            return;
        }
        let started = std::time::Instant::now();
        let mut pspan = wf_harness::span!("runtime.partition", "w" => w.to_string());
        pspan.arg("lo", c_lo.to_string());
        pspan.arg("hi", c_hi.to_string());
        // SAFETY: see SharedData — iterations of a parallel loop are
        // independent, and chunks partition the range.
        let data: &mut ProgramData = unsafe { &mut *shared.0 };
        let mut zz: Vec<i128> = z.to_vec();
        let d = zz.len();
        let mut none: Option<&mut dyn AccessObserver> = None;
        for v in c_lo..=c_hi {
            let sub: Vec<usize> = group
                .iter()
                .copied()
                .filter(|&s| {
                    let b = &ctx.plan.stmts[s].bounds[d];
                    matches!((b.lower(&zz, &params), b.upper(&zz, &params)),
                        (Some(l), Some(h)) if l <= v && v <= h)
                })
                .collect();
            if sub.is_empty() {
                continue;
            }
            zz.push(v);
            run_group_serial(ctx, &sub, &mut zz, data, &mut none);
            zz.pop();
        }
        if obs::metrics_on() {
            obs::observe("runtime.partition", started.elapsed().as_micros() as u64);
        }
    };
    let results = if ctx.exec.opts.per_band_pool {
        // The old cost model: fresh workers forked (and joined) per band.
        ThreadPool::new(nthreads).try_scope(nthreads, nthreads, run_chunk)
    } else {
        ctx.exec.pool().try_scope(nthreads, nthreads, run_chunk)
    };
    for r in results {
        r?;
    }
    Ok(())
}

/// Serial subtree walk used inside parallel workers (no nested
/// parallelism: one fork level is the coarse-grained model of the paper).
fn run_group_serial(
    ctx: &Ctx<'_, '_>,
    group: &[usize],
    z: &mut Vec<i128>,
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    if group.is_empty() {
        return;
    }
    let d = z.len();
    if d == ctx.plan.dims.len() {
        for &s in group {
            exec_leaf(ctx, &ctx.plan.stmts[s], z, data, observer);
        }
        return;
    }
    match ctx.plan.dims[d] {
        DimKind::Scalar => {
            let mut by_val: std::collections::BTreeMap<i128, Vec<usize>> = Default::default();
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                let lo = b.lower(z, &data.params).expect("scalar dim bounded");
                by_val.entry(lo).or_default().push(s);
            }
            for (v, sub) in by_val {
                z.push(v);
                run_group_serial(ctx, &sub, z, data, observer);
                z.pop();
            }
        }
        DimKind::Loop => {
            let params = data.params.clone();
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                if let (Some(l), Some(h)) = (b.lower(z, &params), b.upper(z, &params)) {
                    if l <= h {
                        lo = lo.min(l);
                        hi = hi.max(h);
                    }
                }
            }
            for v in lo..=hi {
                let active = |s: usize, zz: &[i128]| {
                    let b = &ctx.plan.stmts[s].bounds[d];
                    matches!((b.lower(zz, &params), b.upper(zz, &params)),
                        (Some(l), Some(h)) if l <= v && v <= h)
                };
                let n_active = group.iter().filter(|&&s| active(s, z)).count();
                if n_active == 0 {
                    continue;
                }
                if n_active == group.len() {
                    z.push(v);
                    run_group_serial(ctx, group, z, data, observer);
                    z.pop();
                } else {
                    let sub: Vec<usize> = group.iter().copied().filter(|&s| active(s, z)).collect();
                    z.push(v);
                    run_group_serial(ctx, &sub, z, data, observer);
                    z.pop();
                }
            }
        }
    }
}

fn exec_leaf(
    ctx: &Ctx<'_, '_>,
    sp: &StmtPlan,
    z: &[i128],
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    let Some(iters) = guard(ctx.scop, ctx.t, &ctx.plan.layout, sp, z, &data.params) else {
        return;
    };
    exec_statement(ctx.scop, sp.stmt, &iters, data, observer);
}

/// Execute one statement instance: evaluate reads, the RHS, and the write.
pub(crate) fn exec_statement(
    scop: &Scop,
    s: usize,
    iters: &[i128],
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    let st = &scop.statements[s];
    if let Some(obs) = observer.as_deref_mut() {
        obs.begin_statement(s);
    }
    let params = data.params.clone();
    let loads: Vec<f64> = st
        .reads
        .iter()
        .map(|a| {
            let idx = a.eval(iters, &params);
            let tensor = &data.arrays[a.array];
            if let Some(obs) = observer.as_deref_mut() {
                obs.access(a.array, tensor.offset(&idx), false);
            }
            tensor.get(&idx)
        })
        .collect();
    let v = st.rhs.eval(&loads, iters, &params);
    let idx = st.write.eval(iters, &params);
    let tensor = &mut data.arrays[st.write.array];
    if let Some(obs) = observer.as_deref_mut() {
        obs.access(st.write.array, tensor.offset(&idx), true);
    }
    tensor.set(&idx, v);
}
