//! The plan executor.

use crate::data::ProgramData;
use wf_codegen::plan::{guard, ExecPlan, StmtPlan};
use wf_schedule::pluto::Transformed;
use wf_schedule::transform::DimKind;
use wf_scop::Scop;

/// Observes every array element access (serial execution only); the cache
/// simulator implements this to collect the address trace.
pub trait AccessObserver {
    /// Called once per element access with the array id, its linear offset,
    /// and whether the access writes.
    fn access(&mut self, array: usize, offset: usize, is_write: bool);

    /// Called once per executed statement instance, before its accesses.
    /// Default: ignored. The performance model uses this to attribute work.
    fn begin_statement(&mut self, stmt: usize) {
        let _ = stmt;
    }
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker threads for parallel loop dimensions (1 = serial).
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 1 }
    }
}

/// Execute a transformed SCoP over the given data.
///
/// With `opts.threads > 1` the outermost parallel loop dimension of each
/// fused group is split across scoped threads; inside a non-parallel
/// (forward-dependence) loop, inner parallel dimensions are parallelized
/// per outer iteration — wavefront execution with a join barrier per
/// wavefront.
///
/// `observer` (serial only) taps the address trace.
pub fn execute_plan(
    scop: &Scop,
    t: &Transformed,
    plan: &ExecPlan,
    data: &mut ProgramData,
    opts: &ExecOptions,
    mut observer: Option<&mut dyn AccessObserver>,
) {
    assert!(
        observer.is_none() || opts.threads <= 1,
        "address tracing requires serial execution"
    );
    let group: Vec<usize> = (0..scop.n_statements()).collect();
    let mut z = Vec::with_capacity(plan.dims.len());
    let ctx = Ctx {
        scop,
        t,
        plan,
        threads: opts.threads.max(1),
    };
    run_group(&ctx, &group, &mut z, data, &mut observer);
}

struct Ctx<'a> {
    scop: &'a Scop,
    t: &'a Transformed,
    plan: &'a ExecPlan,
    threads: usize,
}

/// Shared mutable program data for parallel loop bodies.
///
/// SAFETY: a loop dimension is only marked parallel when the scheduler
/// proved no dependence is carried by it — distinct iterations touch
/// disjoint (or read-only) locations, so concurrent bodies are data-race
/// free by construction. This wrapper just carries that proof obligation
/// across the thread boundary.
struct SharedData(*mut ProgramData);
unsafe impl Send for SharedData {}
unsafe impl Sync for SharedData {}

fn run_group(
    ctx: &Ctx<'_>,
    group: &[usize],
    z: &mut Vec<i128>,
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    if group.is_empty() {
        return;
    }
    let d = z.len();
    if d == ctx.plan.dims.len() {
        for &s in group {
            exec_leaf(ctx, &ctx.plan.stmts[s], z, data, observer);
        }
        return;
    }
    match ctx.plan.dims[d] {
        DimKind::Scalar => {
            // Split by scalar value; bounds pin z_d exactly per statement.
            let mut by_val: std::collections::BTreeMap<i128, Vec<usize>> = Default::default();
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                let lo = b.lower(z, &data.params).expect("scalar dim bounded");
                let hi = b.upper(z, &data.params).expect("scalar dim bounded");
                debug_assert_eq!(lo, hi, "scalar dim must pin a single value");
                by_val.entry(lo).or_default().push(s);
            }
            for (v, sub) in by_val {
                z.push(v);
                run_group(ctx, &sub, z, data, observer);
                z.pop();
            }
        }
        DimKind::Loop => {
            // Union bounds over the group.
            let params = data.params.clone();
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                if let (Some(l), Some(h)) = (b.lower(z, &params), b.upper(z, &params)) {
                    if l <= h {
                        lo = lo.min(l);
                        hi = hi.max(h);
                    }
                }
            }
            if lo > hi {
                return;
            }
            let parallel = group.iter().all(|&s| ctx.plan.parallel[d][s]);
            let span = (hi - lo + 1) as usize;
            if parallel && ctx.threads > 1 && observer.is_none() && span > 1 {
                run_parallel(ctx, group, z, lo, hi, data);
            } else {
                for v in lo..=hi {
                    // Filter statements active at this iteration; the common
                    // case (every member active) avoids the allocation.
                    let active = |s: usize, zz: &[i128]| {
                        let b = &ctx.plan.stmts[s].bounds[d];
                        matches!((b.lower(zz, &params), b.upper(zz, &params)),
                            (Some(l), Some(h)) if l <= v && v <= h)
                    };
                    let n_active = group.iter().filter(|&&s| active(s, z)).count();
                    if n_active == 0 {
                        continue;
                    }
                    if n_active == group.len() {
                        z.push(v);
                        run_group(ctx, group, z, data, observer);
                        z.pop();
                    } else {
                        let sub: Vec<usize> =
                            group.iter().copied().filter(|&s| active(s, z)).collect();
                        z.push(v);
                        run_group(ctx, &sub, z, data, observer);
                        z.pop();
                    }
                }
            }
        }
    }
}

/// Split `[lo, hi]` into contiguous chunks across scoped threads. Each
/// worker walks its own copy of the `z` prefix; the shared tensors are
/// raced-for-free per the scheduler's parallelism proof.
fn run_parallel(
    ctx: &Ctx<'_>,
    group: &[usize],
    z: &[i128],
    lo: i128,
    hi: i128,
    data: &mut ProgramData,
) {
    let span = (hi - lo + 1) as usize;
    let nthreads = ctx.threads.min(span);
    let chunk = span.div_ceil(nthreads);
    let shared = SharedData(data as *mut ProgramData);
    let params = data.params.clone();
    std::thread::scope(|scope| {
        for w in 0..nthreads {
            let c_lo = lo + (w * chunk) as i128;
            let c_hi = (c_lo + chunk as i128 - 1).min(hi);
            if c_lo > c_hi {
                continue;
            }
            let shared = &shared;
            let params = &params;
            let mut zz: Vec<i128> = z.to_vec();
            scope.spawn(move || {
                // SAFETY: see SharedData — iterations of a parallel loop
                // are independent, and chunks partition the range.
                let data: &mut ProgramData = unsafe { &mut *shared.0 };
                let d = zz.len();
                let mut none: Option<&mut dyn AccessObserver> = None;
                for v in c_lo..=c_hi {
                    let sub: Vec<usize> = group
                        .iter()
                        .copied()
                        .filter(|&s| {
                            let b = &ctx.plan.stmts[s].bounds[d];
                            matches!((b.lower(&zz, params), b.upper(&zz, params)),
                                (Some(l), Some(h)) if l <= v && v <= h)
                        })
                        .collect();
                    if sub.is_empty() {
                        continue;
                    }
                    zz.push(v);
                    run_group_serial(ctx, &sub, &mut zz, data, &mut none);
                    zz.pop();
                }
            });
        }
    });
}

/// Serial subtree walk used inside parallel workers (no nested
/// parallelism: one fork level is the coarse-grained model of the paper).
fn run_group_serial(
    ctx: &Ctx<'_>,
    group: &[usize],
    z: &mut Vec<i128>,
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    if group.is_empty() {
        return;
    }
    let d = z.len();
    if d == ctx.plan.dims.len() {
        for &s in group {
            exec_leaf(ctx, &ctx.plan.stmts[s], z, data, observer);
        }
        return;
    }
    match ctx.plan.dims[d] {
        DimKind::Scalar => {
            let mut by_val: std::collections::BTreeMap<i128, Vec<usize>> = Default::default();
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                let lo = b.lower(z, &data.params).expect("scalar dim bounded");
                by_val.entry(lo).or_default().push(s);
            }
            for (v, sub) in by_val {
                z.push(v);
                run_group_serial(ctx, &sub, z, data, observer);
                z.pop();
            }
        }
        DimKind::Loop => {
            let params = data.params.clone();
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            for &s in group {
                let b = &ctx.plan.stmts[s].bounds[d];
                if let (Some(l), Some(h)) = (b.lower(z, &params), b.upper(z, &params)) {
                    if l <= h {
                        lo = lo.min(l);
                        hi = hi.max(h);
                    }
                }
            }
            for v in lo..=hi {
                let active = |s: usize, zz: &[i128]| {
                    let b = &ctx.plan.stmts[s].bounds[d];
                    matches!((b.lower(zz, &params), b.upper(zz, &params)),
                        (Some(l), Some(h)) if l <= v && v <= h)
                };
                let n_active = group.iter().filter(|&&s| active(s, z)).count();
                if n_active == 0 {
                    continue;
                }
                if n_active == group.len() {
                    z.push(v);
                    run_group_serial(ctx, group, z, data, observer);
                    z.pop();
                } else {
                    let sub: Vec<usize> = group.iter().copied().filter(|&s| active(s, z)).collect();
                    z.push(v);
                    run_group_serial(ctx, &sub, z, data, observer);
                    z.pop();
                }
            }
        }
    }
}

fn exec_leaf(
    ctx: &Ctx<'_>,
    sp: &StmtPlan,
    z: &[i128],
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    let Some(iters) = guard(ctx.scop, ctx.t, &ctx.plan.layout, sp, z, &data.params) else {
        return;
    };
    exec_statement(ctx.scop, sp.stmt, &iters, data, observer);
}

/// Execute one statement instance: evaluate reads, the RHS, and the write.
pub(crate) fn exec_statement(
    scop: &Scop,
    s: usize,
    iters: &[i128],
    data: &mut ProgramData,
    observer: &mut Option<&mut dyn AccessObserver>,
) {
    let st = &scop.statements[s];
    if let Some(obs) = observer.as_deref_mut() {
        obs.begin_statement(s);
    }
    let params = data.params.clone();
    let loads: Vec<f64> = st
        .reads
        .iter()
        .map(|a| {
            let idx = a.eval(iters, &params);
            let tensor = &data.arrays[a.array];
            if let Some(obs) = observer.as_deref_mut() {
                obs.access(a.array, tensor.offset(&idx), false);
            }
            tensor.get(&idx)
        })
        .collect();
    let v = st.rhs.eval(&loads, iters, &params);
    let idx = st.write.eval(iters, &params);
    let tensor = &mut data.arrays[st.write.array];
    if let Some(obs) = observer.as_deref_mut() {
        obs.access(st.write.array, tensor.offset(&idx), true);
    }
    tensor.set(&idx, v);
}
