//! **profile** — fold a span forest into a critical-path profile.
//!
//! Input is the flat list of closed spans the tracer records (in memory
//! via [`obs::take_events`], or parsed back from a Chrome trace file);
//! output is a [`Profile`]: per-span-name inclusive/exclusive time, the
//! pool-aware critical path, and total wall time, rendered as the
//! deterministic `profile/v1` JSON behind `wfc profile`.
//!
//! **Pool-aware critical path.** Spans nest across threads (a pool
//! worker's span parents under the span that *submitted* the job), so a
//! span's children may overlap in time — that overlap is parallelism,
//! not double-booked work. The critical path of a span is therefore
//! computed fork/join style: children are clustered into maximal groups
//! of time-overlapping siblings; within a cluster (parallel work) only
//! the longest child path counts, across clusters (sequential work)
//! paths add, and the span's own exclusive time (duration minus the
//! union of child intervals) is added on top. Everything is clamped to
//! the span's duration, so the profile's critical path never exceeds
//! wall time — the invariant the CI smoke job asserts.
//!
//! **Determinism.** Span *counts* and attribution tallies are exact and
//! machine-independent; timings are not. [`strip_timings`] removes every
//! timing-dependent field (`*_us`, `*_pct`, and the critical-path chain,
//! whose ordering depends on which sibling happened to be slowest) so a
//! double run of `wfc profile` byte-compares equal after stripping.

use crate::json::Json;
use crate::obs::TraceEvent;
use std::collections::BTreeMap;

/// One span as the profiler consumes it: like [`TraceEvent`] but with an
/// owned name, so traces parsed back from disk (dynamic strings) and
/// live events (static names) fold through the same code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfEvent {
    /// Span name.
    pub name: String,
    /// Start, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span id (0 = root); may live on another thread.
    pub parent: u64,
}

impl From<&TraceEvent> for ProfEvent {
    fn from(e: &TraceEvent) -> ProfEvent {
        ProfEvent {
            name: e.name.to_string(),
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            id: e.id,
            parent: e.parent,
        }
    }
}

/// Parse the events out of a Chrome trace-event document produced by
/// [`obs::trace_json`] (the `id`/`parent` hierarchy rides in `args`).
///
/// # Errors
/// A human-readable message when the document is not a trace or an event
/// is malformed.
pub fn events_from_trace_json(doc: &Json) -> Result<Vec<ProfEvent>, String> {
    let evs = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("not a trace document (missing traceEvents array)")?;
    let mut out = Vec::with_capacity(evs.len());
    for (i, e) in evs.iter().enumerate() {
        let num = |v: Option<&Json>| {
            v.and_then(Json::as_i128)
                .and_then(|x| u64::try_from(x).ok())
        };
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}]: missing name"))?;
        let args = e.get("args");
        out.push(ProfEvent {
            name: name.to_string(),
            ts_us: num(e.get("ts")).ok_or_else(|| format!("traceEvents[{i}]: bad ts"))?,
            dur_us: num(e.get("dur")).unwrap_or(0),
            id: num(args.and_then(|a| a.get("id")))
                .ok_or_else(|| format!("traceEvents[{i}]: bad args.id"))?,
            parent: num(args.and_then(|a| a.get("parent"))).unwrap_or(0),
        });
    }
    Ok(out)
}

/// Aggregated statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations (nested same-name spans double-count, as in any
    /// inclusive profile).
    pub inclusive_us: u64,
    /// Sum of durations minus each span's child-interval union — time
    /// spent *in* the span, not in an instrumented callee.
    pub exclusive_us: u64,
}

/// One step of the dominant critical-path chain, root → leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// The fork/join critical-path time attributed through this span.
    pub cp_us: u64,
}

/// The folded profile of one span forest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Number of events folded.
    pub n_events: u64,
    /// `max(end) - min(start)` over all spans.
    pub wall_us: u64,
    /// Fork/join critical path over the whole forest (≤ `wall_us`).
    pub critical_path_us: u64,
    /// The dominant chain: at every level, the child cluster member with
    /// the largest path time.
    pub critical_path: Vec<PathStep>,
    /// Per-name statistics, keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
}

/// A span's children clustered into maximal groups of time-overlapping
/// siblings. `children` must be sorted by `ts_us`. Returns `(cluster
/// extent, member indices)` per cluster, in time order.
fn clusters(children: &[&ProfEvent]) -> Vec<(u64, Vec<usize>)> {
    let mut out: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut cluster_end = 0u64;
    for (i, c) in children.iter().enumerate() {
        let end = c.ts_us.saturating_add(c.dur_us);
        match out.last_mut() {
            Some((extent, members)) if c.ts_us < cluster_end => {
                members.push(i);
                cluster_end = cluster_end.max(end);
                let start = children[members[0]].ts_us;
                *extent = cluster_end.saturating_sub(start);
            }
            _ => {
                out.push((c.dur_us, vec![i]));
                cluster_end = end;
            }
        }
    }
    out
}

/// Recursive fork/join fold of one span: returns its critical-path time
/// (≤ its duration) and appends per-name stats. `chain` collects the
/// dominant path when `Some`.
fn fold_span(
    ev: &ProfEvent,
    children_of: &BTreeMap<u64, Vec<&ProfEvent>>,
    spans: &mut BTreeMap<String, SpanStat>,
    chain: Option<&mut Vec<PathStep>>,
) -> u64 {
    let kids = children_of.get(&ev.id).map_or(&[][..], Vec::as_slice);
    let groups = clusters(kids);
    // Child-interval union (the cluster extents are disjoint by
    // construction), clamped to this span's own interval.
    let union: u64 = groups
        .iter()
        .map(|(extent, members)| {
            let start = kids[members[0]].ts_us.max(ev.ts_us);
            let end = kids[members[0]]
                .ts_us
                .saturating_add(*extent)
                .min(ev.ts_us.saturating_add(ev.dur_us));
            end.saturating_sub(start)
        })
        .sum();
    let exclusive = ev.dur_us.saturating_sub(union);
    let stat = spans.entry(ev.name.clone()).or_default();
    stat.count += 1;
    stat.inclusive_us += ev.dur_us;
    stat.exclusive_us += exclusive;

    // Each cluster contributes its best member's path; pick the overall
    // dominant child to extend the chain through.
    let mut cp = exclusive;
    let mut dominant: Option<(u64, &ProfEvent)> = None;
    for (extent, members) in &groups {
        let mut best = 0u64;
        for &m in members {
            let child_cp = fold_span(kids[m], children_of, spans, None);
            if child_cp > best {
                best = child_cp;
            }
            if dominant.is_none_or(|(d, _)| child_cp > d) {
                dominant = Some((child_cp, kids[m]));
            }
        }
        cp = cp.saturating_add(best.min(*extent));
    }
    let cp = cp.min(ev.dur_us);
    if let Some(chain) = chain {
        chain.push(PathStep {
            name: ev.name.clone(),
            cp_us: cp,
        });
        if let Some((_, child)) = dominant {
            fold_dominant_chain(child, children_of, chain);
        }
    }
    cp
}

/// Extend the dominant chain below `ev` without re-accumulating stats.
fn fold_dominant_chain(
    ev: &ProfEvent,
    children_of: &BTreeMap<u64, Vec<&ProfEvent>>,
    chain: &mut Vec<PathStep>,
) {
    let mut scratch = BTreeMap::new();
    let cp = fold_span(ev, children_of, &mut scratch, None);
    chain.push(PathStep {
        name: ev.name.clone(),
        cp_us: cp,
    });
    let kids = children_of.get(&ev.id).map_or(&[][..], Vec::as_slice);
    let mut dominant: Option<(u64, &ProfEvent)> = None;
    for k in kids {
        let child_cp = fold_span(k, children_of, &mut scratch, None);
        if dominant.is_none_or(|(d, _)| child_cp > d) {
            dominant = Some((child_cp, k));
        }
    }
    if let Some((_, child)) = dominant {
        fold_dominant_chain(child, children_of, chain);
    }
}

/// Fold a span forest into a [`Profile`]. Spans whose recorded parent is
/// absent from the set (e.g. the enclosing span had not closed when the
/// trace was taken) are treated as roots.
#[must_use]
pub fn fold(events: &[ProfEvent]) -> Profile {
    if events.is_empty() {
        return Profile::default();
    }
    let ids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.id).collect();
    let mut children_of: BTreeMap<u64, Vec<&ProfEvent>> = BTreeMap::new();
    let mut roots: Vec<&ProfEvent> = Vec::new();
    for e in events {
        if e.parent != 0 && ids.contains(&e.parent) {
            children_of.entry(e.parent).or_default().push(e);
        } else {
            roots.push(e);
        }
    }
    for v in children_of.values_mut() {
        v.sort_by_key(|e| (e.ts_us, e.id));
    }
    roots.sort_by_key(|e| (e.ts_us, e.id));

    let start = events.iter().map(|e| e.ts_us).min().unwrap_or(0);
    let end = events
        .iter()
        .map(|e| e.ts_us.saturating_add(e.dur_us))
        .max()
        .unwrap_or(0);
    let wall_us = end.saturating_sub(start);

    let mut spans = BTreeMap::new();
    let groups = clusters(&roots);
    let mut critical_path_us = 0u64;
    let mut dominant: Option<(u64, &ProfEvent)> = None;
    for (extent, members) in &groups {
        let mut best = 0u64;
        for &m in members {
            let cp = fold_span(roots[m], &children_of, &mut spans, None);
            if cp > best {
                best = cp;
            }
            if dominant.is_none_or(|(d, _)| cp > d) {
                dominant = Some((cp, roots[m]));
            }
        }
        critical_path_us = critical_path_us.saturating_add(best.min(*extent));
    }
    let critical_path_us = critical_path_us.min(wall_us);
    let mut critical_path = Vec::new();
    if let Some((_, root)) = dominant {
        fold_dominant_chain(root, &children_of, &mut critical_path);
    }
    Profile {
        n_events: events.len() as u64,
        wall_us,
        critical_path_us,
        critical_path,
        spans,
    }
}

impl Profile {
    /// The `profile/v1` JSON document (before the CLI adds its
    /// attribution and counter sections).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|(name, s)| {
                Json::obj([
                    ("name", Json::str(name.as_str())),
                    ("count", Json::from(s.count)),
                    ("inclusive_us", Json::from(s.inclusive_us)),
                    ("exclusive_us", Json::from(s.exclusive_us)),
                ])
            })
            .collect();
        let path: Vec<Json> = self
            .critical_path
            .iter()
            .map(|p| {
                Json::obj([
                    ("name", Json::str(p.name.as_str())),
                    ("cp_us", Json::from(p.cp_us)),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str("profile/v1")),
            ("events", Json::from(self.n_events)),
            ("wall_us", Json::from(self.wall_us)),
            ("critical_path_us", Json::from(self.critical_path_us)),
            ("critical_path", Json::Arr(path)),
            ("spans", Json::Arr(spans)),
        ])
    }
}

/// Strip every timing-dependent field from a `profile/v1` document so a
/// double run byte-compares equal: object keys ending in `_us`, `_pct`
/// or `_seconds` are removed recursively, and the `critical_path` chain
/// (whose membership depends on which sibling was slowest) is dropped
/// wholesale. Mirrors bench-all's `strip_timings`.
#[must_use]
pub fn strip_timings(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    !(k.ends_with("_us") || k.ends_with("_pct") || k.ends_with("_seconds"))
                        && k != "critical_path"
                })
                .map(|(k, v)| (k.clone(), strip_timings(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timings).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, dur: u64, id: u64, parent: u64) -> ProfEvent {
        ProfEvent {
            name: name.to_string(),
            ts_us: ts,
            dur_us: dur,
            id,
            parent,
        }
    }

    #[test]
    fn empty_forest() {
        let p = fold(&[]);
        assert_eq!(p.wall_us, 0);
        assert_eq!(p.critical_path_us, 0);
        assert!(p.spans.is_empty());
    }

    #[test]
    fn serial_nesting_adds_exclusive() {
        // root [0,100) > child [10,40) > grandchild [20,30)
        let events = vec![
            ev("root", 0, 100, 1, 0),
            ev("child", 10, 30, 2, 1),
            ev("grand", 20, 10, 3, 2),
        ];
        let p = fold(&events);
        assert_eq!(p.wall_us, 100);
        // Fully serial: the critical path is the whole root.
        assert_eq!(p.critical_path_us, 100);
        assert_eq!(p.spans["root"].exclusive_us, 70);
        assert_eq!(p.spans["child"].exclusive_us, 20);
        assert_eq!(p.spans["grand"].exclusive_us, 10);
        // Exclusive times partition the root's duration.
        let total_excl: u64 = p.spans.values().map(|s| s.exclusive_us).sum();
        assert_eq!(total_excl, 100);
        assert_eq!(
            p.critical_path
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec!["root", "child", "grand"]
        );
    }

    #[test]
    fn parallel_children_count_once() {
        // root [0,100); four parallel workers [10,90) on other threads.
        let mut events = vec![ev("run_all", 0, 100, 1, 0)];
        for i in 0..4 {
            events.push(ev("model", 10, 80, 2 + i, 1));
        }
        let p = fold(&events);
        assert_eq!(p.wall_us, 100);
        // Exclusive of root = 100 - union(80) = 20; parallel cluster
        // contributes max(80), not 4*80.
        assert_eq!(p.critical_path_us, 100);
        assert_eq!(p.spans["run_all"].exclusive_us, 20);
        assert_eq!(p.spans["model"].count, 4);
        assert_eq!(p.spans["model"].inclusive_us, 320);
    }

    #[test]
    fn critical_path_never_exceeds_wall() {
        // Pathological: child longer than parent (cross-thread job that
        // outlived the submitting span). Clamped.
        let events = vec![ev("a", 0, 10, 1, 0), ev("b", 5, 50, 2, 1)];
        let p = fold(&events);
        assert_eq!(p.wall_us, 55);
        assert!(p.critical_path_us <= p.wall_us);
    }

    #[test]
    fn sequential_root_clusters_add() {
        let events = vec![ev("a", 0, 30, 1, 0), ev("b", 50, 40, 2, 0)];
        let p = fold(&events);
        assert_eq!(p.wall_us, 90);
        assert_eq!(p.critical_path_us, 70); // 30 + 40, gap excluded
    }

    #[test]
    fn orphan_parent_treated_as_root() {
        let events = vec![ev("child", 0, 10, 5, 999)];
        let p = fold(&events);
        assert_eq!(p.critical_path_us, 10);
        assert_eq!(p.spans["child"].count, 1);
    }

    #[test]
    fn trace_json_round_trip() {
        let te = TraceEvent {
            name: "ilp.solve",
            ts_us: 10,
            dur_us: 5,
            tid: 2,
            id: 7,
            parent: 3,
            args: vec![],
        };
        let doc = crate::obs::trace_json(&[te]);
        let evs = events_from_trace_json(&doc).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "ilp.solve");
        assert_eq!(evs[0].id, 7);
        assert_eq!(evs[0].parent, 3);
    }

    #[test]
    fn strip_removes_timings_and_path() {
        let p = fold(&[ev("a", 0, 10, 1, 0)]);
        let stripped = strip_timings(&p.to_json());
        assert!(stripped.get("wall_us").is_none());
        assert!(stripped.get("critical_path_us").is_none());
        assert!(stripped.get("critical_path").is_none());
        let spans = stripped.get("spans").unwrap().as_arr().unwrap();
        assert!(spans[0].get("inclusive_us").is_none());
        assert_eq!(spans[0].get("count").unwrap().as_i128(), Some(1));
        // Still a valid document after stripping.
        assert!(Json::parse(&stripped.render()).is_ok());
    }
}
