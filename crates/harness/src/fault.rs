//! Deterministic fault injection for the optimization pipeline.
//!
//! Production fault tolerance is only believable if it is *exercised*:
//! this module provides seeded injection points that the pipeline's
//! crash-prone seams consult — cache-spill I/O ([`FaultKind::Io`]),
//! worker-job panics ([`FaultKind::Panic`]) and ILP budget exhaustion
//! ([`FaultKind::Budget`]) — so property tests can prove that under *any*
//! injected fault the pipeline returns a typed error or a fallback
//! schedule, never a panic, and CI can smoke the same property end to end.
//!
//! Activation has three layers (highest precedence first):
//!
//! 1. a plan [`install`]ed by a test (the test API);
//! 2. [`disable`], which forces faults off even if the environment enables
//!    them (tests use this around their fault-free baseline sections);
//! 3. the `WF_FAULT` environment variable, parsed once per process:
//!    `WF_FAULT=seed=42,rate=300,kinds=io|panic|budget,site=<prefix>`
//!    (rate is the per-visit injection probability in parts per 1000;
//!    `kinds` defaults to all three; `site` restricts injection to sites
//!    whose name starts with the given prefix and defaults to every site).
//!
//! The consulted sites are `cache.spill_read` / `cache.spill_write`
//! (spill I/O), `optimizer.model_job` (model-scheduling pool jobs),
//! `ilp.solve` (budget exhaustion), `runtime.partition` (one visit per
//! parallel-band chunk in the interpreting executor, so
//! `WF_FAULT=...,kinds=panic,site=runtime.partition` targets executor
//! jobs specifically), `polyhedra.memo` (an [`FaultKind::Io`] fault
//! forces a solver-memo lookup to miss and re-solve cold — results must
//! stay byte-identical, which the fault property suite asserts), and
//! `verify.legality` (an [`FaultKind::Io`] fault forces the independent
//! schedule-legality oracle to report a rejection, exercising the
//! degrade-to-fallback path end to end without needing a genuinely
//! illegal schedule).
//!
//! Injection is **deterministic**: each site keeps a visit counter, and
//! the decision for visit `n` of site `s` is a pure function of
//! `(seed, s, n)` (an FNV-1a digest fed through SplitMix64). Re-running a
//! serial pipeline with the same seed injects the same faults at the same
//! visits; parallel runs inject the same *distribution* of faults (the
//! counter is shared, so visit attribution depends on thread interleaving,
//! which is exactly the nondeterminism the containment property must
//! survive). With no plan active, [`should_inject`] is a single relaxed
//! atomic load — the production fast path costs nothing.

use crate::hash::Fnv64;
use crate::rng::SplitMix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// The three fault classes the pipeline's seams consult.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Cache-spill read/write failures (simulated torn/unreadable files).
    Io,
    /// Worker-job panics (the pool must contain them).
    Panic,
    /// ILP budget exhaustion (the scheduler must degrade, not crash).
    Budget,
}

/// A seeded injection plan; see the module docs for the `WF_FAULT` syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-visit decision function.
    pub seed: u64,
    /// Injection probability per site visit, in parts per 1000.
    pub rate: u32,
    /// Inject [`FaultKind::Io`] faults?
    pub io: bool,
    /// Inject [`FaultKind::Panic`] faults?
    pub panic: bool,
    /// Inject [`FaultKind::Budget`] faults?
    pub budget: bool,
    /// Restrict injection to sites whose name starts with this prefix
    /// (`None` = every site). Filtered-out sites do not advance their
    /// visit counters, so targeting a site leaves its injection sequence
    /// identical to an untargeted run.
    pub site: Option<String>,
}

impl FaultPlan {
    /// A plan injecting every fault kind at `rate`/1000 per site visit.
    #[must_use]
    pub fn all(seed: u64, rate: u32) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            io: true,
            panic: true,
            budget: true,
            site: None,
        }
    }

    /// Parse the `WF_FAULT` syntax:
    /// `seed=<u64>,rate=<0..=1000>,kinds=io|panic|budget,site=<prefix>`
    /// (any subset of the comma-separated fields; `kinds` defaults to all,
    /// `seed` to 0, `rate` to 100, `site` to every site).
    ///
    /// # Errors
    /// A human-readable description of the first malformed field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::all(0, 100);
        for field in spec.split(',').filter(|f| !f.trim().is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("WF_FAULT field '{field}' is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("WF_FAULT seed: {e}"))?;
                }
                "rate" => {
                    plan.rate = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("WF_FAULT rate: {e}"))?;
                    if plan.rate > 1000 {
                        return Err("WF_FAULT rate must be <= 1000 (parts per 1000)".into());
                    }
                }
                "kinds" => {
                    plan.io = false;
                    plan.panic = false;
                    plan.budget = false;
                    for kind in value.split('|') {
                        match kind.trim() {
                            "io" => plan.io = true,
                            "panic" => plan.panic = true,
                            "budget" => plan.budget = true,
                            other => return Err(format!("WF_FAULT unknown kind '{other}'")),
                        }
                    }
                }
                "site" => {
                    let prefix = value.trim();
                    if prefix.is_empty() {
                        return Err("WF_FAULT site prefix must be non-empty".into());
                    }
                    plan.site = Some(prefix.to_string());
                }
                other => return Err(format!("WF_FAULT unknown field '{other}'")),
            }
        }
        Ok(plan)
    }

    fn enabled(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Io => self.io,
            FaultKind::Panic => self.panic,
            FaultKind::Budget => self.budget,
        }
    }
}

/// Test-API override: `None` = defer to the environment,
/// `Some(None)` = forced off, `Some(Some(plan))` = forced on.
static OVERRIDE: Mutex<Option<Option<FaultPlan>>> = Mutex::new(None);
/// Fast-path gate: false only when faults are definitely inactive.
static MAYBE_ACTIVE: AtomicBool = AtomicBool::new(true);
/// Per-site visit counters (keyed by site name).
static COUNTERS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();

fn env_plan() -> Option<&'static FaultPlan> {
    static ENV: OnceLock<Option<FaultPlan>> = OnceLock::new();
    ENV.get_or_init(|| {
        let spec = std::env::var("WF_FAULT").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("warning: ignoring malformed WF_FAULT: {e}");
                None
            }
        }
    })
    .as_ref()
}

fn refresh_gate(over: &Option<Option<FaultPlan>>) {
    let active = match over {
        Some(Some(_)) => true,
        Some(None) => false,
        None => env_plan().is_some(),
    };
    MAYBE_ACTIVE.store(active, Ordering::Release);
}

/// Install `plan` for this process (test API), resetting every site
/// counter so runs with the same seed reproduce the same injections.
pub fn install(plan: FaultPlan) {
    let mut over = OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *over = Some(Some(plan));
    refresh_gate(&over);
    drop(over);
    reset_counters();
}

/// Force faults off, overriding `WF_FAULT` (test API; used around
/// fault-free baseline sections).
pub fn disable() {
    let mut over = OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *over = Some(None);
    refresh_gate(&over);
    drop(over);
    reset_counters();
}

/// Drop any test override, deferring to `WF_FAULT` again.
pub fn reset_to_env() {
    let mut over = OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *over = None;
    refresh_gate(&over);
    drop(over);
    reset_counters();
}

fn reset_counters() {
    if let Some(c) = COUNTERS.get() {
        c.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// The currently active plan, if any.
#[must_use]
pub fn active() -> Option<FaultPlan> {
    if !MAYBE_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let over = OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match &*over {
        Some(Some(p)) => Some(p.clone()),
        Some(None) => None,
        None => env_plan().cloned(),
    }
}

/// Should the `n`-th visit of `site` inject a fault of `kind`? Pure in
/// `(seed, site, visit index)`; see the module docs.
#[must_use]
pub fn should_inject(site: &str, kind: FaultKind) -> bool {
    let Some(plan) = active() else {
        return false;
    };
    if !plan.enabled(kind) || plan.rate == 0 {
        return false;
    }
    // Site targeting filters *before* the counter bump: a targeted run
    // sees the same visit numbering at its site as an untargeted one.
    if let Some(prefix) = &plan.site {
        if !site.starts_with(prefix.as_str()) {
            return false;
        }
    }
    let n = {
        let counters = COUNTERS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = map.entry(site.to_string()).or_insert(0);
        *slot += 1;
        *slot
    };
    decide(&plan, site, n)
}

/// The per-visit decision function, exposed for determinism tests.
#[must_use]
pub fn decide(plan: &FaultPlan, site: &str, visit: u64) -> bool {
    let mut h = Fnv64::new();
    h.update_str(site).update_u64(visit);
    let draw = SplitMix64::new(plan.seed ^ h.digest()).next_u64();
    (draw % 1000) < u64::from(plan.rate)
}

/// Panic at `site` when a [`FaultKind::Panic`] fault fires. Pipeline
/// crates call this inside pool jobs so the containment machinery (not
/// the process) absorbs the panic; keeping the `panic!` here also keeps
/// the pipeline crates free of panic macros.
pub fn maybe_panic(site: &str) {
    if should_inject(site, FaultKind::Panic) {
        panic!("injected fault at {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=42,rate=300,kinds=io|budget").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rate, 300);
        assert!(p.io && p.budget && !p.panic);
    }

    #[test]
    fn parse_defaults_and_errors() {
        let p = FaultPlan::parse("seed=7").unwrap();
        assert_eq!((p.seed, p.rate), (7, 100));
        assert!(p.io && p.panic && p.budget);
        assert_eq!(p.site, None);
        assert!(FaultPlan::parse("rate=2000").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("kinds=nope").is_err());
        assert!(FaultPlan::parse("site=").is_err());
    }

    #[test]
    fn parse_site_prefix() {
        let p = FaultPlan::parse("seed=1,rate=1000,kinds=panic,site=runtime.partition").unwrap();
        assert_eq!(p.site.as_deref(), Some("runtime.partition"));
        assert!(p.panic && !p.io && !p.budget);
    }

    #[test]
    fn site_prefix_gates_injection() {
        // rate 1000 => every enabled visit injects; only the targeted site
        // may fire. (No other harness unit test consults should_inject, so
        // installing a plan here cannot race a sibling test.)
        install(FaultPlan {
            site: Some("runtime.".to_string()),
            ..FaultPlan::all(1, 1000)
        });
        assert!(should_inject("runtime.partition", FaultKind::Panic));
        assert!(!should_inject("optimizer.model_job", FaultKind::Panic));
        assert!(!should_inject("cache.spill_read", FaultKind::Io));
        reset_to_env();
    }

    #[test]
    fn decision_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::all(1, 500);
        let b = FaultPlan::all(2, 500);
        let run =
            |p: &FaultPlan| -> Vec<bool> { (1..200).map(|n| decide(p, "site.x", n)).collect() };
        assert_eq!(run(&a), run(&a), "same seed must reproduce");
        assert_ne!(run(&a), run(&b), "different seeds must differ");
        let hits = run(&a).iter().filter(|&&h| h).count();
        // 500/1000 rate over 199 draws: loose 2-sided bound.
        assert!((60..140).contains(&hits), "rate badly off: {hits}/199");
    }

    #[test]
    fn rate_zero_and_kind_gating() {
        let mut p = FaultPlan::all(3, 0);
        assert!(!(1..100).any(|n| decide(&p, "s", n) && p.rate == 0));
        p.rate = 1000;
        p.io = false;
        assert!(!p.enabled(FaultKind::Io));
        assert!(p.enabled(FaultKind::Panic));
    }
}
