//! A stable, platform-independent FNV-1a 64-bit hasher.
//!
//! `std::collections::hash_map::DefaultHasher` is randomly seeded per
//! process and its algorithm is explicitly unspecified, so it cannot be
//! used for **content addressing** — fingerprints that must agree across
//! runs, machines, and releases (the schedule cache keys entries on
//! `(SCoP canonical text, model, config)` and spills them to disk under
//! the fingerprint's hex form). FNV-1a is tiny, has no state beyond one
//! `u64`, and its published test vectors are pinned below so the
//! recurrence can never drift silently and orphan a populated
//! `WF_CACHE_DIR`.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (also usable as a
/// [`std::hash::Hasher`]).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a string with a trailing separator byte, so consecutive
    /// fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn update_str(&mut self, s: &str) -> &mut Fnv64 {
        self.update(s.as_bytes()).update(&[0xff])
    }

    /// Absorb an `i128` as its fixed-width little-endian bytes.
    pub fn update_i128(&mut self, v: i128) -> &mut Fnv64 {
        self.update(&v.to_le_bytes())
    }

    /// Absorb a `u64` as its fixed-width little-endian bytes.
    pub fn update_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.update(&v.to_le_bytes())
    }

    /// Absorb a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn update_usize(&mut self, v: usize) -> &mut Fnv64 {
        self.update_u64(v as u64)
    }

    /// The digest so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.digest()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

/// One-shot FNV-1a 64-bit digest of a byte string.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_fnv1a_test_vectors() {
        // From Noll's reference vector set; pinning these makes the
        // on-disk cache format a contract.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_separation_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.update_str("ab").update_str("c");
        let mut b = Fnv64::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn integers_hash_by_fixed_width_value() {
        let mut a = Fnv64::new();
        a.update_i128(1).update_i128(2);
        let mut b = Fnv64::new();
        b.update_i128(12).update_i128(0);
        assert_ne!(a.digest(), b.digest());
        let mut c = Fnv64::new();
        c.update_usize(7);
        let mut d = Fnv64::new();
        d.update_u64(7);
        assert_eq!(c.digest(), d.digest());
    }

    #[test]
    fn hasher_trait_matches_update() {
        use std::hash::Hasher as _;
        let mut via_trait = Fnv64::new();
        via_trait.write(b"wisefuse");
        assert_eq!(via_trait.finish(), fnv1a_64(b"wisefuse"));
    }
}
