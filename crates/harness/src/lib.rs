//! **wf-harness** — the workspace's hermetic test & bench infrastructure.
//!
//! The offline build environment cannot fetch crates.io packages, so this
//! crate replaces the three external dev-dependencies the workspace used to
//! carry, with zero dependencies of its own:
//!
//! * [`rng`] — a deterministic [`SplitMix64`](rng::SplitMix64) generator
//!   (plus the Knuth MMIX LCG used by the C backend) replacing `rand`.
//!   Identical seeds produce identical streams on every platform forever;
//!   golden-value tests pin the stream so a silent change of the recurrence
//!   cannot invalidate recorded benchmark baselines.
//! * [`prop`] + [`collection`] — a minimal property-testing framework
//!   replacing `proptest`: integer/tuple/vec generators, bounded
//!   greedy shrinking, and a [`props!`] runner macro that is a drop-in for
//!   the `proptest! { #[test] fn p(x in strat) { .. } }` surface the test
//!   suites use (including `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assume!` and `#![proptest_config(..)]`).
//! * [`bench`] — a criterion-compatible micro-bench shim
//!   ([`Criterion`](bench::Criterion), [`criterion_group!`],
//!   [`criterion_main!`], [`black_box`](bench::black_box),
//!   [`BenchmarkId`](bench::BenchmarkId)) with warmup, batching and
//!   inter-quartile outlier trimming, which writes machine-readable
//!   `BENCH_<name>.json` results (see [`report`]) for the perf trajectory.
//! * [`json`] — the tiny JSON value/writer/parser the bench reports, the
//!   `wfc --json` output, and the schedule cache's disk spill are built on.
//! * [`pool`] — a small work-stealing-free thread pool (`std::thread` +
//!   channels, no rayon) with deterministic, submission-ordered results: a
//!   persistent [`ThreadPool`](pool::ThreadPool) whose
//!   [`try_scope`](pool::ThreadPool::try_scope) forks over borrowed data
//!   with per-job panic containment, sized by the `WF_THREADS`
//!   environment variable (parsed once via
//!   [`try_env_threads`](pool::try_env_threads)).
//! * [`error`] — the workspace-wide typed [`WfError`](error::WfError)
//!   hierarchy (parse / budget / I/O / schedule / panic / unbounded) with
//!   the `wfc` exit-code contract; producing crates convert their own
//!   error types into it.
//! * [`fault`] — deterministic, seeded fault injection (`WF_FAULT` or the
//!   test API) for cache I/O errors, worker-job panics and ILP budget
//!   exhaustion; the robustness property tests and the CI smoke job drive
//!   the pipeline through it.
//! * [`hash`] — a stable FNV-1a 64-bit hasher for content addressing
//!   (the schedule cache's `(SCoP, model, config)` fingerprints), where
//!   `DefaultHasher`'s per-process seeding would break cross-run reuse.
//! * [`obs`] — the zero-dep observability layer: hierarchical spans
//!   emitting Chrome trace-event JSON (`WF_TRACE`, `wfc --trace`), a
//!   process-wide counter/histogram metrics registry (with interpolated
//!   p50/p95/p99 quantiles), and the fusion decision log behind `wfc
//!   explain`; every probe is one relaxed atomic load when disabled.
//!   In-memory buffers are bounded; `WF_TRACE_STREAM` streams spans to
//!   JSONL as they close.
//! * [`attr`] — solver-cost attribution: RAII thread labels (benchmark,
//!   model, statement pair / component, dimension) plus a process-wide
//!   cell/pivot/memo-hit table whose totals reconcile exactly with the
//!   `simplex.cells` counter; behind `wfc profile` / `wfc explain
//!   --costs`.
//! * [`profile`] — folds the span forest into per-name
//!   inclusive/exclusive time and a pool-aware fork/join critical path
//!   (`profile/v1`, `wfc profile`).
//! * [`ledger`] — the `WF_LEDGER` JSONL run ledger: one atomic
//!   crash-safe provenance record per `wfc` invocation (`ledger/v1`,
//!   `wfc ledger`).
//!
//! Everything is deterministic: test case generation is seeded by hashing
//! the test name, so failures reproduce across runs and machines without a
//! persisted regression file.

#![warn(missing_docs)]

pub mod attr;
pub mod bench;
pub mod error;
pub mod fault;
pub mod hash;
pub mod json;
pub mod ledger;
pub mod obs;
pub mod pool;
pub mod profile;
pub mod prop;
pub mod report;
pub mod rng;

/// Generator combinators for collections (`wf_harness::collection::vec`),
/// mirroring `proptest::collection`.
pub mod collection {
    pub use crate::prop::{vec, SizeRange, VecStrategy};
}

pub use bench::{black_box, Bencher, BenchmarkGroup, BenchmarkId, Criterion, Throughput};
pub use error::WfError;
pub use hash::{fnv1a_64, Fnv64};
pub use pool::{JobPanicked, ThreadPool};
pub use rng::{Lcg64, SplitMix64};

/// Everything the property-test suites need: strategies, the runner macro
/// and its assertion macros, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop::{Config, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, props};
}
