//! Criterion-compatible micro-benchmark shim.
//!
//! Implements the slice of the `criterion` API the workspace's benches use
//! — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros — entirely offline.
//!
//! Methodology per benchmark: one calibration call sizes a batch so a
//! sample spans ≥ ~200µs (timer noise floor), a warmup phase runs until
//! [`Criterion::warmup_time`] has elapsed, then `sample_size` samples are
//! collected. The reported statistics trim outliers outside 1.5×IQR (the
//! standard Tukey fence criterion also uses) before computing the mean.
//!
//! Results accumulate on the [`Criterion`] value; [`criterion_main!`]
//! writes them to `BENCH_<crate>.json` under [`report::results_dir`] and
//! prints a human-readable summary.

use crate::json::Json;
use crate::report;
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    #[must_use]
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Parameter-only id (criterion's `from_parameter`).
    #[must_use]
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation carried into the JSON report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Statistics of one benchmark after outlier trimming.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// Full id (`group/function/param`).
    pub id: String,
    /// Trimmed mean, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median, nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest *kept* sample.
    pub max_ns: f64,
    /// Samples kept after trimming.
    pub kept: usize,
    /// Samples discarded as outliers.
    pub outliers: usize,
    /// Iterations per sample (batching factor).
    pub batch: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

impl Sampled {
    fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("id", Json::str(&self.id)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("median_ns", Json::Num(self.median_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("max_ns", Json::Num(self.max_ns)),
            ("samples", Json::from(self.kept)),
            ("outliers_trimmed", Json::from(self.outliers)),
            ("batch", Json::from(self.batch)),
        ]);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                o.push("elements_per_iter", Json::from(n));
                o.push(
                    "elements_per_sec",
                    Json::Num(n as f64 / (self.mean_ns * 1e-9)),
                );
            }
            Some(Throughput::Bytes(n)) => {
                o.push("bytes_per_iter", Json::from(n));
                o.push("bytes_per_sec", Json::Num(n as f64 / (self.mean_ns * 1e-9)));
            }
            None => {}
        }
        o
    }
}

/// The top-level benchmark driver (criterion's entry type).
pub struct Criterion {
    /// Default number of samples per benchmark.
    pub sample_size: usize,
    /// Warmup budget per benchmark.
    pub warmup_time: Duration,
    /// Collected results, in execution order.
    pub results: Vec<Sampled>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Smaller than criterion's 100-sample default: the workspace's
        // benches measure exact-rational solver passes that run for
        // milliseconds to seconds each, where 20 trimmed samples already
        // give stable means and keep `cargo bench` wall-clock sane.
        Criterion {
            sample_size: 20,
            warmup_time: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the default sample count (builder style, like criterion).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group; benchmarks register as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            throughput: None,
            name: name.into(),
            c: self,
        }
    }

    /// Benchmark without a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warmup) = (self.sample_size, self.warmup_time);
        self.record(None, id.into(), sample_size, warmup, None, f);
        self
    }

    fn record<F>(
        &mut self,
        group: Option<&str>,
        id: BenchmarkId,
        sample_size: usize,
        warmup: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let full_id = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        let mut b = Bencher {
            sample_size,
            warmup,
            samples_ns: Vec::new(),
            batch: 1,
        };
        f(&mut b);
        let sampled = summarize(&full_id, &b, throughput);
        eprintln!(
            "{:<44} time: [{} {} {}]{}",
            sampled.id,
            fmt_ns(sampled.min_ns),
            fmt_ns(sampled.mean_ns),
            fmt_ns(sampled.max_ns),
            if sampled.outliers > 0 {
                format!("   ({} outlier(s) trimmed)", sampled.outliers)
            } else {
                String::new()
            }
        );
        self.results.push(sampled);
    }

    /// Render all results as the `BENCH_*.json` payload.
    #[must_use]
    pub fn to_json(&self, name: &str) -> Json {
        Json::obj([
            ("bench", Json::str(name)),
            ("harness", Json::str("wf-harness")),
            ("unit", Json::str("ns")),
            (
                "results",
                Json::Arr(self.results.iter().map(Sampled::to_json).collect()),
            ),
        ])
    }

    /// Write `BENCH_<name>.json` into [`report::results_dir`] and return
    /// the path. Called by [`criterion_main!`]; harmless to call directly.
    pub fn write_report(&self, name: &str) -> std::path::PathBuf {
        report::write_named(name, &self.to_json(name))
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (n, w, t) = (self.sample_size, self.c.warmup_time, self.throughput);
        self.c.record(Some(&self.name), id.into(), n, w, t, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (n, w, t) = (self.sample_size, self.c.warmup_time, self.throughput);
        self.c
            .record(Some(&self.name), id.into(), n, w, t, |b| f(b, input));
        self
    }

    /// End the group (statistics are recorded eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    samples_ns: Vec<f64>,
    batch: u64,
}

impl Bencher {
    /// Measure `f`: calibrate a batch size, warm up, then collect
    /// `sample_size` samples of `batch` iterations each.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: one timed call decides the batching factor.
        let t0 = Instant::now();
        black_box(f());
        self.batch = calibration_batch(t0.elapsed());
        // Warmup until the budget is spent (at least one batch).
        let w0 = Instant::now();
        while w0.elapsed() < self.warmup {
            for _ in 0..self.batch {
                black_box(f());
            }
        }
        // Measurement.
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let s0 = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            let dt = s0.elapsed();
            self.samples_ns
                .push(dt.as_secs_f64() * 1e9 / self.batch as f64);
        }
    }
}

/// A sample must span at least this long for single-iteration timing;
/// anything faster is batched (timer noise floor).
pub const CALIBRATION_TARGET: Duration = Duration::from_micros(200);

/// Decide the batching factor from one calibration measurement: enough
/// iterations per sample to span [`CALIBRATION_TARGET`], clamped to
/// `1..=1_000_000`.
#[must_use]
pub fn calibration_batch(once: Duration) -> u64 {
    if once >= CALIBRATION_TARGET {
        1
    } else {
        let est = once.as_nanos().max(20) as u64;
        (CALIBRATION_TARGET.as_nanos() as u64 / est).clamp(1, 1_000_000)
    }
}

/// Tukey-fence outlier trimming + summary statistics over raw
/// per-iteration samples (nanoseconds). Samples outside `1.5×IQR` of the
/// quartiles are discarded before the mean; if the fence would discard
/// everything (degenerate distributions), all samples are kept.
///
/// # Panics
/// Panics on an empty sample set.
#[must_use]
pub fn summarize_samples(
    id: &str,
    samples_ns: &[f64],
    batch: u64,
    throughput: Option<Throughput>,
) -> Sampled {
    let mut sorted = samples_ns.to_vec();
    assert!(!sorted.is_empty(), "{id}: Bencher::iter was never called");
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let (lo, hi) = (idx.floor() as usize, idx.ceil() as usize);
        sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - idx.floor())
    };
    let (q1, q3) = (q(0.25), q(0.75));
    let iqr = q3 - q1;
    let (lo_fence, hi_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&x| (lo_fence..=hi_fence).contains(&x))
        .collect();
    let kept = if kept.is_empty() {
        sorted.clone()
    } else {
        kept
    };
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    Sampled {
        id: id.to_string(),
        mean_ns: mean,
        median_ns: q(0.5),
        min_ns: kept[0],
        max_ns: *kept.last().expect("non-empty"),
        kept: kept.len(),
        outliers: sorted.len() - kept.len(),
        batch,
        throughput,
    }
}

fn summarize(id: &str, b: &Bencher, throughput: Option<Throughput>) -> Sampled {
    summarize_samples(id, &b.samples_ns, b.batch, throughput)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a bench group function callable from [`criterion_main!`]
/// (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main`: run every group, print the summary, and write
/// `BENCH_<crate>.json` (the crate name of a bench target is its file
/// name, e.g. `compiler_micro`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $( $group(&mut c); )+
            let path = c.write_report(env!("CARGO_CRATE_NAME"));
            eprintln!("wrote {}", path.display());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            warmup_time: Duration::from_millis(1),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/sum");
        assert_eq!(c.results[1].id, "g/sq/7");
        assert!(c.results.iter().all(|r| r.mean_ns > 0.0 && r.kept >= 2));
    }

    #[test]
    fn json_report_shape() {
        let mut c = Criterion {
            warmup_time: Duration::from_millis(1),
            ..Criterion::default()
        };
        c.sample_size = 4;
        c.bench_function("noop", |b| b.iter(|| black_box(1)));
        let j = c.to_json("unit_test").render();
        assert!(j.contains("\"bench\":\"unit_test\""));
        assert!(j.contains("\"id\":\"noop\""));
        assert!(j.contains("mean_ns"));
    }

    #[test]
    fn trimming_discards_spikes() {
        let b = Bencher {
            sample_size: 0,
            warmup: Duration::ZERO,
            samples_ns: vec![10.0, 11.0, 9.0, 10.5, 500.0],
            batch: 1,
        };
        let s = summarize("t", &b, None);
        assert_eq!(s.outliers, 1);
        assert!(s.mean_ns < 20.0);
    }
}
