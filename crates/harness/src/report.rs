//! Machine-readable benchmark result files.
//!
//! Every harness — the criterion-shim benches and the figure-regeneration
//! binaries alike — funnels its results through [`write_named`], which
//! writes `BENCH_<name>.json` into [`results_dir`]. The directory defaults
//! to `target/bench-results` (resolved against `CARGO_TARGET_DIR` /
//! workspace `target/`) and can be redirected with `WF_BENCH_DIR` so CI can
//! collect artifacts from a clean location.

use crate::json::Json;
use std::path::PathBuf;

/// Directory that receives `BENCH_*.json` files. Creation is deferred to
/// [`write_named`].
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("WF_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let target = std::env::var("CARGO_TARGET_DIR").map_or_else(
        |_| {
            // Cargo runs benches with CWD = the *package* dir, so walk the
            // whole ancestry: an existing `target/` (the shared workspace
            // build dir) wins over the nearest `Cargo.toml` (which would be
            // the member crate's own manifest).
            let cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            let mut manifest_dir = None;
            for dir in cur.ancestors() {
                if dir.join("target").is_dir() {
                    return dir.join("target");
                }
                if dir.join("Cargo.toml").is_file() {
                    manifest_dir = Some(dir.to_path_buf());
                }
            }
            manifest_dir.unwrap_or(cur).join("target")
        },
        PathBuf::from,
    );
    target.join("bench-results")
}

/// Write `BENCH_<name>.json` containing `payload` and return the path.
///
/// # Panics
/// Panics if the directory cannot be created or the file cannot be
/// written — a bench that silently drops its results is worse than one
/// that aborts.
pub fn write_named(name: &str, payload: &Json) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut text = payload.render_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_wf_bench_dir() {
        let dir = std::env::temp_dir().join(format!("wf-harness-report-{}", std::process::id()));
        // Env var manipulation is process-global; this is the only test in
        // the crate that touches WF_BENCH_DIR.
        std::env::set_var("WF_BENCH_DIR", &dir);
        let path = write_named("unit", &Json::obj([("ok", Json::Bool(true))]));
        std::env::remove_var("WF_BENCH_DIR");
        let text = std::fs::read_to_string(&path).expect("file written");
        assert!(text.contains("\"ok\": true"));
        assert!(path.file_name().is_some_and(|n| n == "BENCH_unit.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
