//! A small in-tree thread pool (`std::thread` + channels, no rayon).
//!
//! [`ThreadPool`] — persistent workers over one shared job channel — is
//! the only parallel substrate in the workspace; every fork/join site
//! routes through it:
//!
//! * [`ThreadPool::map`] / [`ThreadPool::try_map`] distribute `'static`
//!   jobs and return results **in submission order**, regardless of which
//!   worker finished first (the `wfc bench-all` driver reuses one pool
//!   across all SCoPs of the catalog this way).
//! * [`ThreadPool::try_scope`] is fork/join over *borrowed* data: the
//!   caller blocks until every job of the batch has finished, so jobs may
//!   capture plain references. This is what
//!   [`Optimizer::run_all`](../wf_wisefuse/struct.Optimizer.html) uses to
//!   schedule the five fusion models against one shared dependence graph,
//!   and what the interpreting executor's parallel bands run on (through
//!   `wf_runtime::ExecContext`). The caller itself participates in
//!   draining the batch, so a `try_scope` issued *from inside* a pool
//!   job — or against a saturated pool — still completes instead of
//!   deadlocking.
//!
//! There is deliberately no work stealing: jobs are pulled off one shared
//! channel, which is contention-free at the workspace's job granularity
//! (each job is an ILP-backed scheduling pass or an executor chunk,
//! milliseconds at minimum).
//!
//! Determinism: every map/scope helper indexes its submissions and slots
//! results back by that index, so the output of a parallel map is
//! **byte-identical** to the serial `items.into_iter().map(f).collect()` —
//! worker count and finish order cannot leak into the result.
//! `threads <= 1` (or a single-item input) never forks at all and runs
//! inline on the caller's thread, which is the documented `WF_THREADS=1`
//! serial fallback.

use crate::error::WfError;
use crate::obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// A job's panic, contained by the pool and captured as data. Converts
/// into [`WfError::JobPanic`](crate::error::WfError::JobPanic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanicked {
    /// The panic payload, if it was a string (the common `panic!("...")`
    /// case); a placeholder otherwise.
    pub message: String,
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f(x)` with the panic contained as a [`JobPanicked`].
fn contain<T, R>(f: impl Fn(T) -> R, x: T) -> Result<R, JobPanicked> {
    catch_unwind(AssertUnwindSafe(|| f(x))).map_err(|p| JobPanicked {
        message: panic_message(p.as_ref()),
    })
}

/// Worker-thread count for parallel phases, validated: the `WF_THREADS`
/// environment variable when set to a positive integer, else
/// [`available_parallelism`](thread::available_parallelism) capped at 8
/// (the paper's core count, and the cap the bench harnesses already use).
///
/// # Errors
/// [`WfError::Invalid`] (exit code 2) when `WF_THREADS` is set but is not
/// a positive integer — `wfc` validates this up front instead of letting
/// a typo silently serialize the run.
pub fn try_env_threads() -> Result<usize, WfError> {
    match std::env::var("WF_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(WfError::invalid(format!(
                "WF_THREADS must be a positive integer, got {s:?}"
            ))),
        },
        Err(_) => Ok(thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(8)),
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Persistent workers over one shared job channel; see the module docs.
pub struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool of `max(threads, 1)` workers.
    #[must_use]
    pub fn new(threads: usize) -> ThreadPool {
        let n = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|k| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("wf-pool-{k}"))
                    .spawn(move || loop {
                        let job = {
                            let guard =
                                rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            // Contain panics so one bad job cannot shrink
                            // the pool; `map` detects the missing result.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn wf-pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            rx,
            workers,
        }
    }

    /// Run one queued job inline on the caller's thread if one is
    /// immediately available. Returns whether a job ran. Used by stalled
    /// [`try_scope`](ThreadPool::try_scope) joins to guarantee liveness
    /// when every worker is itself parked in a nested join.
    fn help_drain_one(&self) -> bool {
        // try_lock, not lock: an idle worker parks inside `recv` *holding*
        // the queue mutex, and blocking on it here would trade one stall
        // for another. If a worker holds the lock it will take the queued
        // job itself the moment it wakes.
        let job = match self.rx.try_lock() {
            Ok(guard) => guard.try_recv().ok(),
            Err(_) => None,
        };
        match job {
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
                true
            }
            None => false,
        }
    }

    /// A pool sized by [`try_env_threads`] (an invalid `WF_THREADS` falls
    /// back to a single worker; `wfc` rejects it up front instead).
    #[must_use]
    pub fn from_env() -> ThreadPool {
        ThreadPool::new(try_env_threads().unwrap_or(1))
    }

    /// Number of worker threads.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit one fire-and-forget job. If the worker channel is already
    /// closed (the pool is mid-drop), the job runs inline on the caller's
    /// thread instead of being lost — submission never fails.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_boxed(Box::new(job));
    }

    fn execute_boxed(&self, job: Job) {
        match &self.tx {
            Some(tx) => {
                if let Err(mpsc::SendError(job)) = tx.send(job) {
                    job();
                }
            }
            None => job(),
        }
    }

    /// Fork/join over **borrowed** data on the persistent workers: run
    /// `f(0)..f(jobs-1)` with up to `threads` ways of concurrency and
    /// return the contained per-job outcomes in job order (a panicking job
    /// yields `Err(JobPanicked)` for its slot; the others survive).
    ///
    /// `threads <= 1` (or a single job) runs everything inline on the
    /// caller's thread — the serial fallback is byte-identical by
    /// construction. Otherwise up to `threads - 1` helper jobs are
    /// submitted to the pool and the **caller participates** in draining
    /// the shared job counter, so the join can never deadlock: under pool
    /// saturation — including a `try_scope` issued from *inside* a pool
    /// worker, as `wfc bench-all`'s replay phase does — the caller simply
    /// runs every job itself, and a join stalled on still-queued helper
    /// closures (possible when **every** worker is parked in a nested
    /// join) drains the pool queue inline until they have run. Concurrency is bounded by `threads`
    /// regardless of the pool's worker count, and which thread runs which
    /// job cannot leak into the result vector.
    ///
    /// Like the map helpers, workers re-enter the submitting thread's span
    /// context so their spans nest under the forking span.
    pub fn try_scope<R, F>(&self, threads: usize, jobs: usize, f: F) -> Vec<Result<R, JobPanicked>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if threads <= 1 || jobs <= 1 {
            return (0..jobs).map(|i| contain(&f, i)).collect();
        }
        obs::observe("pool.queue_depth", jobs as u64);
        let ctx = obs::current_ctx();
        let next = AtomicUsize::new(0);
        let (rtx, rrx) = mpsc::channel::<(usize, Result<R, JobPanicked>)>();
        // Claim loop shared by the helpers and the caller: grab the next
        // unclaimed job index, run it contained, send the slotted result.
        let work = |rtx: &mpsc::Sender<(usize, Result<R, JobPanicked>)>| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            let _ = rtx.send((i, contain(&f, i)));
        };
        for _ in 0..threads.min(jobs).min(self.n_threads() + 1) - 1 {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new({
                let rtx = rtx.clone();
                let work = &work;
                move || {
                    let _ctx = obs::enter_ctx(ctx);
                    work(&rtx);
                }
            });
            // SAFETY: the job borrows stack data (`f`, `next`, `work`), so
            // its lifetime must be erased to ride the 'static job channel.
            // This is sound because the receive loop below returns only
            // once every clone of `rtx` has been dropped — i.e. once every
            // helper body has run to completion (or unwound, dropping its
            // `rtx` either way) — so no worker can touch the borrows after
            // this frame returns. Channel disconnect *is* the join barrier.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            self.execute_boxed(job);
        }
        work(&rtx);
        drop(rtx);
        let mut out: Vec<Option<Result<R, JobPanicked>>> =
            std::iter::repeat_with(|| None).take(jobs).collect();
        loop {
            match rrx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok((i, r)) => out[i] = Some(r),
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Every still-queued helper closure holds an `rtx`
                    // clone, and when every worker is parked in a nested
                    // join like this one (bench-all's replay phase runs
                    // `run_all` — and therefore inner scopes — inside pool
                    // jobs), no worker is left to run them and disconnect
                    // the channel. A stalled join therefore drains the
                    // pool queue itself: queued helpers run inline here
                    // (instantly breaking once `next >= jobs`), drop their
                    // `rtx`, and unblock the join. Some blocked join can
                    // always make progress this way, so the system cannot
                    // wedge; the soundness argument below is untouched
                    // because we still return only on disconnect.
                    while self.help_drain_one() {}
                }
            }
        }
        out.into_iter()
            .map(|o| o.expect("every job index is claimed exactly once"))
            .collect()
    }

    /// Map `f` over `items` on the pool's workers, returning results in
    /// submission order. A single-worker pool (or single item) runs inline.
    ///
    /// # Panics
    /// Re-raises the first job panic (the pool itself survives); use
    /// [`try_map`](ThreadPool::try_map) to receive contained panics as
    /// per-slot errors instead.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("a pool job panicked: {}", p.message),
            })
            .collect()
    }

    /// [`map`](ThreadPool::map) with per-job panic isolation: a panicking
    /// job yields `Err(JobPanicked)` for its slot, every other slot's
    /// result survives, and the pool keeps serving subsequent submissions
    /// (the worker containment in the job loop means no thread dies).
    pub fn try_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, JobPanicked>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if self.n_threads() <= 1 || n <= 1 {
            return items.into_iter().map(|x| contain(&f, x)).collect();
        }
        obs::observe("pool.queue_depth", n as u64);
        let ctx = obs::current_ctx();
        let f = Arc::new(f);
        let (rtx, rrx) = mpsc::channel::<(usize, Result<R, JobPanicked>)>();
        for (i, x) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            self.execute(move || {
                let _ctx = obs::enter_ctx(ctx);
                let _ = rtx.send((i, contain(&*f, x)));
            });
        }
        drop(rtx);
        let mut out: Vec<Option<Result<R, JobPanicked>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        while let Ok((i, r)) = rrx.recv() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every submitted job produced a result or a contained panic"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The process-wide shared pool, sized by [`try_env_threads`] on first
/// use. Long-lived drivers (`wfc bench-all`) and the interpreting
/// executor's parallel bands use this so worker threads are spawned once
/// and reused across every SCoP, band, and batch of the process.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_map_preserves_order_and_reuses_workers() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.n_threads(), 3);
        for _ in 0..3 {
            let out = pool.map((0..32u64).collect(), |x| x + 100);
            assert_eq!(out, (100..132).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_execute_runs_jobs() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let (hits, tx) = (Arc::clone(&hits), tx.clone());
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..8 {
            rx.recv_timeout(std::time::Duration::from_secs(5))
                .expect("job ran");
        }
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn pool_try_map_isolates_panics_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let out = pool.try_map((0..8u64).collect(), |x| {
            assert_ne!(x, 5, "poisoned job");
            x + 1
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert!(r.is_err(), "slot 5 must be the contained panic");
            } else {
                assert_eq!(*r, Ok(i as u64 + 1));
            }
        }
        // Subsequent maps on the same pool still succeed: no worker died.
        let ok = pool.map((0..8u64).collect(), |x| x * 2);
        assert_eq!(ok, (0..8u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "a pool job panicked")]
    fn pool_map_reraises_contained_panics() {
        let pool = ThreadPool::new(2);
        let _ = pool.map(vec![0, 1, 2, 3], |x| {
            assert_ne!(x, 1);
            x
        });
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.execute(|| panic!("contained"));
        pool.execute(move || {
            let _ = tx.send(42);
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
    }

    #[test]
    fn try_scope_borrows_and_matches_serial_at_every_width() {
        let data: Vec<i64> = (0..64).collect();
        let serial: Vec<i64> = data.iter().map(|x| x * 3 - 7).collect();
        let pool = ThreadPool::new(4);
        for threads in [1, 2, 3, 8] {
            let out: Vec<i64> = pool
                .try_scope(threads, data.len(), |i| data[i] * 3 - 7)
                .into_iter()
                .map(|r| r.expect("no panics"))
                .collect();
            assert_eq!(out, serial, "{threads} threads");
        }
    }

    #[test]
    fn try_scope_serial_fallback_runs_inline() {
        let pool = ThreadPool::new(4);
        let here = thread::current().id();
        let out = pool.try_scope(1, 3, |i| {
            assert_eq!(thread::current().id(), here);
            i + 1
        });
        assert_eq!(out, vec![Ok(1), Ok(2), Ok(3)]);
    }

    #[test]
    fn try_scope_contains_panics_per_slot_and_pool_survives() {
        let pool = ThreadPool::new(2);
        for threads in [1, 4] {
            let out = pool.try_scope(threads, 4, |i| {
                if i == 2 {
                    panic!("boom on {i}");
                }
                i * 10
            });
            assert_eq!(out[0], Ok(0));
            assert_eq!(out[1], Ok(10));
            assert_eq!(out[3], Ok(30));
            let p = out[2].as_ref().expect_err("slot 2 panicked");
            assert!(p.message.contains("boom on 2"), "payload lost: {p:?}");
        }
        // No worker died: subsequent scopes still run on pool threads.
        let ok = pool.try_scope(2, 8, |i| i + 1);
        assert!(ok.iter().all(Result::is_ok));
    }

    #[test]
    fn try_scope_completes_when_every_worker_is_busy() {
        // Park the pool's only worker; the caller must drain the whole
        // batch itself instead of deadlocking on the join.
        let pool = ThreadPool::new(1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            let _ = block_rx.recv_timeout(std::time::Duration::from_secs(10));
        });
        let out = pool.try_scope(4, 8, |i| i * 2);
        assert_eq!(
            out,
            (0..8).map(|i| Ok(i * 2)).collect::<Vec<_>>(),
            "saturated pool must not stall a scope"
        );
        let _ = block_tx.send(());
    }

    #[test]
    fn map_jobs_may_fork_scopes_on_a_saturated_pool() {
        // The bench-all replay shape: every worker runs a map job that
        // itself forks a try_scope on the same pool. With all workers
        // parked in their inner joins, the queued helper closures can
        // only run via the stalled joins' queue draining — this test
        // wedged forever before help_drain_one existed.
        let pool = Arc::new(ThreadPool::new(4));
        let p = Arc::clone(&pool);
        let out = pool.map((0..8usize).collect(), move |i| {
            let inner: usize = p
                .try_scope(4, 6, |j| i * 100 + j)
                .into_iter()
                .map(|r| r.expect("inner job"))
                .sum();
            inner
        });
        let expect: Vec<usize> = (0..8).map(|i| 6 * (i * 100) + 15).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn try_scope_nests_without_deadlock() {
        // A scope forked from inside a scope job shares the same workers;
        // the inner caller drains its own batch, so this cannot wedge.
        let pool = ThreadPool::new(2);
        let out = pool.try_scope(2, 3, |i| {
            let inner: usize = pool
                .try_scope(2, 3, |j| i * 10 + j)
                .into_iter()
                .map(|r| r.expect("inner job"))
                .sum();
            inner
        });
        let expect: Vec<_> = (0..3).map(|i| Ok(3 * (i * 10) + 3)).collect();
        assert_eq!(out, expect);
    }
}
