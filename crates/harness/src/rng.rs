//! Deterministic pseudo-random number generation.
//!
//! Two generators, both trivially portable and pinned by golden-value
//! tests:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. Fast, passes BigCrush,
//!   and every seed yields an independent-looking stream; this is the
//!   workspace's general-purpose generator (array initialization, property
//!   test case generation).
//! * [`Lcg64`] — the Knuth MMIX linear congruential generator, kept because
//!   the emitted-C backend embeds the identical recurrence so interpreter
//!   and compiled executions can be compared bit-for-bit.

/// SplitMix64 (public domain, Vigna 2015). The entire state is one `u64`;
/// `next_u64` advances by the golden-ratio increment and applies a 3-round
/// mixer, so even seeds 0 and 1 produce uncorrelated streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any value is fine, including 0.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[0, bound)` (modulo reduction; the bias is
    /// < 2^-40 for every bound the workspace uses and determinism matters
    /// more than the last ulp of uniformity here).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range [0, 0)");
        self.next_u64() % bound
    }

    /// Uniform `i128` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u128;
        let r = if span <= u128::from(u64::MAX) {
            u128::from(self.gen_below(span as u64))
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % span
        };
        lo + r as i128
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_below((hi - lo) as u64) as usize
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fork an independent generator (for nested structures that should not
    /// perturb the parent stream).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Knuth MMIX LCG: `x <- 6364136223846793005 x + 1442695040888963407`.
/// The C backend emits the same recurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    /// Seed via one golden-ratio scramble (matching the emitted C).
    #[must_use]
    pub fn new(seed: u64) -> Lcg64 {
        Lcg64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        }
    }

    /// Next raw output (the full 64-bit state; callers should discard low
    /// bits, which have short periods in any power-of-two-modulus LCG).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a byte string — used to derive per-test seeds from test
/// names so every property test explores a distinct but reproducible
/// stream.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from Vigna's splitmix64.c.
        let mut r = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn splitmix_streams_differ_by_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!((-5..6).contains(&r.gen_i128(-5, 6)));
            assert!((2..9).contains(&r.gen_usize(2, 9)));
            let f = r.gen_f64(0.01, 1.0);
            assert!((0.01..1.0).contains(&f));
        }
    }

    #[test]
    fn lcg_matches_documented_recurrence() {
        let mut r = Lcg64::new(7);
        let s0 = 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let expect = s0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        assert_eq!(r.next_u64(), expect);
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"prop_a"), fnv1a(b"prop_b"));
    }
}
