//! **obs** — the workspace's zero-dependency observability layer.
//!
//! Three instruments share one process-wide switchboard, all compiled to
//! near-zero cost when disabled (a single relaxed atomic load per probe,
//! no allocation, no locking):
//!
//! * **Hierarchical spans** — [`span`] (or the [`span!`](crate::span)
//!   macro) returns an RAII guard that records a timed interval on drop.
//!   Timestamps come from one process-wide monotonic epoch
//!   ([`Instant`]), nesting is tracked per thread, and the pool helpers
//!   in [`pool`](crate::pool) propagate the submitting thread's span
//!   context into worker jobs via [`current_ctx`]/[`enter_ctx`], so a
//!   worker's `ilp.solve` span nests under the `run_all` span that
//!   submitted it. [`write_trace`] renders everything as Chrome
//!   trace-event JSON (`chrome://tracing`, Perfetto) — the `wfc --trace
//!   <path>` / `WF_TRACE=<path>` surface.
//! * **A metrics registry** — named monotone counters ([`add`]) and
//!   power-of-two bucketed histograms ([`observe`]) keyed by `'static`
//!   names, snapshotted as JSON ([`metrics`], [`MetricsSnapshot`]).
//!   The pipeline feeds it ILP nodes/pivots, simplex iterations, FM
//!   eliminations, cache hit/miss/spill traffic, pool batch sizes,
//!   budget exhaustions and fault injections; `wfc bench-all` embeds a
//!   per-benchmark delta in every report row.
//! * **A fusion decision log** — [`decision`] records *why* the
//!   scheduler did what it did: every Algorithm 1 ordering choice (seed
//!   placement, reuse-driven fuse, dimensionality match, program-order
//!   tiebreak) and every Algorithm 2 cut (the offending forward
//!   dependence, its SCC pair, the candidate hyperplane it poisoned).
//!   Entries are tagged with the active [`scope`] (the fusion strategy
//!   set by the scheduling engine) and a per-scope sequence number, so
//!   [`drain_decisions`] yields a deterministic order regardless of how
//!   many pool workers were scheduling concurrently. `wfc explain
//!   <kernel>` renders the log for humans.
//!
//! Enabling any instrument never changes pipeline *results*: probes only
//! read pipeline state, and the scheduler's determinism tests assert
//! byte-identical schedules traced vs. untraced.
//!
//! The in-memory event and decision buffers are **bounded**
//! ([`set_buffer_limit`], default [`DEFAULT_BUFFER_LIMIT`]): once full,
//! further records are counted in [`dropped`] (and the `obs.dropped`
//! counter) instead of growing without bound. Long runs that need every
//! span stream them to disk instead: `WF_TRACE_STREAM=<path>`
//! ([`stream_open`]) writes each span as one JSONL line the moment it
//! closes, bypassing the in-memory buffer entirely.

use crate::json::Json;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Bit flag: record spans ([`span`]).
pub const TRACE: u8 = 1;
/// Bit flag: record metrics ([`add`], [`observe`]).
pub const METRICS: u8 = 2;
/// Bit flag: record fusion decisions ([`decision`]).
pub const DECISIONS: u8 = 4;

/// The master switch; all probes gate on one relaxed load of this.
static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Enable the given instrument bits (`TRACE | METRICS | DECISIONS`),
/// replacing the previous set. `set_enabled(0)` turns everything off.
pub fn set_enabled(flags: u8) {
    FLAGS.store(flags, Ordering::Relaxed);
}

/// Current instrument bits.
#[must_use]
pub fn enabled() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

/// Is span recording on?
#[inline]
#[must_use]
pub fn trace_on() -> bool {
    enabled() & TRACE != 0
}

/// Is the metrics registry on?
#[inline]
#[must_use]
pub fn metrics_on() -> bool {
    enabled() & METRICS != 0
}

/// Is the fusion decision log on?
#[inline]
#[must_use]
pub fn decisions_on() -> bool {
    enabled() & DECISIONS != 0
}

/// Enable from the environment: `WF_TRACE=<path>` turns on spans and
/// metrics (the path is the caller's business — `wfc` writes the Chrome
/// trace there on exit). Returns the path when set.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("WF_TRACE").ok().filter(|p| !p.is_empty())?;
    set_enabled(enabled() | TRACE | METRICS);
    Some(path)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// The process-wide monotonic epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Span ids are process-unique and never reused; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for the trace (`std::thread::ThreadId` is
/// opaque); assigned on each thread's first probe.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Innermost live span id on this thread (0 at top level).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// This thread's dense trace id.
    static TID: Cell<u32> = const { Cell::new(0) };
    /// The decision scope ([`scope`]) active on this thread.
    static SCOPE: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

fn tid() -> u32 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// One recorded interval, in Chrome trace-event terms.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (static: span names form a fixed taxonomy).
    pub name: &'static str,
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Dense thread id.
    pub tid: u32,
    /// This span's id.
    pub id: u64,
    /// Enclosing span's id (0 = root). Pool workers inherit the
    /// *submitting* span here, which is what makes traces hierarchical
    /// across threads.
    pub parent: u64,
    /// Extra key/value annotations.
    pub args: Vec<(&'static str, String)>,
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn events_guard() -> MutexGuard<'static, Vec<TraceEvent>> {
    EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Buffer bounds & the streaming sink
// ---------------------------------------------------------------------------

/// Default cap on the in-memory event buffer and the decision log
/// (each), in records. Roomy for every interactive run; fuzz/bench
/// marathons that overflow it should stream (`WF_TRACE_STREAM`).
pub const DEFAULT_BUFFER_LIMIT: usize = 262_144;

/// Records the streaming sink will write before dropping, per stream:
/// a multiple of the in-memory cap since disk is the escape hatch.
const STREAM_LIMIT_FACTOR: u64 = 64;

static BUFFER_LIMIT: AtomicUsize = AtomicUsize::new(DEFAULT_BUFFER_LIMIT);

/// Records (events + decisions + streamed lines) dropped because a
/// bound was hit. Counted even when metrics are off, so the trace
/// writer can warn about truncation.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Cap the in-memory event buffer and decision log at `limit` records
/// each (see [`DEFAULT_BUFFER_LIMIT`]). Overflow increments [`dropped`]
/// and the `obs.dropped` counter rather than allocating.
pub fn set_buffer_limit(limit: usize) {
    BUFFER_LIMIT.store(limit.max(1), Ordering::Relaxed);
}

/// The current in-memory buffer cap.
#[must_use]
pub fn buffer_limit() -> usize {
    BUFFER_LIMIT.load(Ordering::Relaxed)
}

/// Total records dropped so far because a buffer or stream bound was
/// hit (process lifetime; monotone).
#[must_use]
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn drop_one() {
    DROPPED.fetch_add(1, Ordering::Relaxed);
    add("obs.dropped", 1);
}

struct StreamSink {
    w: std::io::BufWriter<std::fs::File>,
    lines: u64,
    max_lines: u64,
}

/// `Some` while a stream is open; the flag mirrors it so the span-drop
/// hot path can skip the mutex entirely when not streaming.
static STREAM: Mutex<Option<StreamSink>> = Mutex::new(None);
static STREAM_ON: AtomicBool = AtomicBool::new(false);

fn stream_guard() -> MutexGuard<'static, Option<StreamSink>> {
    STREAM
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Open the streaming span sink at `path` (truncating; parent
/// directories created): from now on every closing span is written as
/// one line-buffered JSONL record instead of accumulating in memory.
/// The stream is bounded at `64 ×` the in-memory cap; overflow counts
/// in [`dropped`]. This is the `WF_TRACE_STREAM=<path>` surface.
///
/// # Errors
/// Propagates filesystem errors from creating the file.
pub fn stream_open(path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file = std::fs::File::create(path)?;
    *stream_guard() = Some(StreamSink {
        w: std::io::BufWriter::new(file),
        lines: 0,
        max_lines: (buffer_limit() as u64).saturating_mul(STREAM_LIMIT_FACTOR),
    });
    STREAM_ON.store(true, Ordering::Release);
    Ok(())
}

/// Is the streaming sink open?
#[must_use]
pub fn stream_active() -> bool {
    STREAM_ON.load(Ordering::Acquire)
}

/// Flush and close the streaming sink; returns how many lines were
/// written (`None` when no stream was open). Dropped-on-bound records
/// are in [`dropped`].
pub fn stream_close() -> std::io::Result<Option<u64>> {
    STREAM_ON.store(false, Ordering::Release);
    match stream_guard().take() {
        None => Ok(None),
        Some(mut s) => {
            s.w.flush()?;
            Ok(Some(s.lines))
        }
    }
}

/// Write one event to the open stream (line-buffered: one write + flush
/// per span, so a crash loses at most the span being written).
fn stream_write(ev: &TraceEvent) {
    let mut g = stream_guard();
    let Some(s) = g.as_mut() else {
        // Raced with stream_close; fall back to the bounded buffer.
        drop(g);
        buffer_push(ev.clone());
        return;
    };
    if s.lines >= s.max_lines {
        drop(g);
        drop_one();
        return;
    }
    let mut line = event_json(ev).render();
    line.push('\n');
    if s.w
        .write_all(line.as_bytes())
        .and_then(|()| s.w.flush())
        .is_ok()
    {
        s.lines += 1;
    }
}

/// Push into the bounded in-memory buffer, counting overflow.
fn buffer_push(ev: TraceEvent) {
    let mut g = events_guard();
    if g.len() >= buffer_limit() {
        drop(g);
        drop_one();
        return;
    }
    g.push(ev);
}

/// RAII span guard: records a [`TraceEvent`] on drop when tracing was on
/// at creation. Deliberately `!Send` — a span belongs to the thread that
/// opened it (cross-thread propagation goes through [`current_ctx`]).
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, String)>,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach a key/value annotation (no-op on an inactive guard, so
    /// callers can annotate unconditionally without paying when off).
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) -> &mut SpanGuard {
        if self.active {
            self.args.push((key, value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CURRENT_SPAN.with(|c| c.set(self.parent));
        let ev = TraceEvent {
            name: self.name,
            ts_us: self.start_us,
            dur_us: now_us().saturating_sub(self.start_us),
            tid: tid(),
            id: self.id,
            parent: self.parent,
            args: std::mem::take(&mut self.args),
        };
        if stream_active() {
            stream_write(&ev);
        } else {
            buffer_push(ev);
        }
    }
}

/// Open a span; the returned guard records it when dropped. When tracing
/// is off this is one atomic load and an inert guard — no clock read, no
/// id allocation, no lock.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_on() {
        return SpanGuard {
            name,
            start_us: 0,
            id: 0,
            parent: 0,
            args: Vec::new(),
            active: false,
            _not_send: std::marker::PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|c| {
        let p = c.get();
        c.set(id);
        p
    });
    SpanGuard {
        name,
        start_us: now_us(),
        id,
        parent,
        args: Vec::new(),
        active: true,
        _not_send: std::marker::PhantomData,
    }
}

/// A capturable reference to the calling thread's innermost span,
/// for handing to worker threads.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanCtx(u64);

/// Capture the calling thread's span context (to re-enter on a worker).
#[must_use]
pub fn current_ctx() -> SpanCtx {
    if !trace_on() {
        return SpanCtx(0);
    }
    SpanCtx(CURRENT_SPAN.with(Cell::get))
}

/// RAII guard restoring the previous thread-local span context on drop.
pub struct CtxGuard {
    prev: u64,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT_SPAN.with(|c| c.set(self.prev));
        }
    }
}

/// Adopt a captured [`SpanCtx`] as this thread's current span, so spans
/// opened by a pool worker nest under the span that submitted the job.
#[must_use]
pub fn enter_ctx(ctx: SpanCtx) -> CtxGuard {
    if !trace_on() {
        return CtxGuard {
            prev: 0,
            active: false,
            _not_send: std::marker::PhantomData,
        };
    }
    let prev = CURRENT_SPAN.with(|c| {
        let p = c.get();
        c.set(ctx.0);
        p
    });
    CtxGuard {
        prev,
        active: true,
        _not_send: std::marker::PhantomData,
    }
}

/// Remove and return every recorded trace event (tests, and the trace
/// writer).
#[must_use]
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *events_guard())
}

/// One event in Chrome trace-event form (also the streaming sink's
/// per-line format, so a streamed file is the `traceEvents` array, one
/// element per line).
#[must_use]
pub fn event_json(e: &TraceEvent) -> Json {
    let mut args = vec![("id", Json::from(e.id)), ("parent", Json::from(e.parent))];
    for (k, v) in &e.args {
        args.push((*k, Json::str(v.as_str())));
    }
    Json::obj([
        ("name", Json::str(e.name)),
        ("cat", Json::str("wf")),
        ("ph", Json::str("X")),
        ("ts", Json::from(e.ts_us)),
        ("dur", Json::from(e.dur_us)),
        ("pid", Json::Int(1)),
        ("tid", Json::from(u64::from(e.tid))),
        ("args", Json::obj(args)),
    ])
}

/// Render events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`; complete `"ph":"X"` events, microsecond
/// timestamps). The `parent` span id rides in `args` so tools and tests
/// can reconstruct the hierarchy exactly even across thread boundaries.
/// A metrics snapshot and the solver-cost attribution table ride along
/// so `wfc profile --trace FILE` can reconcile cells without re-running.
#[must_use]
pub fn trace_json(events: &[TraceEvent]) -> Json {
    let evs: Vec<Json> = events.iter().map(event_json).collect();
    Json::obj([
        ("traceEvents", Json::Arr(evs)),
        ("displayTimeUnit", Json::str("ms")),
        ("metrics", metrics().to_json()),
        ("attribution", crate::attr::snapshot().to_json()),
        ("dropped", Json::from(dropped())),
    ])
}

/// Drain all recorded spans and write them (plus a metrics snapshot) as
/// Chrome trace JSON to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_trace(path: &str) -> std::io::Result<()> {
    let events = take_events();
    let doc = trace_json(&events);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, doc.render())
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Histogram bucket upper bounds: powers of two `1, 2, 4, …, 2^20`, plus
/// an implicit overflow bucket. A value `v` lands in the first bucket
/// whose bound is `>= v` (so bucket `2^k` holds `2^(k-1) < v <= 2^k`,
/// and bucket `1` holds `v <= 1`).
pub const HISTOGRAM_BOUNDS: [u64; 21] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131_072,
    262_144, 524_288, 1_048_576,
];

/// A power-of-two bucketed histogram (see [`HISTOGRAM_BOUNDS`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[HISTOGRAM_BOUNDS.len()]`
    /// is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for Histogram {
    /// An empty histogram with every bucket (including overflow) present.
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; HISTOGRAM_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        HISTOGRAM_BOUNDS.partition_point(|&b| b < value)
    }

    /// Record one observation (callers building ad-hoc histograms, e.g.
    /// `wfc cache --stats --json` over spill entry sizes/ages; the
    /// registry path goes through [`observe`]).
    pub fn record(&mut self, value: u64) {
        self.counts[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// This histogram minus an earlier snapshot of the same histogram.
    #[must_use]
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut counts = self.counts.clone();
        for (c, e) in counts.iter_mut().zip(&earlier.counts) {
            *c = c.saturating_sub(*e);
        }
        Histogram {
            counts,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// The `q`-quantile (`0 < q <= 1`), linearly interpolated inside the
    /// power-of-two bucket the rank lands in (bucket `i` spans
    /// `(bound[i-1], bound[i]]`; the overflow bucket interpolates over
    /// one further doubling). An estimate — exact only when the bucket
    /// is a point — but monotone in `q` and deterministic in the counts.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let (prev, next) = (cum as f64, (cum + n) as f64);
            cum += n;
            if next >= rank {
                let lo = if i == 0 { 0 } else { HISTOGRAM_BOUNDS[i - 1] };
                let hi = HISTOGRAM_BOUNDS
                    .get(i)
                    .copied()
                    .unwrap_or(HISTOGRAM_BOUNDS[HISTOGRAM_BOUNDS.len() - 1] * 2);
                #[allow(clippy::cast_precision_loss)]
                let (lo, hi) = (lo as f64, hi as f64);
                let frac = (rank - prev) / (next - prev);
                return lo + frac * (hi - lo);
            }
        }
        // Unreachable with a consistent histogram; be safe anyway.
        #[allow(clippy::cast_precision_loss)]
        let fallback = HISTOGRAM_BOUNDS[HISTOGRAM_BOUNDS.len() - 1] as f64;
        fallback
    }

    /// The upper bound of bucket `i` (`2 * 2^20` for the overflow
    /// bucket, matching [`quantile`](Histogram::quantile)'s one further
    /// doubling).
    fn bucket_bound(i: usize) -> u64 {
        HISTOGRAM_BOUNDS
            .get(i)
            .copied()
            .unwrap_or(HISTOGRAM_BOUNDS[HISTOGRAM_BOUNDS.len() - 1] * 2)
    }

    /// A quantile rendered for reports: `null` for an empty histogram
    /// (there is no rank to estimate), the bucket's upper bound when
    /// every observation sits in a single bucket (interpolating inside
    /// one bucket invents sub-bucket precision that merging shard
    /// histograms cannot reproduce), otherwise the interpolated
    /// estimate rounded to 3 decimals so the rendering is stable.
    #[must_use]
    pub fn quantile_json(&self, q: f64) -> Json {
        if self.count == 0 {
            return Json::Null;
        }
        let mut nonzero = self.counts.iter().enumerate().filter(|(_, &n)| n > 0);
        if let (Some((i, _)), None) = (nonzero.next(), nonzero.next()) {
            #[allow(clippy::cast_precision_loss)]
            return Json::Num(Histogram::bucket_bound(i) as f64);
        }
        Json::Num((self.quantile(q) * 1000.0).round() / 1000.0)
    }

    /// JSON form: `{"count", "sum", "p50", "p95", "p99", "buckets":
    /// [{"le", "n"}, ...]}` with zero buckets elided (`le` is `"inf"`
    /// for the overflow bucket); the quantiles follow
    /// [`quantile_json`](Histogram::quantile_json) (nulls when empty,
    /// the bucket bound when only one bucket is populated).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let le = HISTOGRAM_BOUNDS
                    .get(i)
                    .map_or_else(|| Json::str("inf"), |&b| Json::from(b));
                Json::obj([("le", le), ("n", Json::from(n))])
            })
            .collect();
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("p50", self.quantile_json(0.50)),
            ("p95", self.quantile_json(0.95)),
            ("p99", self.quantile_json(0.99)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parse a histogram back from its [`to_json`](Histogram::to_json)
    /// form. Report merging must sum raw bucket counts — quantiles of a
    /// union cannot be derived from per-shard quantiles — so this is
    /// the inverse the merge layer round-trips through. Returns `None`
    /// on shape mismatch, an unknown bucket bound, or bucket counts
    /// that do not sum to `count`.
    #[must_use]
    pub fn from_json(doc: &Json) -> Option<Histogram> {
        let as_u64 = |j: &Json| j.as_i128().and_then(|v| u64::try_from(v).ok());
        let mut h = Histogram {
            count: as_u64(doc.get("count")?)?,
            sum: as_u64(doc.get("sum")?)?,
            ..Histogram::default()
        };
        for bucket in doc.get("buckets")?.as_arr()? {
            let n = as_u64(bucket.get("n")?)?;
            let idx = match bucket.get("le")? {
                Json::Str(s) if s == "inf" => HISTOGRAM_BOUNDS.len(),
                le => HISTOGRAM_BOUNDS.binary_search(&as_u64(le)?).ok()?,
            };
            h.counts[idx] = h.counts[idx].checked_add(n)?;
        }
        if h.counts.iter().sum::<u64>() != h.count {
            return None;
        }
        Some(h)
    }

    /// Fold another histogram's raw bucket counts into this one (shard
    /// report merging; quantiles are then recomputed from the merged
    /// buckets, never averaged across shards).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Add `delta` to the named counter (created on first use). One relaxed
/// atomic load and nothing else when metrics are off.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !metrics_on() || delta == 0 {
        return;
    }
    *registry().counters.entry(name).or_insert(0) += delta;
}

/// Record one observation in the named histogram (created on first
/// use). One relaxed atomic load and nothing else when metrics are off.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !metrics_on() {
        return;
    }
    registry().histograms.entry(name).or_default().record(value);
}

/// A point-in-time copy of the metrics registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if it was ever observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// This snapshot minus an `earlier` one — counters and histograms
    /// that did not move are dropped, so the delta is exactly "what this
    /// phase did".
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(&k, &v)| {
                let d = v.saturating_sub(earlier.counter(k));
                (d > 0).then_some((k, d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(&k, h)| {
                let d = earlier
                    .histogram(k)
                    .map_or_else(|| h.clone(), |e| h.delta(e));
                (d.count > 0).then_some((k, d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// JSON form: `{"counters": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(&k, &v)| (k.to_string(), Json::from(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(&k, h)| (k.to_string(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Snapshot the metrics registry.
#[must_use]
pub fn metrics() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r.counters.clone(),
        histograms: r.histograms.clone(),
    }
}

/// Clear every counter and histogram (tests and per-run harnesses).
pub fn reset_metrics() {
    let mut r = registry();
    r.counters.clear();
    r.histograms.clear();
}

// ---------------------------------------------------------------------------
// Fusion decision log
// ---------------------------------------------------------------------------

/// One recorded scheduling decision; see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The decision scope active when recorded (the fusion strategy
    /// name, e.g. `"wisefuse"`; empty at top level).
    pub scope: String,
    /// Sequence number *within* the scope — deterministic because one
    /// strategy's scheduling pass is single-threaded.
    pub seq: u64,
    /// Decision class: `"alg1.seed"`, `"alg1.fuse"`, `"alg2.cut"`,
    /// `"cut.dim"`, `"cut.failure"`, `"cut.budget"`, `"hyperplane"`.
    pub kind: &'static str,
    /// Human-readable rationale.
    pub summary: String,
    /// Structured key/value payload (SCC ids, statement names, rows).
    pub data: Vec<(&'static str, String)>,
}

impl Decision {
    /// JSON form (for `wfc explain --json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj([
            ("scope", Json::str(self.scope.as_str())),
            ("seq", Json::from(self.seq)),
            ("kind", Json::str(self.kind)),
            ("summary", Json::str(self.summary.as_str())),
        ]);
        for (k, v) in &self.data {
            j.push(*k, Json::str(v.as_str()));
        }
        j
    }
}

#[derive(Default)]
struct DecisionLog {
    entries: Vec<Decision>,
    next_seq: BTreeMap<String, u64>,
}

static DECISION_LOG: OnceLock<Mutex<DecisionLog>> = OnceLock::new();

fn decision_log() -> MutexGuard<'static, DecisionLog> {
    DECISION_LOG
        .get_or_init(|| Mutex::new(DecisionLog::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard for the thread-local decision scope; restores the previous
/// scope on drop.
pub struct ScopeGuard {
    prev: String,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            SCOPE.with(|s| *s.borrow_mut() = std::mem::take(&mut self.prev));
        }
    }
}

/// Set the calling thread's decision scope (the scheduling engine tags
/// each pass with its strategy name). Inert when decisions are off.
#[must_use]
pub fn scope(name: &str) -> ScopeGuard {
    if !decisions_on() {
        return ScopeGuard {
            prev: String::new(),
            active: false,
            _not_send: std::marker::PhantomData,
        };
    }
    let prev = SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), name.to_string()));
    ScopeGuard {
        prev,
        active: true,
        _not_send: std::marker::PhantomData,
    }
}

/// Record a decision under the current scope. Callers building costly
/// summaries should guard on [`decisions_on`] first.
pub fn decision(kind: &'static str, summary: String, data: Vec<(&'static str, String)>) {
    if !decisions_on() {
        return;
    }
    let scope = SCOPE.with(|s| s.borrow().clone());
    let mut log = decision_log();
    if log.entries.len() >= buffer_limit() {
        drop(log);
        drop_one();
        return;
    }
    let seq = log.next_seq.entry(scope.clone()).or_insert(0);
    let entry = Decision {
        scope,
        seq: *seq,
        kind,
        summary,
        data,
    };
    *seq += 1;
    log.entries.push(entry);
}

/// Remove and return every recorded decision, sorted by
/// `(scope, seq)` — a deterministic total order however many workers
/// were scheduling concurrently (each scope's pass is single-threaded,
/// so per-scope sequence numbers are reproducible).
#[must_use]
pub fn drain_decisions() -> Vec<Decision> {
    let mut log = decision_log();
    log.next_seq.clear();
    let mut entries = std::mem::take(&mut log.entries);
    entries.sort_by(|a, b| a.scope.cmp(&b.scope).then(a.seq.cmp(&b.seq)));
    entries
}

/// Open a span with optional inline annotations:
/// `span!("ilp.solve")` or `span!("schedule", "model" => name)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::obs::span($name)
    };
    ($name:expr, $($k:literal => $v:expr),+ $(,)?) => {{
        let mut s = $crate::obs::span($name);
        $(s.arg($k, $v);)+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The switchboard is process-global; unit tests here only exercise
    // pure helpers. Stateful behaviour is covered by the serialized
    // integration suite in `tests/obs.rs`.

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1_048_576), 20);
        assert_eq!(Histogram::bucket_index(1_048_577), 21); // overflow
        assert_eq!(Histogram::bucket_index(u64::MAX), 21);
    }

    #[test]
    fn empty_histogram_emits_null_quantiles() {
        let h = Histogram::default();
        let doc = h.to_json();
        for key in ["p50", "p95", "p99"] {
            assert_eq!(doc.get(key), Some(&Json::Null), "{key} of empty histogram");
        }
        assert_eq!(doc.get("count").unwrap().as_i128(), Some(0));
        assert_eq!(doc.get("buckets").unwrap().as_arr().unwrap().len(), 0);
        // Never NaN/garbage through the renderer either.
        assert!(doc.render().contains("\"p50\": null") || doc.render().contains("\"p50\":null"));
    }

    #[test]
    fn single_bucket_histogram_emits_bucket_bound() {
        let mut h = Histogram::default();
        h.record(5); // bucket (4, 8]
        h.record(7);
        h.record(8);
        let doc = h.to_json();
        for key in ["p50", "p95", "p99"] {
            assert_eq!(doc.get(key).unwrap().as_f64(), Some(8.0), "{key}");
        }
        // Overflow-only histogram reports the overflow interpolation cap.
        let mut o = Histogram::default();
        o.record(5_000_000);
        let cap = f64::from(2 * 1_048_576u32);
        assert_eq!(o.to_json().get("p99").unwrap().as_f64(), Some(cap));
    }

    #[test]
    fn multi_bucket_quantiles_still_interpolate() {
        let mut h = Histogram::default();
        for v in [1, 1, 1, 1000] {
            h.record(v);
        }
        let p50 = h.to_json().get("p50").unwrap().as_f64().unwrap();
        assert!(p50.is_finite() && p50 <= 1.0, "p50 {p50} in first bucket");
        let p99 = h.to_json().get("p99").unwrap().as_f64().unwrap();
        assert!(p99 > 512.0, "p99 {p99} lands in the 1000s bucket");
    }

    #[test]
    fn histogram_json_round_trip_and_merge() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [0, 1, 3, 9, 4096, 70_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [2, 9, 2_000_000, u64::MAX / 2] {
            b.record(v);
            whole.record(v);
        }
        let ra = Histogram::from_json(&a.to_json()).expect("round-trip a");
        assert_eq!(ra, a);
        let mut merged = ra;
        merged.merge(&Histogram::from_json(&b.to_json()).expect("round-trip b"));
        // Merging raw bucket counts is exactly observing the union.
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json().render(), whole.to_json().render());
    }

    #[test]
    fn histogram_from_json_rejects_malformed() {
        assert!(Histogram::from_json(&Json::Null).is_none());
        assert!(Histogram::from_json(&Json::obj([("count", Json::from(1u64))])).is_none());
        // Bucket counts that don't sum to `count`.
        let mut h = Histogram::default();
        h.record(4);
        let mut doc = h.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "count" {
                    *v = Json::from(7u64);
                }
            }
        }
        assert!(Histogram::from_json(&doc).is_none());
        // Unknown bucket bound.
        let bad = Json::obj([
            ("count", Json::from(1u64)),
            ("sum", Json::from(3u64)),
            (
                "buckets",
                Json::Arr(vec![Json::obj([
                    ("le", Json::from(3u64)),
                    ("n", Json::from(1u64)),
                ])]),
            ),
        ]);
        assert!(Histogram::from_json(&bad).is_none());
    }

    #[test]
    fn histogram_delta_subtracts() {
        let mut a = Histogram::default();
        a.record(3);
        a.record(100);
        let earlier = a.clone();
        a.record(3);
        let d = a.delta(&earlier);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 3);
        assert_eq!(d.counts[Histogram::bucket_index(3)], 1);
        assert_eq!(d.counts[Histogram::bucket_index(100)], 0);
    }

    #[test]
    fn quantiles_interpolate_from_buckets() {
        let mut h = Histogram::default();
        // 100 observations of exactly 8: the whole mass is in the
        // (4, 8] bucket, so every quantile lands inside it.
        for _ in 0..100 {
            h.record(8);
        }
        for q in [0.5, 0.95, 0.99] {
            let v = h.quantile(q);
            assert!(v > 4.0 && v <= 8.0, "q{q} = {v}");
        }
        // Monotone in q.
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
    }

    #[test]
    fn quantiles_split_across_buckets() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert!(h.quantile(0.5) <= 1.0);
        let p99 = h.quantile(0.99);
        assert!(p99 > 512.0 && p99 <= 1024.0, "p99 = {p99}");
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_overflow_bucket_is_finite() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        let p50 = h.quantile(0.5);
        assert!(p50.is_finite() && p50 > 1_048_576.0);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let mut h = Histogram::default();
        h.record(8);
        let j = h.to_json();
        assert!(j.get("p50").unwrap().as_f64().unwrap() > 0.0);
        assert!(j.get("p95").is_some() && j.get("p99").is_some());
        assert!(Json::parse(&j.render()).is_ok());
    }

    #[test]
    fn trace_json_shape() {
        let ev = TraceEvent {
            name: "ilp.solve",
            ts_us: 10,
            dur_us: 5,
            tid: 2,
            id: 7,
            parent: 3,
            args: vec![("model", "wisefuse".to_string())],
        };
        let doc = trace_json(&[ev]);
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("ilp.solve"));
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        let args = evs[0].get("args").unwrap();
        assert_eq!(args.get("parent").unwrap().as_i128(), Some(3));
        assert_eq!(args.get("model").unwrap().as_str(), Some("wisefuse"));
        // Round-trips through the strict parser.
        assert!(Json::parse(&doc.render()).is_ok());
    }
}
