//! Minimal property-based testing, mirroring the slice of `proptest` the
//! workspace's suites use.
//!
//! A [`Strategy`] both *generates* values from a [`SplitMix64`] stream and
//! proposes *shrink* candidates for a failing value. The [`props!`] macro
//! (see crate root) expands each `fn name(x in strat, ..) { body }` item
//! into a `#[test]` that drives [`run`]: generate `cases` inputs, and on
//! the first failure greedily shrink — try each candidate, restart from any
//! candidate that still fails — for at most `max_shrink_iters` executions
//! before reporting the minimal failing input.
//!
//! Design notes:
//! * Generation is seeded by `fnv1a(test name) ^ config.seed`, so each test
//!   explores its own reproducible stream; there is no persistence file.
//! * Failures are detected both from `prop_assert*` (which return
//!   [`TestCaseError::Fail`]) and from panics in the body (caught with
//!   `catch_unwind`), so `unwrap`/`assert!` inside helpers still shrink.
//! * `prop_map` intentionally does not shrink through the mapping (there is
//!   no value tree); shrinking happens on vec/tuple/scalar layers below it.

use crate::rng::{fnv1a, SplitMix64};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a single test-case execution ended.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed (assertion message or panic payload).
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

impl TestCaseError {
    /// Construct a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type the generated test bodies return.
pub type TestResult = Result<(), TestCaseError>;

/// Runner configuration. `ProptestConfig` is an alias so migrated suites
/// keep their `#![proptest_config(ProptestConfig::with_cases(n))]` lines.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of (non-rejected) cases to run.
    pub cases: u32,
    /// Upper bound on executions spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Base seed, XORed with the hashed test name.
    pub seed: u64,
}

/// Alias kept for source compatibility with `proptest`.
pub type ProptestConfig = Config;

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            max_shrink_iters: 400,
            seed: 0x5EED_2024,
        }
    }
}

impl Config {
    /// A config running `cases` cases (the `proptest` constructor).
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A value generator + shrinker.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value from the stream.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Propose strictly-simpler candidates for a failing value. The runner
    /// re-tests candidates in order and greedily descends; an empty vector
    /// stops shrinking along this branch.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f` (no shrinking through the map).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Integer shrink candidates: toward `low`, halving the distance.
fn shrink_int_toward(low: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v != low {
        out.push(low);
        let mid = low + (v - low) / 2;
        if mid != low && mid != v {
            out.push(mid);
        }
        let step = if v > low { v - 1 } else { v + 1 };
        if step != low && step != v && !out.contains(&step) {
            out.push(step);
        }
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                rng.gen_i128(self.start as i128, self.end as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Shrink toward 0 when the range allows, else toward start.
                let low = if (self.start as i128) <= 0 && 0 < (self.end as i128) {
                    0
                } else {
                    self.start as i128
                };
                shrink_int_toward(low, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {self:?}");
                rng.gen_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                let low = if s <= 0 && 0 <= e { 0 } else { s };
                shrink_int_toward(low, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($S:ident / $idx:tt),+),)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
}

/// Length specification for [`vec`]: fixed or `[min, max)`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// `Vec` strategy: length drawn from `size`, elements from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate `Vec`s (the `proptest::collection::vec` equivalent).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
        let len = rng.gen_usize(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop the second half, drop single
        // elements (respecting the minimum length)…
        if value.len() > self.size.min {
            let half = (value.len() / 2).max(self.size.min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in (0..value.len()).rev() {
                if value.len() > self.size.min {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // …then element-wise shrinks.
        for (i, e) in value.iter().enumerate() {
            for cand in self.element.shrink(e) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Execute the body once, converting panics into failures.
fn run_case<V, F>(f: &F, value: V) -> TestResult
where
    F: Fn(V) -> TestResult,
{
    match catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(TestCaseError::Fail(format!("panic: {msg}")))
        }
    }
}

/// Drive one property: generate, detect failure, shrink, report.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) with the minimal failing input
/// and its error when the property does not hold, or when too many cases
/// were rejected by `prop_assume!`.
pub fn run<S, F>(config: &Config, name: &str, strat: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let mut rng = SplitMix64::new(config.seed ^ fnv1a(name.as_bytes()));
    let mut executed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(10).max(100);
    while executed < config.cases {
        let value = strat.generate(&mut rng);
        match run_case(&f, value.clone()) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: gave up after {rejected} prop_assume! rejections \
                     ({executed} cases passed)"
                );
            }
            Err(TestCaseError::Fail(first_msg)) => {
                let (min_value, min_msg, iters) =
                    shrink_failure(config, strat, &f, value, first_msg);
                panic!(
                    "{name}: property failed after {executed} passing case(s) \
                     ({iters} shrink iteration(s)).\n\
                     minimal failing input: {min_value:#?}\n{min_msg}"
                );
            }
        }
    }
}

/// Greedy bounded shrink: depth-first descent through candidate lists.
fn shrink_failure<S, F>(
    config: &Config,
    strat: &S,
    f: &F,
    mut value: S::Value,
    mut msg: String,
    // (minimal value, its failure message, executions spent)
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let mut iters = 0u32;
    'outer: loop {
        let candidates = strat.shrink(&value);
        for cand in candidates {
            if iters >= config.max_shrink_iters {
                break 'outer;
            }
            iters += 1;
            if let Err(TestCaseError::Fail(m)) = run_case(f, cand.clone()) {
                value = cand;
                msg = m;
                continue 'outer; // restart from the simpler failing value
            }
        }
        break; // no candidate still fails: `value` is locally minimal
    }
    (value, msg, iters)
}

/// The `props!` runner macro — see crate docs. Matches the `proptest!`
/// item grammar used by the suites: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions with
/// `name in strategy` parameters.
#[macro_export]
macro_rules! props {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__props_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__props_impl! { ($crate::prop::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`props!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::prop::Config = $cfg;
                let __strat = ( $($strat,)+ );
                $crate::prop::run(&__cfg, stringify!($name), &__strat,
                    |( $($arg,)+ )| -> $crate::prop::TestResult {
                        $body
                        Ok(())
                    });
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ..)`: fail the current
/// case (with shrinking) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the current case when `a != b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::prop::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __a, __b)));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::prop::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), __a, __b)));
        }
    }};
}

/// `prop_assert_ne!(a, b)`: fail the current case when `a == b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently discard the current case when `cond` is
/// false (the runner draws a replacement; excessive rejection aborts).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = vec(0i128..100, 0..10);
        let mut r1 = SplitMix64::new(Config::default().seed ^ fnv1a(b"n"));
        let mut r2 = SplitMix64::new(Config::default().seed ^ fnv1a(b"n"));
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let v = (-1000i128..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&v));
            let u = (1usize..=2).generate(&mut rng);
            assert!((1..=2).contains(&u));
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // Property "all elements < 10" fails; the minimal counterexample is
        // a single-element vector containing exactly 10.
        let strat = vec(0i128..100, 0..20);
        let f = |v: Vec<i128>| -> TestResult {
            if v.iter().any(|&x| x >= 10) {
                Err(TestCaseError::fail("has an element >= 10"))
            } else {
                Ok(())
            }
        };
        let cfg = Config::default();
        let mut rng = SplitMix64::new(1);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if f(v.clone()).is_err() {
                break v;
            }
        };
        let (min, _, _) = shrink_failure(&cfg, &strat, &f, failing, String::new());
        assert_eq!(min, vec![10]);
    }

    #[test]
    fn tuple_shrink_covers_each_component() {
        let strat = (0i128..50, 0i128..50);
        let cands = strat.shrink(&(7, 9));
        assert!(cands.iter().any(|&(a, b)| a < 7 && b == 9));
        assert!(cands.iter().any(|&(a, b)| a == 7 && b < 9));
    }

    #[test]
    fn prop_map_applies_function() {
        let strat = (1i128..5).prop_map(|v| v * 10);
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn runner_reports_failures() {
        run(
            &Config::with_cases(50),
            "always_big_fails",
            &(50i128..100),
            |v| {
                if v >= 50 {
                    Err(TestCaseError::fail("v >= 50"))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn runner_passes_valid_property() {
        run(&Config::with_cases(50), "in_range", &(0i128..10), |v| {
            if (0..10).contains(&v) {
                Ok(())
            } else {
                Err(TestCaseError::fail("out of range"))
            }
        });
    }

    #[test]
    fn runner_catches_panics_and_shrinks() {
        let caught = catch_unwind(|| {
            run(&Config::with_cases(80), "panic_body", &(0i128..1000), |v| {
                assert!(v < 500, "boom at {v}");
                Ok(())
            });
        });
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy shrinking must reach the boundary value.
        assert!(msg.contains("500"), "unexpected report: {msg}");
    }
}
