//! The workspace-wide typed error hierarchy.
//!
//! Every failure a *user input* can provoke — a malformed `.wfs` file, an
//! ILP whose branch-and-bound budget runs out, a torn cache-spill file, a
//! panicking worker job — is represented as a [`WfError`] variant instead
//! of a `panic!`/`expect` somewhere down the stack. The variants partition
//! the failure space the way a production service wants to alert on it:
//!
//! | variant       | meaning                                   | exit code |
//! |---------------|-------------------------------------------|-----------|
//! | [`Invalid`]   | bad CLI arguments / unknown benchmark     | 2         |
//! | [`Parse`]     | SCoP text failed to parse                 | 3         |
//! | [`Budget`]    | a solver resource budget was exhausted    | 4         |
//! | [`Io`]        | filesystem failure (spill cache, `.wfs`)  | 5         |
//! | [`Schedule`]  | the scheduling engine failed              | 6         |
//! | [`JobPanic`]  | a worker job panicked (contained)         | 7         |
//! | [`Unbounded`] | an ILP objective was unbounded            | 8         |
//! | [`IllegalSchedule`] | the legality oracle rejected a schedule | 9       |
//!
//! The exit codes are part of the `wfc` CLI contract (CI asserts they stay
//! distinct), and [`WfError::exit_code`] is the single source of truth.
//!
//! `wf-harness` sits at the bottom of the dependency graph, so the type is
//! defined here and the producing crates implement `From` conversions for
//! their own error types (`wf_polyhedra::IlpError`,
//! `wf_scop::text::ParseError`, `wf_schedule::SchedError`); the
//! `wf_wisefuse` prelude re-exports `WfError` as the one error type the
//! pipeline surfaces.
//!
//! [`Invalid`]: WfError::Invalid
//! [`Parse`]: WfError::Parse
//! [`Budget`]: WfError::Budget
//! [`Io`]: WfError::Io
//! [`Schedule`]: WfError::Schedule
//! [`JobPanic`]: WfError::JobPanic
//! [`Unbounded`]: WfError::Unbounded
//! [`IllegalSchedule`]: WfError::IllegalSchedule

use crate::pool::JobPanicked;

/// A typed pipeline failure; see the module docs for the taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WfError {
    /// Malformed request: unknown benchmark, bad flag, missing argument.
    Invalid {
        /// What was wrong with the request.
        message: String,
    },
    /// SCoP text failed to parse.
    Parse {
        /// 1-based line the failure was detected on.
        line: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// A resource budget (branch-and-bound nodes, simplex pivots, wall
    /// clock) was exhausted before the solver reached a verdict.
    Budget {
        /// Which stage ran out (e.g. `ilp.nodes`, `ilp.wall_ms`).
        site: String,
        /// The limit that was hit, rendered for humans.
        detail: String,
    },
    /// Filesystem failure (cache spill, `.wfs` input, report output).
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error text.
        message: String,
    },
    /// The scheduling engine failed (no progress, or an internal legality
    /// check rejected its own schedule).
    Schedule {
        /// The engine's diagnostic, verbatim.
        message: String,
    },
    /// A worker job panicked; the panic was contained by the pool and the
    /// payload captured here.
    JobPanic {
        /// The panic payload (if it was a string).
        what: String,
    },
    /// An ILP objective was unbounded in the requested direction — a
    /// modelling problem in the caller's constraint system.
    Unbounded {
        /// Which solve detected it.
        site: String,
    },
    /// The independent legality oracle rejected an emitted schedule: some
    /// dependence edge is not weakly preserved at every level, or is never
    /// strictly satisfied. Degradable — the pipeline falls back to the
    /// original-program-order schedule unless the caller opted into
    /// strict mode.
    IllegalSchedule {
        /// The model whose schedule was rejected.
        model: String,
        /// The oracle's first violation, rendered for humans.
        detail: String,
    },
}

impl WfError {
    /// Shorthand for [`WfError::Invalid`].
    #[must_use]
    pub fn invalid(message: impl Into<String>) -> WfError {
        WfError::Invalid {
            message: message.into(),
        }
    }

    /// An [`WfError::Io`] from a path and a `std::io::Error`.
    #[must_use]
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> WfError {
        WfError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// The process exit code this failure maps to (the `wfc` contract:
    /// every class is distinct and nonzero; CI asserts parse/budget/I/O
    /// stay apart).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            WfError::Invalid { .. } => 2,
            WfError::Parse { .. } => 3,
            WfError::Budget { .. } => 4,
            WfError::Io { .. } => 5,
            WfError::Schedule { .. } => 6,
            WfError::JobPanic { .. } => 7,
            WfError::Unbounded { .. } => 8,
            WfError::IllegalSchedule { .. } => 9,
        }
    }

    /// Can the optimizer degrade to the documented fallback schedule
    /// (original program order, no fusion) instead of surfacing this?
    /// True for solver-side failures; false for input errors the caller
    /// must fix (parse, I/O, invalid requests).
    #[must_use]
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            WfError::Budget { .. }
                | WfError::Schedule { .. }
                | WfError::JobPanic { .. }
                | WfError::Unbounded { .. }
                | WfError::IllegalSchedule { .. }
        )
    }
}

impl std::fmt::Display for WfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfError::Invalid { message } => write!(f, "{message}"),
            WfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            WfError::Budget { site, detail } => {
                write!(f, "budget exceeded at {site}: {detail}")
            }
            WfError::Io { path, message } => write!(f, "{path}: {message}"),
            WfError::Schedule { message } => write!(f, "{message}"),
            WfError::JobPanic { what } => write!(f, "worker job panicked: {what}"),
            WfError::Unbounded { site } => write!(f, "unbounded objective in {site}"),
            WfError::IllegalSchedule { model, detail } => {
                write!(f, "legality oracle rejected the {model} schedule: {detail}")
            }
        }
    }
}

impl std::error::Error for WfError {}

impl From<JobPanicked> for WfError {
    fn from(p: JobPanicked) -> WfError {
        WfError::JobPanic { what: p.message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let all = [
            WfError::invalid("x"),
            WfError::Parse {
                line: 1,
                message: "x".into(),
            },
            WfError::Budget {
                site: "ilp.nodes".into(),
                detail: "limit 1".into(),
            },
            WfError::Io {
                path: "/p".into(),
                message: "x".into(),
            },
            WfError::Schedule {
                message: "x".into(),
            },
            WfError::JobPanic { what: "x".into() },
            WfError::Unbounded {
                site: "lexmin".into(),
            },
            WfError::IllegalSchedule {
                model: "wisefuse".into(),
                detail: "x".into(),
            },
        ];
        let codes: Vec<u8> = all.iter().map(WfError::exit_code).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes collide: {codes:?}");
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn degradable_partition() {
        assert!(WfError::Schedule {
            message: "m".into()
        }
        .is_degradable());
        assert!(WfError::JobPanic { what: "w".into() }.is_degradable());
        assert!(WfError::IllegalSchedule {
            model: "maxfuse".into(),
            detail: "d".into()
        }
        .is_degradable());
        assert!(!WfError::invalid("m").is_degradable());
        assert!(!WfError::Parse {
            line: 3,
            message: "m".into()
        }
        .is_degradable());
    }

    #[test]
    fn display_renders_context() {
        let e = WfError::Parse {
            line: 12,
            message: "bad domain".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 12: bad domain");
        let b = WfError::Budget {
            site: "ilp.nodes".into(),
            detail: "limit 400".into(),
        };
        assert_eq!(b.to_string(), "budget exceeded at ilp.nodes: limit 400");
    }
}
