//! **attr** — solver-cost attribution: *where did the cells go?*
//!
//! The metrics registry ([`obs`]) can say that a run spent 10⁹ simplex
//! cell updates; this module says *which benchmark, fusion model,
//! statement pair / component, and schedule dimension* spent them. Code
//! that is about to do solver work labels the calling thread with RAII
//! guards ([`label`] / [`label_fmt`]), the solver's accounting sinks
//! ([`record_solve`], [`record_memo_hit`]) tally into a process-wide
//! table under whatever labels are live, and the CLI's `wfc profile` /
//! `wfc explain --costs` render the table top-K by cells.
//!
//! Two invariants the tests enforce:
//!
//! * **Reconciliation** — [`record_solve`] is called from exactly the
//!   same site that feeds the `simplex.cells` counter, with the same
//!   value, so [`AttrSnapshot::total_cells`] always equals the counter's
//!   delta over the same interval. The table is a *partition* of the
//!   counter, never a second estimate.
//! * **Zero cost when off** — every probe gates on the same relaxed
//!   atomic load as the metrics registry ([`obs::metrics_on`]); labels
//!   are not even formatted when metrics are disabled ([`label_fmt`]
//!   takes a closure for exactly this reason).

use crate::json::Json;
use crate::obs;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fixed label taxonomy: one slot per question the cost table
/// answers. Slots compose — an ILP solve inside the scheduler typically
/// carries all four.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// Which benchmark / SCoP (e.g. `"advect"`).
    Bench = 0,
    /// Which fusion model / strategy (e.g. `"wisefuse"`).
    Model = 1,
    /// Which program unit: a dependence statement pair (`"pair(0,2)"`),
    /// a verified edge (`"edge(S0->S1)"`), or a fused component
    /// (`"comp[0,1,3]"`).
    Unit = 2,
    /// Which schedule dimension the solve was for (`"0"`, `"1"`, …).
    Dim = 3,
}

/// Number of label slots (the arity of [`AttrKey`]).
pub const N_SLOTS: usize = 4;

/// A full label tuple `(bench, model, unit, dim)`; unset slots are empty
/// strings, so unlabeled work aggregates under a visible "(unlabeled)"
/// row rather than disappearing.
pub type AttrKey = [String; N_SLOTS];

thread_local! {
    /// The labels live on this thread (pool workers label themselves
    /// inside each job, so no cross-thread propagation is needed).
    static LABELS: RefCell<AttrKey> = RefCell::new(Default::default());
}

/// RAII guard restoring the previous value of one label slot on drop.
/// Deliberately `!Send`, like [`obs::SpanGuard`].
pub struct LabelGuard {
    slot: usize,
    prev: String,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for LabelGuard {
    fn drop(&mut self) {
        if self.active {
            LABELS.with(|l| l.borrow_mut()[self.slot] = std::mem::take(&mut self.prev));
        }
    }
}

const INERT: LabelGuard = LabelGuard {
    slot: 0,
    prev: String::new(),
    active: false,
    _not_send: std::marker::PhantomData,
};

/// Set one label slot on the calling thread; restored when the guard
/// drops. One relaxed atomic load and an inert guard when metrics are
/// off.
#[must_use]
pub fn label(slot: Slot, value: impl Into<String>) -> LabelGuard {
    if !obs::metrics_on() {
        return INERT;
    }
    let slot = slot as usize;
    let prev = LABELS.with(|l| std::mem::replace(&mut l.borrow_mut()[slot], value.into()));
    LabelGuard {
        slot,
        prev,
        active: true,
        _not_send: std::marker::PhantomData,
    }
}

/// [`label`] with a lazily-built value: the closure only runs when
/// metrics are on, so call sites can format `"pair({src},{dst})"`
/// unconditionally without paying for it in the disabled fast path.
#[must_use]
pub fn label_fmt(slot: Slot, value: impl FnOnce() -> String) -> LabelGuard {
    if !obs::metrics_on() {
        return INERT;
    }
    label(slot, value())
}

/// The calling thread's current label tuple (for annotating spans).
#[must_use]
pub fn current_labels() -> AttrKey {
    LABELS.with(|l| l.borrow().clone())
}

/// Annotate a span with the non-empty labels live on this thread
/// (`"bench"`, `"model"`, `"unit"`, `"dim"` args).
pub fn annotate_span(span: &mut obs::SpanGuard) {
    const NAMES: [&str; N_SLOTS] = ["bench", "model", "unit", "dim"];
    LABELS.with(|l| {
        for (name, v) in NAMES.iter().zip(l.borrow().iter()) {
            if !v.is_empty() {
                span.arg(name, v.clone());
            }
        }
    });
}

/// Accumulated solver work under one label tuple.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Tally {
    /// Tableau cell updates (the `simplex.cells` unit of work).
    pub cells: u64,
    /// Simplex pivots.
    pub pivots: u64,
    /// Finished ILP solves (cold, i.e. memo misses).
    pub solves: u64,
    /// Solver-memo hits (work *avoided* under these labels).
    pub memo_hits: u64,
}

impl Tally {
    fn saturating_sub(self, rhs: Tally) -> Tally {
        Tally {
            cells: self.cells.saturating_sub(rhs.cells),
            pivots: self.pivots.saturating_sub(rhs.pivots),
            solves: self.solves.saturating_sub(rhs.solves),
            memo_hits: self.memo_hits.saturating_sub(rhs.memo_hits),
        }
    }

    fn is_zero(self) -> bool {
        self == Tally::default()
    }
}

static TABLE: OnceLock<Mutex<BTreeMap<AttrKey, Tally>>> = OnceLock::new();

fn table() -> MutexGuard<'static, BTreeMap<AttrKey, Tally>> {
    TABLE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tally one finished (cold) ILP solve under the calling thread's labels.
/// Called from the same accounting sink that feeds the `simplex.cells` /
/// `simplex.pivots` counters, with the same values.
pub fn record_solve(cells: u64, pivots: u64) {
    if !obs::metrics_on() {
        return;
    }
    let key = current_labels();
    let mut t = table();
    let e = t.entry(key).or_default();
    e.cells += cells;
    e.pivots += pivots;
    e.solves += 1;
}

/// Tally one solver-memo hit under the calling thread's labels.
pub fn record_memo_hit() {
    if !obs::metrics_on() {
        return;
    }
    let key = current_labels();
    table().entry(key).or_default().memo_hits += 1;
}

/// A point-in-time copy of the attribution table, sorted by key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrSnapshot {
    /// `(labels, tally)` rows in key order.
    pub entries: Vec<(AttrKey, Tally)>,
}

impl AttrSnapshot {
    /// Sum of cells over every row — by construction equal to the
    /// `simplex.cells` counter over the same interval.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.entries.iter().map(|(_, t)| t.cells).sum()
    }

    /// This snapshot minus an earlier one; rows that did not move are
    /// dropped.
    #[must_use]
    pub fn delta(&self, earlier: &AttrSnapshot) -> AttrSnapshot {
        let prev: BTreeMap<&AttrKey, Tally> =
            earlier.entries.iter().map(|(k, t)| (k, *t)).collect();
        let entries = self
            .entries
            .iter()
            .filter_map(|(k, t)| {
                let d = t.saturating_sub(prev.get(k).copied().unwrap_or_default());
                (!d.is_zero()).then(|| (k.clone(), d))
            })
            .collect();
        AttrSnapshot { entries }
    }

    /// Rows restricted to one benchmark label.
    #[must_use]
    pub fn for_bench(&self, bench: &str) -> AttrSnapshot {
        AttrSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| k[Slot::Bench as usize] == bench)
                .cloned()
                .collect(),
        }
    }

    /// The top `k` rows by cells (ties broken by key order, so the
    /// ranking is deterministic).
    #[must_use]
    pub fn top_by_cells(&self, k: usize) -> Vec<&(AttrKey, Tally)> {
        let mut rows: Vec<&(AttrKey, Tally)> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.1.cells.cmp(&a.1.cells).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// JSON form: an array of
    /// `{"bench","model","unit","dim","cells","pivots","solves","memo_hits"}`
    /// rows in key order (unset labels render as `""`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(self.entries.iter().map(|(k, t)| row_json(k, *t)).collect())
    }

    /// Parse the [`to_json`](AttrSnapshot::to_json) form back (the
    /// `wfc profile --trace FILE` path). Unknown fields are ignored;
    /// malformed rows are an error.
    ///
    /// # Errors
    /// A human-readable message when a row is not an object or a tally
    /// field is not a non-negative integer.
    pub fn from_json(j: &Json) -> Result<AttrSnapshot, String> {
        let rows = j.as_arr().ok_or("attribution: expected an array")?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let s = |key: &str| {
                row.get(key)
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            let n = |key: &str| -> Result<u64, String> {
                match row.get(key) {
                    None => Ok(0),
                    Some(v) => v
                        .as_i128()
                        .and_then(|x| u64::try_from(x).ok())
                        .ok_or_else(|| format!("attribution: bad '{key}' field")),
                }
            };
            entries.push((
                [s("bench"), s("model"), s("unit"), s("dim")],
                Tally {
                    cells: n("cells")?,
                    pivots: n("pivots")?,
                    solves: n("solves")?,
                    memo_hits: n("memo_hits")?,
                },
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(AttrSnapshot { entries })
    }
}

fn row_json(k: &AttrKey, t: Tally) -> Json {
    Json::obj([
        ("bench", Json::str(k[0].as_str())),
        ("model", Json::str(k[1].as_str())),
        ("unit", Json::str(k[2].as_str())),
        ("dim", Json::str(k[3].as_str())),
        ("cells", Json::from(t.cells)),
        ("pivots", Json::from(t.pivots)),
        ("solves", Json::from(t.solves)),
        ("memo_hits", Json::from(t.memo_hits)),
    ])
}

/// Render one label tuple for terminal tables: `advect/wisefuse/comp[0,1]/d1`
/// (empty slots elided; fully empty renders `"(unlabeled)"`).
#[must_use]
pub fn key_display(k: &AttrKey) -> String {
    let parts: Vec<&str> = k
        .iter()
        .map(String::as_str)
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        "(unlabeled)".to_string()
    } else {
        parts.join("/")
    }
}

/// Snapshot the attribution table.
#[must_use]
pub fn snapshot() -> AttrSnapshot {
    let entries = table().iter().map(|(k, t)| (k.clone(), *t)).collect();
    AttrSnapshot { entries }
}

/// Clear the attribution table (tests and per-run harnesses).
pub fn reset() {
    table().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Stateful behaviour (labels + the global table) is exercised by the
    // serialized integration suite in `tests/obs.rs`; here only the pure
    // snapshot algebra.

    fn key(parts: [&str; 4]) -> AttrKey {
        parts.map(str::to_string)
    }

    #[test]
    fn delta_drops_unmoved_rows() {
        let a = AttrSnapshot {
            entries: vec![
                (
                    key(["a", "m", "u", "0"]),
                    Tally {
                        cells: 5,
                        pivots: 1,
                        solves: 1,
                        memo_hits: 0,
                    },
                ),
                (
                    key(["b", "m", "u", "0"]),
                    Tally {
                        cells: 7,
                        pivots: 2,
                        solves: 1,
                        memo_hits: 0,
                    },
                ),
            ],
        };
        let mut b = a.clone();
        b.entries[1].1.cells = 10;
        let d = b.delta(&a);
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].0, key(["b", "m", "u", "0"]));
        assert_eq!(d.entries[0].1.cells, 3);
        assert_eq!(d.total_cells(), 3);
    }

    #[test]
    fn top_by_cells_is_deterministic() {
        let s = AttrSnapshot {
            entries: vec![
                (
                    key(["a", "", "", ""]),
                    Tally {
                        cells: 5,
                        ..Default::default()
                    },
                ),
                (
                    key(["b", "", "", ""]),
                    Tally {
                        cells: 9,
                        ..Default::default()
                    },
                ),
                (
                    key(["c", "", "", ""]),
                    Tally {
                        cells: 9,
                        ..Default::default()
                    },
                ),
            ],
        };
        let top = s.top_by_cells(2);
        assert_eq!(top[0].0, key(["b", "", "", ""])); // tie broken by key order
        assert_eq!(top[1].0, key(["c", "", "", ""]));
    }

    #[test]
    fn json_round_trip() {
        let s = AttrSnapshot {
            entries: vec![(
                key(["advect", "wisefuse", "comp[0,1]", "1"]),
                Tally {
                    cells: 42,
                    pivots: 7,
                    solves: 2,
                    memo_hits: 3,
                },
            )],
        };
        let back = AttrSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.total_cells(), 42);
    }

    #[test]
    fn key_display_elides_empty_slots() {
        assert_eq!(key_display(&key(["a", "", "u", "2"])), "a/u/2");
        assert_eq!(key_display(&key(["", "", "", ""])), "(unlabeled)");
    }
}
