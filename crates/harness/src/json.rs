//! A tiny JSON value type and serializer (no external dependencies).
//!
//! This is deliberately a writer, not a parser: the harness only *emits*
//! machine-readable results (`BENCH_*.json`, `wfc --json`). Numbers are
//! rendered with enough precision to round-trip `f64`, and non-finite
//! floats become `null` per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept separate from `Num` so counts render without `.0`).
    Int(i128),
    /// Floating point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor.
    #[must_use]
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Push a field onto an object.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // 17 significant digits round-trip any f64; trim via the
                    // shortest representation Rust's `{}` already produces.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i128> for Json {
    fn from(x: i128) -> Json {
        Json::Int(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i128)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_structures() {
        let v = Json::obj([
            ("name", Json::str("gemver")),
            ("times", Json::Arr(vec![Json::Num(0.5), Json::Int(2)])),
            ("ok", Json::Bool(false)),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"gemver","times":[0.5,2],"ok":false}"#
        );
    }

    #[test]
    fn pretty_renders_with_indentation() {
        let v = Json::obj([("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
