//! A tiny JSON value type, serializer, and parser (no external
//! dependencies).
//!
//! The harness emits machine-readable results (`BENCH_*.json`,
//! `wfc --json`) and, since the schedule cache grew a disk spill, also
//! reads its own output back ([`Json::parse`]). Numbers are rendered with
//! enough precision to round-trip `f64`, and non-finite floats become
//! `null` per RFC 8259. The parser accepts exactly the subset the writer
//! produces (strict RFC 8259, integers up to `i128`); it exists to
//! round-trip our own files, not to be a general-purpose JSON reader.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept separate from `Num` so counts render without `.0`).
    Int(i128),
    /// Floating point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor.
    #[must_use]
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Push a field onto an object.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Parse a JSON document (the inverse of [`render`](Json::render) /
    /// [`render_pretty`](Json::render_pretty)).
    ///
    /// # Errors
    /// Returns a message with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value of an `Int` (`None` otherwise — floats do not
    /// silently truncate).
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value of an `Int` or `Num`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String slice of a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Item slice of an `Arr`.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Value of a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // 17 significant digits round-trip any f64; trim via the
                    // shortest representation Rust's `{}` already produces.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("invalid integer '{text}' at byte {start}"))
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i128> for Json {
    fn from(x: i128) -> Json {
        Json::Int(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i128)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_structures() {
        let v = Json::obj([
            ("name", Json::str("gemver")),
            ("times", Json::Arr(vec![Json::Num(0.5), Json::Int(2)])),
            ("ok", Json::Bool(false)),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"gemver","times":[0.5,2],"ok":false}"#
        );
    }

    #[test]
    fn pretty_renders_with_indentation() {
        let v = Json::obj([("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("name", Json::str("gemver \"large\"\n")),
            (
                "times",
                Json::Arr(vec![Json::Num(0.5), Json::Int(-2), Json::Null]),
            ),
            ("ok", Json::Bool(false)),
            ("big", Json::Int(i128::from(i64::MAX) * 4)),
            ("nested", Json::obj([("empty_arr", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_scalars_and_escapes() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
        assert_eq!(
            Json::parse(r#""a\u0041\n\u00e9""#).unwrap(),
            Json::str("aA\né")
        );
        // Surrogate pair (🂡 U+1F0A1).
        assert_eq!(
            Json::parse(r#""\ud83c\udca1""#).unwrap(),
            Json::str("\u{1f0a1}")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] x",
            "1.2.3",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::Int(3)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").and_then(Json::as_i128), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_i128(), None);
        assert_eq!(
            Json::Arr(vec![Json::Null]).as_arr().map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
    }
}
