//! **ledger** — the persistent cross-run provenance ledger.
//!
//! When `WF_LEDGER=<path>` is set, every `wfc run/compare/bench-all/fuzz`
//! invocation appends exactly one `ledger/v1` JSONL record: what was run
//! (command, target, model, config + SCoP digests), under which knobs
//! (threads, legality checking, cache dir), what the solver did (counter
//! deltas: cells, pivots, solves, memo traffic), how it ended (exit
//! class, degradations, legality rejections), and — for `bench-all` —
//! the per-benchmark cost hotspot, so a later `--check-regressions` can
//! *explain* a flagged regression against history instead of merely
//! flagging it.
//!
//! Appends must survive *concurrent writers*: sharded `bench-all` runs
//! several `wfc` processes that all point at the same `WF_LEDGER`. Each
//! record is rendered to a single line and written with one `write` call
//! on an `O_APPEND` handle while holding an advisory exclusive lock
//! ([`std::fs::File::lock`]), so lines from different processes can
//! neither interleave nor overwrite each other (the old
//! read-append-rename idiom lost whole records when two writers raced
//! between the read and the rename). Records longer than
//! [`APPEND_ATOMIC_BYTES`] — the `PIPE_BUF` bound the lock-free
//! `O_APPEND` guarantee would cover — are still written (the lock makes
//! them safe) but are counted on the `ledger.oversize` metric rather
//! than silently trusted. A bounded 3-attempt retry (1 ms / 4 ms
//! backoff) absorbs transient I/O errors. Malformed lines (e.g. from a
//! foreign writer, or a line torn by a crash mid-write) are skipped and
//! counted on read, never fatal.

use crate::json::Json;
use crate::WfError;
use std::io;
use std::path::{Path, PathBuf};

/// The record schema tag.
pub const SCHEMA: &str = "ledger/v1";

/// Read `WF_LEDGER` from the environment: `None` when unset, the path
/// when set, and — like every other `WF_*` knob — a malformed (empty or
/// whitespace-only) value is an invalid request (exit 2), not a silent
/// no-op.
///
/// # Errors
/// [`WfError::Invalid`] on an empty value.
pub fn path_from_env() -> Result<Option<PathBuf>, WfError> {
    match std::env::var("WF_LEDGER") {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() => Err(WfError::invalid(
            "WF_LEDGER must name a writable file path (got an empty value)",
        )),
        Ok(v) => Ok(Some(PathBuf::from(v))),
    }
}

/// The size up to which a single `O_APPEND` write would be atomic even
/// without the advisory lock (Linux `PIPE_BUF`). Records above this are
/// still written whole — the lock serializes writers — but are counted
/// on the `ledger.oversize` metric so the guarantee erosion is visible.
pub const APPEND_ATOMIC_BYTES: usize = 4096;

/// Append one record to the ledger at `path`, concurrency-safe: the
/// rendered line goes out in a single `write` on an `O_APPEND` handle
/// under an advisory exclusive lock, with a bounded retry. Parent
/// directories are created. Safe to call from several processes (shard
/// workers) or threads racing on the same path.
///
/// # Errors
/// The last I/O error after 3 attempts.
pub fn append(path: &Path, record: &Json) -> io::Result<()> {
    let mut line = record.render();
    line.push('\n');
    if line.len() > APPEND_ATOMIC_BYTES {
        crate::obs::add("ledger.oversize", 1);
    }
    let mut last = None;
    for (attempt, backoff_ms) in [(0u64, 0u64), (1, 1), (2, 4)] {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
        }
        match append_once(path, &line) {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("three attempts ran"))
}

fn append_once(path: &Path, line: &str) -> io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    // Advisory exclusive lock (flock); released when `file` drops. Other
    // `wfc` processes block here for the microseconds one line takes —
    // foreign writers that skip the lock still can't tear *our* line,
    // since it leaves in one O_APPEND write.
    file.lock()?;
    file.write_all(line.as_bytes())
}

/// Every parseable record in the ledger, oldest first, plus the number
/// of malformed lines skipped.
///
/// # Errors
/// Propagates filesystem errors (a missing ledger is *not* an error —
/// it reads as empty).
pub fn read_all(path: &Path) -> io::Result<(Vec<Json>, usize)> {
    let content = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in content.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(j) => records.push(j),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Summarize a batch of ledger records: totals by command and exit
/// class, aggregate solver work, degradations and legality rejections.
/// The output (`ledger-stats/v1`) is deterministic in the records.
#[must_use]
pub fn stats(records: &[Json]) -> Json {
    use std::collections::BTreeMap;
    let mut by_cmd: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_exit: BTreeMap<String, u64> = BTreeMap::new();
    let (mut cells, mut solves, mut memo_hits) = (0u64, 0u64, 0u64);
    let (mut degraded, mut rejections) = (0u64, 0u64);
    for r in records {
        let s = |key: &str| r.get(key).and_then(Json::as_str).unwrap_or("?").to_string();
        *by_cmd.entry(s("cmd")).or_insert(0) += 1;
        *by_exit
            .entry(
                r.get("exit")
                    .and_then(|e| e.get("class"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            )
            .or_insert(0) += 1;
        let counter = |key: &str| {
            r.get("counters")
                .and_then(|c| c.get(key))
                .and_then(Json::as_i128)
                .and_then(|x| u64::try_from(x).ok())
                .unwrap_or(0)
        };
        cells += counter("simplex.cells");
        solves += counter("ilp.solves");
        memo_hits += counter("memo.hit");
        degraded += counter("optimizer.degraded");
        rejections += counter("verify.rejects");
    }
    let map_json = |m: &BTreeMap<String, u64>| {
        Json::Obj(m.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect())
    };
    Json::obj([
        ("schema", Json::str("ledger-stats/v1")),
        ("records", Json::from(records.len())),
        ("by_cmd", map_json(&by_cmd)),
        ("by_exit", map_json(&by_exit)),
        ("simplex_cells", Json::from(cells)),
        ("ilp_solves", Json::from(solves)),
        ("memo_hits", Json::from(memo_hits)),
        ("degradations", Json::from(degraded)),
        ("legality_rejections", Json::from(rejections)),
    ])
}

/// The most recent record matching a command name, searching newest
/// first (for the `bench-all --check-regressions` history join).
#[must_use]
pub fn last_for_cmd<'a>(records: &'a [Json], cmd: &str) -> Option<&'a Json> {
    records
        .iter()
        .rev()
        .find(|r| r.get("cmd").and_then(Json::as_str) == Some(cmd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wf-ledger-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(cmd: &str, cells: u64) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("cmd", Json::str(cmd)),
            (
                "exit",
                Json::obj([("class", Json::str("ok")), ("code", Json::Int(0))]),
            ),
            (
                "counters",
                Json::obj([("simplex.cells", Json::from(cells))]),
            ),
        ])
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("ledger.jsonl");
        append(&path, &record("run", 10)).unwrap();
        append(&path, &record("bench-all", 32)).unwrap();
        let (records, skipped) = read_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(records[0].get("cmd").and_then(Json::as_str), Some("run"));
        assert_eq!(
            last_for_cmd(&records, "bench-all")
                .unwrap()
                .get("cmd")
                .and_then(Json::as_str),
            Some("bench-all")
        );
        // The locked O_APPEND path never creates temp siblings.
        let stray = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp-")
            })
            .count();
        assert_eq!(stray, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_lose_no_records() {
        let dir = tmp_dir("concurrent");
        let path = dir.join("ledger.jsonl");
        let (threads, per) = (8usize, 25usize);
        std::thread::scope(|s| {
            for t in 0..threads {
                let path = path.clone();
                s.spawn(move || {
                    for i in 0..per {
                        append(&path, &record(&format!("run-{t}-{i}"), i as u64)).unwrap();
                    }
                });
            }
        });
        let (records, skipped) = read_all(&path).unwrap();
        assert_eq!(skipped, 0, "no torn or interleaved lines");
        assert_eq!(records.len(), threads * per, "no record silently lost");
        let mut cmds: Vec<&str> = records
            .iter()
            .map(|r| r.get("cmd").and_then(Json::as_str).unwrap())
            .collect();
        cmds.sort_unstable();
        cmds.dedup();
        assert_eq!(cmds.len(), threads * per, "every (writer, seq) pair once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversize_records_are_written_not_dropped() {
        let dir = tmp_dir("oversize");
        let path = dir.join("ledger.jsonl");
        let blob = "x".repeat(2 * APPEND_ATOMIC_BYTES);
        let big = Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("cmd", Json::str("run")),
            ("blob", Json::str(blob.clone())),
        ]);
        append(&path, &big).unwrap();
        append(&path, &record("fuzz", 3)).unwrap();
        let (records, skipped) = read_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(
            records[0].get("blob").and_then(Json::as_str).map(str::len),
            Some(blob.len())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let dir = tmp_dir("malformed");
        let path = dir.join("ledger.jsonl");
        append(&path, &record("run", 1)).unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{not json\n");
        std::fs::write(&path, content).unwrap();
        append(&path, &record("fuzz", 2)).unwrap();
        let (records, skipped) = read_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ledger_reads_empty() {
        let (records, skipped) = read_all(Path::new("/nonexistent/wf-ledger-void.jsonl")).unwrap();
        assert!(records.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn stats_aggregates_by_cmd_and_exit() {
        let records = vec![record("run", 5), record("run", 7), record("bench-all", 10)];
        let s = stats(&records);
        assert_eq!(s.get("records").unwrap().as_i128(), Some(3));
        assert_eq!(
            s.get("by_cmd").unwrap().get("run").unwrap().as_i128(),
            Some(2)
        );
        assert_eq!(
            s.get("by_exit").unwrap().get("ok").unwrap().as_i128(),
            Some(3)
        );
        assert_eq!(s.get("simplex_cells").unwrap().as_i128(), Some(22));
        // Deterministic rendering round-trips.
        assert!(Json::parse(&s.render()).is_ok());
    }
}
