//! Property + fixture tests for the criterion shim's statistics:
//! quartile interpolation, Tukey-fence outlier trimming, and batch
//! calibration. The fixtures are computed by hand so a regression in the
//! estimator shows up as a concrete wrong number, not just a violated
//! invariant.

use std::time::Duration;
use wf_harness::bench::{calibration_batch, summarize_samples, CALIBRATION_TARGET};
use wf_harness::prelude::*;
use wf_harness::{prop_assert, prop_assert_eq, props};

// ---------------------------------------------------------------- fixtures

#[test]
fn quartiles_interpolate_between_samples() {
    // sorted [10,20,30,40]: q1 at index 0.75 → 17.5, q3 at 2.25 → 32.5,
    // IQR 15, fences [-5, 55] keep everything; median at 1.5 → 25.
    let s = summarize_samples("fixture", &[40.0, 10.0, 30.0, 20.0], 1, None);
    assert_eq!(s.median_ns, 25.0);
    assert_eq!(s.mean_ns, 25.0);
    assert_eq!((s.min_ns, s.max_ns), (10.0, 40.0));
    assert_eq!((s.kept, s.outliers), (4, 0));
}

#[test]
fn odd_count_quartiles_hit_samples_exactly() {
    // sorted [10,20,30,40,50]: q1 = 20, q3 = 40, fences [-10, 70].
    let s = summarize_samples("fixture", &[30.0, 10.0, 50.0, 20.0, 40.0], 1, None);
    assert_eq!(s.median_ns, 30.0);
    assert_eq!(s.mean_ns, 30.0);
    assert_eq!((s.kept, s.outliers), (5, 0));
}

#[test]
fn tukey_fence_trims_the_spike() {
    // sorted [9,10,10.5,11,500]: q1 = 10, q3 = 11, fences [8.5, 12.5];
    // the 500 is discarded, trimmed mean = 40.5/4 = 10.125.
    let s = summarize_samples("fixture", &[10.0, 11.0, 9.0, 10.5, 500.0], 1, None);
    assert_eq!((s.kept, s.outliers), (4, 1));
    assert_eq!(s.mean_ns, 10.125);
    assert_eq!(s.max_ns, 11.0, "the kept maximum excludes the spike");
}

#[test]
fn zero_iqr_keeps_the_plateau_and_drops_the_stray() {
    // sorted [7,7,7,7,100]: q1 = q3 = 7, fences collapse to [7,7] — the
    // plateau survives its own degenerate fence, the stray does not.
    let s = summarize_samples("fixture", &[7.0, 7.0, 100.0, 7.0, 7.0], 1, None);
    assert_eq!((s.kept, s.outliers), (4, 1));
    assert_eq!(s.mean_ns, 7.0);
}

#[test]
fn calibration_fixture_points() {
    // At or above the 200µs target a single iteration is enough.
    assert_eq!(calibration_batch(CALIBRATION_TARGET), 1);
    assert_eq!(calibration_batch(Duration::from_millis(3)), 1);
    // A 2µs call needs 100 iterations to span the target.
    assert_eq!(calibration_batch(Duration::from_micros(2)), 100);
    // Sub-20ns (including zero) readings clamp to the 20ns noise floor,
    // so the batch never exceeds target/20ns = 10_000.
    assert_eq!(calibration_batch(Duration::ZERO), 10_000);
    assert_eq!(calibration_batch(Duration::from_nanos(1)), 10_000);
}

// -------------------------------------------------------------- properties

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    collection::vec(1u64..10_000_000, 2..=60)
        .prop_map(|v| v.into_iter().map(|n| n as f64).collect())
}

props! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn summary_partitions_and_bounds_every_sample(samples in arb_samples()) {
        let n = samples.len();
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let s = summarize_samples("prop", &samples, 1, None);
        prop_assert_eq!(s.kept + s.outliers, n, "every sample kept or trimmed");
        prop_assert!(s.kept >= 1);
        prop_assert!(s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        prop_assert!(lo <= s.min_ns && s.max_ns <= hi);
        prop_assert!(lo <= s.median_ns && s.median_ns <= hi);
    }

    #[test]
    fn constant_samples_have_no_outliers(v in 1u64..1_000_000, n in 2usize..40) {
        let samples = vec![v as f64; n];
        let s = summarize_samples("prop", &samples, 1, None);
        prop_assert_eq!(s.outliers, 0);
        prop_assert_eq!(s.kept, n);
        prop_assert_eq!(s.mean_ns, v as f64);
        prop_assert_eq!(s.median_ns, v as f64);
    }

    #[test]
    fn distant_spike_is_always_trimmed(base in 100u64..10_000, n in 5usize..30) {
        // A tight ±1 cluster plus one sample 1000× beyond it: Tukey's
        // 1.5×IQR fence must discard the spike and the kept maximum must
        // stay inside the cluster.
        let mut samples: Vec<f64> =
            (0..n).map(|i| (base + (i as u64 % 3)) as f64).collect();
        samples.push(base as f64 * 1000.0);
        let s = summarize_samples("prop", &samples, 1, None);
        prop_assert!(s.outliers >= 1, "spike survived the fence");
        prop_assert!(s.max_ns <= (base + 2) as f64);
        prop_assert!(s.mean_ns >= base as f64 && s.mean_ns <= (base + 2) as f64);
    }

    #[test]
    fn calibration_batch_is_clamped_and_spans_target(once_ns in 0u64..1_000_000_000) {
        let batch = calibration_batch(Duration::from_nanos(once_ns));
        prop_assert!((1..=1_000_000).contains(&batch));
        // Enough iterations to span the target, assuming the calibration
        // reading (floored at the 20ns noise floor) is honest.
        let est = once_ns.max(20) as u128;
        let span = batch as u128 * est;
        prop_assert!(
            batch == 1 || span >= CALIBRATION_TARGET.as_nanos() - est,
            "batch {batch} x {est}ns spans only {span}ns"
        );
    }

    #[test]
    fn calibration_batch_is_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (fast, slow) = (a.min(b), a.max(b));
        prop_assert!(
            calibration_batch(Duration::from_nanos(fast))
                >= calibration_batch(Duration::from_nanos(slow)),
            "slower code must not get a larger batch"
        );
    }
}
