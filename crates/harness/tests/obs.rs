//! Integration tests for the `obs` switchboard. The registry, event
//! buffer, and decision log are process-global, so every test takes the
//! same lock and resets the world before and after touching it.

use std::sync::Mutex;
use wf_harness::obs::{self, Histogram, HISTOGRAM_BOUNDS};
use wf_harness::pool;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize and sandbox one test's use of the global switchboard.
fn exclusive(f: impl FnOnce()) {
    let _guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let reset = || {
        obs::set_enabled(0);
        let _ = obs::take_events();
        let _ = obs::drain_decisions();
        let _ = obs::stream_close();
        obs::reset_metrics();
        obs::set_buffer_limit(obs::DEFAULT_BUFFER_LIMIT);
        wf_harness::attr::reset();
    };
    let prev = obs::enabled();
    reset();
    f();
    reset();
    obs::set_enabled(prev);
}

#[test]
fn span_nesting_within_a_thread() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE);
        {
            let mut outer = wf_harness::span!("outer", "k" => "v");
            outer.arg("k2", "v2");
            let _inner = wf_harness::span!("inner");
        }
        let events = obs::take_events();
        assert_eq!(events.len(), 2);
        // Inner drops (and records) first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, outer.id, "inner must nest under outer");
        assert_eq!(outer.parent, 0, "outer is a root span");
        assert_eq!(
            outer.args,
            vec![("k", "v".to_string()), ("k2", "v2".to_string())]
        );
    });
}

#[test]
fn spans_nest_across_pool_workers() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE);
        {
            let _submit = wf_harness::span!("submit");
            // The pool captures the submitting span's ctx and re-enters it
            // in every worker, so worker spans nest under "submit".
            let workers = pool::ThreadPool::new(4);
            let _ = workers.try_map((0..8u32).collect::<Vec<u32>>(), |i| {
                let _s = wf_harness::span!("job");
                i * 2
            });
            // Borrowed fork/join propagates the same way (its jobs may run
            // on the caller, so only the nesting is asserted below).
            let base = [1u32; 4];
            let _ = workers.try_scope(4, base.len(), |i| {
                let _s = wf_harness::span!("scope-job");
                base[i] + 1
            });
        }
        let events = obs::take_events();
        let submit = events
            .iter()
            .find(|e| e.name == "submit")
            .expect("submit span recorded");
        let jobs: Vec<_> = events.iter().filter(|e| e.name == "job").collect();
        assert_eq!(jobs.len(), 8);
        for j in &jobs {
            assert_eq!(
                j.parent, submit.id,
                "worker span must nest under the submitting span"
            );
        }
        // At least one job ran on a different thread than the submitter.
        assert!(
            jobs.iter().any(|j| j.tid != submit.tid),
            "expected cross-thread nesting with 4 workers and 8 jobs"
        );
        let scope_jobs: Vec<_> = events.iter().filter(|e| e.name == "scope-job").collect();
        assert_eq!(scope_jobs.len(), 4);
        for j in &scope_jobs {
            assert_eq!(
                j.parent, submit.id,
                "try_scope job span must nest under the forking span"
            );
        }
    });
}

#[test]
fn histogram_buckets_via_registry() {
    exclusive(|| {
        obs::set_enabled(obs::METRICS);
        // One observation per boundary value, plus overflow.
        for &b in &HISTOGRAM_BOUNDS {
            obs::observe("t.h", b);
        }
        obs::observe("t.h", HISTOGRAM_BOUNDS[HISTOGRAM_BOUNDS.len() - 1] + 1);
        let snap = obs::metrics();
        let h = snap.histogram("t.h").expect("histogram exists");
        assert_eq!(h.count, HISTOGRAM_BOUNDS.len() as u64 + 1);
        for (i, _) in HISTOGRAM_BOUNDS.iter().enumerate() {
            assert_eq!(h.counts[i], 1, "bucket {i} holds exactly its bound");
        }
        assert_eq!(h.counts[HISTOGRAM_BOUNDS.len()], 1, "overflow bucket");
        // Boundary semantics: 2^k lands in bucket k+? — spot check edges.
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(1_048_576), 20);
        assert_eq!(Histogram::bucket_index(1_048_577), 21);
    });
}

#[test]
fn counters_and_deltas() {
    exclusive(|| {
        obs::set_enabled(obs::METRICS);
        obs::add("t.c", 3);
        let earlier = obs::metrics();
        obs::add("t.c", 4);
        obs::add("t.other", 1);
        let now = obs::metrics();
        assert_eq!(now.counter("t.c"), 7);
        let d = now.delta(&earlier);
        assert_eq!(d.counter("t.c"), 4);
        assert_eq!(d.counter("t.other"), 1);
        // Unmoved counters are dropped from the delta entirely.
        obs::add("t.frozen", 1);
        let e2 = obs::metrics();
        let d2 = obs::metrics().delta(&e2);
        assert!(!d2.counters.contains_key("t.frozen"));
    });
}

#[test]
fn ledger_counts_oversize_records() {
    exclusive(|| {
        obs::set_enabled(obs::METRICS);
        let dir = std::env::temp_dir().join(format!("wf-obs-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        use wf_harness::json::Json;
        let small = Json::obj([("cmd", Json::str("run"))]);
        wf_harness::ledger::append(&path, &small).unwrap();
        assert_eq!(obs::metrics().counter("ledger.oversize"), 0);
        let blob = "y".repeat(wf_harness::ledger::APPEND_ATOMIC_BYTES + 1);
        let big = Json::obj([("cmd", Json::str("run")), ("blob", Json::str(blob))]);
        wf_harness::ledger::append(&path, &big).unwrap();
        assert_eq!(obs::metrics().counter("ledger.oversize"), 1);
        // Counted, not dropped: both records read back.
        let (records, skipped) = wf_harness::ledger::read_all(&path).unwrap();
        assert_eq!((records.len(), skipped), (2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn disabled_mode_records_nothing() {
    exclusive(|| {
        obs::set_enabled(0);
        {
            let mut s = wf_harness::span!("ghost", "k" => "v");
            s.arg("k2", "v2");
        }
        let _ctx = obs::enter_ctx(obs::current_ctx());
        obs::add("ghost.c", 5);
        obs::observe("ghost.h", 5);
        let _scope = obs::scope("ghost");
        obs::decision("ghost.kind", "never stored".to_string(), Vec::new());
        assert!(obs::take_events().is_empty(), "no spans when off");
        let snap = obs::metrics();
        assert_eq!(snap.counter("ghost.c"), 0);
        assert!(snap.histogram("ghost.h").is_none());
        assert!(obs::drain_decisions().is_empty(), "no decisions when off");
    });
}

#[test]
fn disabled_span_guard_does_not_allocate_args() {
    exclusive(|| {
        obs::set_enabled(0);
        let mut s = obs::span("ghost");
        // `arg` on an inactive guard must not buffer anything — the whole
        // point of the flag check is zero cost when off.
        s.arg("k", "an expensive string".to_string());
        drop(s);
        obs::set_enabled(obs::TRACE);
        let _ = obs::take_events();
        obs::set_enabled(0);
    });
}

#[test]
fn decision_log_orders_by_scope_then_seq() {
    exclusive(|| {
        obs::set_enabled(obs::DECISIONS);
        {
            let _s = obs::scope("zeta");
            obs::decision("k", "z0".to_string(), Vec::new());
            obs::decision("k", "z1".to_string(), Vec::new());
        }
        {
            let _s = obs::scope("alpha");
            obs::decision("k", "a0".to_string(), Vec::new());
        }
        let ds = obs::drain_decisions();
        let order: Vec<(&str, u64, &str)> = ds
            .iter()
            .map(|d| (d.scope.as_str(), d.seq, d.summary.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![("alpha", 0, "a0"), ("zeta", 0, "z0"), ("zeta", 1, "z1")]
        );
        // Draining resets per-scope sequence numbers.
        {
            let _s = obs::scope("zeta");
            obs::decision("k", "fresh".to_string(), Vec::new());
        }
        assert_eq!(obs::drain_decisions()[0].seq, 0);
    });
}

#[test]
fn trace_json_round_trips_through_parser() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE | obs::METRICS);
        obs::add("t.c", 1);
        {
            let _s = wf_harness::span!("phase", "model" => "wisefuse");
        }
        let doc = obs::trace_json(&obs::take_events());
        let text = doc.render();
        let parsed = wf_harness::json::Json::parse(&text).expect("valid JSON");
        let evs = parsed
            .get("traceEvents")
            .and_then(wf_harness::json::Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("phase"));
        assert!(parsed.get("metrics").is_some());
    });
}

#[test]
fn buffer_cap_drops_spans_and_counts_them() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE | obs::METRICS);
        obs::set_buffer_limit(4);
        let d0 = obs::dropped();
        for _ in 0..10 {
            let _s = wf_harness::span!("burst");
        }
        let events = obs::take_events();
        assert_eq!(events.len(), 4, "buffer is capped at the limit");
        assert_eq!(obs::dropped() - d0, 6, "overflow is counted, not stored");
        assert_eq!(
            obs::metrics().counter("obs.dropped"),
            6,
            "drops surface as a counter"
        );
    });
}

#[test]
fn decision_log_respects_the_buffer_cap() {
    exclusive(|| {
        obs::set_enabled(obs::DECISIONS | obs::METRICS);
        obs::set_buffer_limit(2);
        let d0 = obs::dropped();
        let _scope = obs::scope("cap");
        for i in 0..5 {
            obs::decision("k", format!("d{i}"), Vec::new());
        }
        assert_eq!(obs::drain_decisions().len(), 2);
        assert_eq!(obs::dropped() - d0, 3);
    });
}

#[test]
fn stream_sink_writes_jsonl_and_bypasses_memory() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE);
        let dir = std::env::temp_dir().join(format!("wf-obs-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("stream.jsonl");
        obs::stream_open(path.to_str().unwrap()).unwrap();
        {
            let _outer = wf_harness::span!("s-outer");
            let _inner = wf_harness::span!("s-inner");
        }
        let lines = obs::stream_close().unwrap().expect("stream was open");
        assert_eq!(lines, 2);
        assert!(
            obs::take_events().is_empty(),
            "streamed spans must not also buffer in memory"
        );
        let content = std::fs::read_to_string(&path).unwrap();
        let names: Vec<String> = content
            .lines()
            .map(|line| {
                let j = wf_harness::json::Json::parse(line).expect("each line is valid JSON");
                j.get("name").unwrap().as_str().unwrap().to_string()
            })
            .collect();
        // Spans close innermost-first.
        assert_eq!(names, ["s-inner", "s-outer"]);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn stream_sink_is_bounded() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE);
        // max lines = 64 x the in-memory cap.
        obs::set_buffer_limit(1);
        let dir = std::env::temp_dir().join(format!("wf-obs-sbound-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("stream.jsonl");
        obs::stream_open(path.to_str().unwrap()).unwrap();
        let d0 = obs::dropped();
        for _ in 0..70 {
            let _s = wf_harness::span!("flood");
        }
        let lines = obs::stream_close().unwrap().expect("stream was open");
        assert_eq!(lines, 64, "stream stops at 64x the buffer limit");
        assert_eq!(obs::dropped() - d0, 6, "overflow past the bound is counted");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn pool_panic_unwinds_span_stack_cleanly() {
    exclusive(|| {
        obs::set_enabled(obs::TRACE);
        let workers = pool::ThreadPool::new(2);
        {
            let _submit = wf_harness::span!("submit-panic");
            // One job panics while holding an open span inside the
            // propagated ctx; the pool contains it per-slot.
            let slots = workers.try_scope(2, 4, |i| {
                let _s = wf_harness::span!("doomed");
                assert!(i != 2, "boom");
                i
            });
            assert!(slots.iter().any(Result::is_err), "the panic surfaced");
        }
        let _ = obs::take_events();
        // A fresh scope on the same workers must start from a clean span
        // stack: no orphan ctx from the panicked job may leak in.
        let slots = workers.try_scope(2, 4, |i| {
            let _s = wf_harness::span!("clean");
            i
        });
        assert!(slots.iter().all(Result::is_ok));
        let events = obs::take_events();
        let clean: Vec<_> = events.iter().filter(|e| e.name == "clean").collect();
        assert_eq!(clean.len(), 4);
        for e in clean {
            assert_eq!(
                e.parent, 0,
                "span stack must unwind past the panic: no stale parent ctx"
            );
        }
    });
}
