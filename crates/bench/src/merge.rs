//! Deterministic folding of `bench-shard/v1` reports into one
//! `bench-all/v1` report (`wfc merge-reports`, and the tail end of
//! `wfc bench-all --workers N`).
//!
//! The contract is byte-level: `strip_timings(merge(shards))` must equal
//! `strip_timings` of a single-process run over the same catalog. That
//! pins down every choice here —
//!
//! * **rows** are passed through verbatim and re-sorted into catalog
//!   order (each row was computed by exactly one shard, and the pipeline
//!   is deterministic, so the bytes already agree);
//! * **totals** re-sum the per-shard `*_seconds` columns and recompute
//!   the speedup ratios and the solver hit rate *from the sums* — never
//!   by averaging per-shard ratios;
//! * **cache / solver_memo** counter blocks are summed field-wise and
//!   re-emitted through the same [`cache::CacheStats`] /
//!   [`memo::MemoStats`] serializers the single-process run uses, so key
//!   order and derived rates stay identical;
//! * **metrics** merge counters by addition and histograms on their raw
//!   bucket counts ([`Histogram::from_json`] + [`Histogram::merge`]) —
//!   quantiles of a union cannot be reconstructed from per-shard
//!   quantiles, so those are recomputed from the merged buckets;
//! * **gates** (`determinism_ok`) are AND-ed and `legality_rejections`
//!   summed (present only when any shard carried it).
//!
//! Validation is strict: mismatched schemas, thread counts, shard
//! counts, missing or duplicate shard indices, and duplicate benchmark
//! rows are all [`WfError::Invalid`] — a merge over the wrong inputs
//! must fail loudly, not produce a plausible report.

use std::collections::BTreeMap;
use wf_benchsuite::catalog;
use wf_harness::json::Json;
use wf_harness::obs::Histogram;
use wf_harness::WfError;
use wf_polyhedra::memo;
use wf_wisefuse::cache;

/// The schema tag shard runs emit.
pub const SHARD_SCHEMA: &str = "bench-shard/v1";
/// The schema tag of the consolidated report.
pub const ALL_SCHEMA: &str = "bench-all/v1";

fn invalid(msg: impl Into<String>) -> WfError {
    WfError::invalid(msg)
}

fn schema_of(doc: &Json) -> &str {
    doc.get("schema").and_then(Json::as_str).unwrap_or("?")
}

fn as_u64(j: Option<&Json>) -> u64 {
    j.and_then(Json::as_i128)
        .and_then(|v| u64::try_from(v).ok())
        .unwrap_or(0)
}

fn as_f64(j: Option<&Json>) -> f64 {
    j.and_then(Json::as_f64).unwrap_or(0.0)
}

/// Fold shard reports into one consolidated `bench-all/v1` document.
/// As a convenience (the CLI's `merge-reports --strip` over an existing
/// consolidated report), a *single* `bench-all/v1` input is returned
/// unchanged.
///
/// # Errors
/// [`WfError::Invalid`] on empty input, schema/thread mismatches, an
/// incomplete or duplicated shard set, or duplicate benchmark rows.
pub fn merge_reports(reports: &[Json]) -> Result<Json, WfError> {
    match reports {
        [] => Err(invalid("merge-reports: no input reports")),
        [only] if schema_of(only) == ALL_SCHEMA => Ok(only.clone()),
        _ => merge_shards(reports),
    }
}

fn merge_shards(reports: &[Json]) -> Result<Json, WfError> {
    // --- validation ---------------------------------------------------
    for r in reports {
        let s = schema_of(r);
        if s != SHARD_SCHEMA {
            return Err(invalid(format!(
                "merge-reports: expected {SHARD_SCHEMA} inputs (or exactly one {ALL_SCHEMA}); got \"{s}\""
            )));
        }
    }
    let threads: Vec<u64> = reports.iter().map(|r| as_u64(r.get("threads"))).collect();
    if threads.windows(2).any(|w| w[0] != w[1]) {
        return Err(invalid(format!(
            "merge-reports: shards ran with different thread counts {threads:?}"
        )));
    }
    let mut indices = Vec::new();
    let mut counts = Vec::new();
    for r in reports {
        let shard = r
            .get("shard")
            .ok_or_else(|| invalid("merge-reports: shard report missing its shard block"))?;
        indices.push(as_u64(shard.get("index")));
        counts.push(as_u64(shard.get("count")));
    }
    if counts.windows(2).any(|w| w[0] != w[1]) || counts[0] as usize != reports.len() {
        return Err(invalid(format!(
            "merge-reports: got {} report(s) but shard counts say {counts:?}",
            reports.len()
        )));
    }
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    if sorted != (1..=counts[0]).collect::<Vec<u64>>() {
        return Err(invalid(format!(
            "merge-reports: shard indices {indices:?} do not cover 1..={}",
            counts[0]
        )));
    }

    // --- rows: verbatim pass-through, re-sorted into catalog order ----
    let rank: BTreeMap<&str, usize> = catalog()
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, i))
        .collect();
    let mut rows: Vec<Json> = Vec::new();
    for r in reports {
        rows.extend(
            r.get("benchmarks")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .cloned(),
        );
    }
    let row_name = |row: &Json| {
        row.get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let mut seen: Vec<String> = rows.iter().map(&row_name).collect();
    seen.sort();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(invalid(
            "merge-reports: the same benchmark appears in more than one shard",
        ));
    }
    // Catalog benchmarks in catalog order; anything foreign after, by name.
    rows.sort_by_key(|row| {
        let name = row_name(row);
        (rank.get(name.as_str()).copied().unwrap_or(usize::MAX), name)
    });

    // --- totals: sums, with ratios recomputed from the sums -----------
    let sum_total = |key: &str| -> f64 {
        reports
            .iter()
            .map(|r| as_f64(r.get("totals").and_then(|t| t.get(key))))
            .sum()
    };
    let sum_block = |block: &str, key: &str| -> u64 {
        reports
            .iter()
            .map(|r| as_u64(r.get(block).and_then(|b| b.get(key))))
            .sum()
    };
    let memo_sum = memo::MemoStats {
        hits: sum_block("solver_memo", "hits"),
        misses: sum_block("solver_memo", "misses"),
        stores: sum_block("solver_memo", "stores"),
        evictions: sum_block("solver_memo", "evictions"),
    };
    let cache_sum = cache::CacheStats {
        hits: sum_block("cache", "hits"),
        misses: sum_block("cache", "misses"),
        stores: sum_block("cache", "stores"),
        evictions: sum_block("cache", "evictions"),
        spill_hits: sum_block("cache", "spill_hits"),
        spill_stores: sum_block("cache", "spill_stores"),
        spill_quarantined: sum_block("cache", "spill_quarantined"),
    };
    let (tot_analysis_serial, tot_analysis_parallel) = (
        sum_total("analysis_serial_seconds"),
        sum_total("analysis_parallel_seconds"),
    );
    let (tot_serial, tot_parallel) = (
        sum_total("ilp_serial_seconds"),
        sum_total("ilp_parallel_seconds"),
    );
    let (tot_exec_scoped, tot_exec_pooled) = (
        sum_total("exec_scoped_seconds"),
        sum_total("exec_pooled_seconds"),
    );
    // Identical key order to the single-process report builder.
    let totals = Json::obj([
        ("analysis_serial_seconds", tot_analysis_serial.into()),
        ("analysis_parallel_seconds", tot_analysis_parallel.into()),
        (
            "analysis_speedup",
            (tot_analysis_serial / tot_analysis_parallel.max(1e-12)).into(),
        ),
        ("solver_hit_rate_pct", memo_sum.hit_rate_pct().into()),
        ("ilp_serial_seconds", tot_serial.into()),
        ("ilp_parallel_seconds", tot_parallel.into()),
        ("ilp_speedup", (tot_serial / tot_parallel.max(1e-12)).into()),
        ("codegen_seconds", sum_total("codegen_seconds").into()),
        ("exec_scoped_seconds", tot_exec_scoped.into()),
        ("exec_pooled_seconds", tot_exec_pooled.into()),
        (
            "exec_speedup",
            (tot_exec_scoped / tot_exec_pooled.max(1e-12)).into(),
        ),
        (
            "pool_replay_seconds",
            sum_total("pool_replay_seconds").into(),
        ),
    ]);

    // --- metrics: counters add, histograms merge raw buckets ----------
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for r in reports {
        let m = r.get("metrics");
        if let Some(Json::Obj(fields)) = m.and_then(|m| m.get("counters")) {
            for (k, v) in fields {
                *counters.entry(k.clone()).or_insert(0) += as_u64(Some(v));
            }
        }
        if let Some(Json::Obj(fields)) = m.and_then(|m| m.get("histograms")) {
            for (k, v) in fields {
                let h = Histogram::from_json(v).ok_or_else(|| {
                    invalid(format!("merge-reports: malformed histogram \"{k}\""))
                })?;
                histograms.entry(k.clone()).or_default().merge(&h);
            }
        }
    }
    let metrics = Json::Obj(vec![
        (
            "counters".to_string(),
            Json::Obj(
                counters
                    .into_iter()
                    .map(|(k, v)| (k, Json::from(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Json::Obj(
                histograms
                    .into_iter()
                    .map(|(k, h)| (k, h.to_json()))
                    .collect(),
            ),
        ),
    ]);

    // --- gates --------------------------------------------------------
    let determinism_ok = reports
        .iter()
        .all(|r| r.get("determinism_ok").and_then(Json::as_bool) == Some(true));
    let any_legality = reports
        .iter()
        .any(|r| r.get("legality_rejections").is_some());
    let legality_sum: u64 = reports
        .iter()
        .map(|r| as_u64(r.get("legality_rejections")))
        .sum();

    // --- assemble in the exact single-process key order ---------------
    let mut merged = Json::obj([
        ("schema", ALL_SCHEMA.into()),
        ("threads", threads[0].into()),
        ("benchmarks", Json::Arr(rows)),
        ("totals", totals),
        ("cache", cache_sum.to_json()),
        ("solver_memo", memo_sum.to_json()),
        ("metrics", metrics),
        ("determinism_ok", determinism_ok.into()),
    ]);
    if any_legality {
        merged.push("legality_rejections", legality_sum.into());
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(index: u64, count: u64, threads: u64, names: &[&str]) -> Json {
        Json::obj([
            ("schema", SHARD_SCHEMA.into()),
            ("threads", threads.into()),
            (
                "shard",
                Json::obj([("index", index.into()), ("count", count.into())]),
            ),
            (
                "benchmarks",
                Json::Arr(
                    names
                        .iter()
                        .map(|n| Json::obj([("name", Json::str(*n))]))
                        .collect(),
                ),
            ),
            ("totals", Json::obj([])),
            ("cache", Json::obj([])),
            ("solver_memo", Json::obj([])),
            (
                "metrics",
                Json::obj([("counters", Json::obj([])), ("histograms", Json::obj([]))]),
            ),
            ("determinism_ok", true.into()),
        ])
    }

    #[test]
    fn single_consolidated_report_passes_through() {
        let doc = Json::obj([("schema", ALL_SCHEMA.into()), ("threads", 2u64.into())]);
        assert_eq!(merge_reports(std::slice::from_ref(&doc)).unwrap(), doc);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(merge_reports(&[]).is_err(), "empty input");
        let wrong = Json::obj([("schema", "profile/v1".into())]);
        assert!(merge_reports(&[wrong]).is_err(), "foreign schema");
        // Thread mismatch.
        let a = shard(1, 2, 2, &["advect"]);
        let b = shard(2, 2, 4, &["tce"]);
        assert!(merge_reports(&[a.clone(), b]).is_err(), "thread mismatch");
        // Missing shard 2/2.
        assert!(
            merge_reports(std::slice::from_ref(&a)).is_err(),
            "incomplete shard set"
        );
        // Duplicate shard index.
        assert!(
            merge_reports(&[a.clone(), shard(1, 2, 2, &["tce"])]).is_err(),
            "duplicate shard index"
        );
        // Duplicate benchmark row across shards.
        assert!(
            merge_reports(&[a, shard(2, 2, 2, &["advect"])]).is_err(),
            "duplicate benchmark row"
        );
    }

    #[test]
    fn rows_are_resorted_into_catalog_order() {
        // Shard 2 carries catalog-earlier benchmarks than shard 1.
        let a = shard(1, 2, 2, &["gemver"]);
        let b = shard(2, 2, 2, &["advect", "lu"]);
        let merged = merge_reports(&[a, b]).unwrap();
        let names: Vec<&str> = merged
            .get("benchmarks")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| r.get("name").and_then(Json::as_str).unwrap())
            .collect();
        // Catalog order: advect before lu before gemver.
        assert_eq!(names, vec!["advect", "lu", "gemver"]);
        assert_eq!(
            merged.get("schema").and_then(Json::as_str),
            Some(ALL_SCHEMA)
        );
        assert_eq!(
            merged.get("determinism_ok").and_then(Json::as_bool),
            Some(true)
        );
        // No shard carried legality info, so the merged report elides it.
        assert!(merged.get("legality_rejections").is_none());
    }

    #[test]
    fn gates_and_counters_fold() {
        let mut a = shard(1, 2, 2, &["advect"]);
        let mut b = shard(2, 2, 2, &["tce"]);
        // One shard failed determinism; both carried legality counts.
        if let Json::Obj(fields) = &mut b {
            for (k, v) in fields.iter_mut() {
                if k == "determinism_ok" {
                    *v = false.into();
                }
            }
        }
        a.push("legality_rejections", 1u64.into());
        b.push("legality_rejections", 2u64.into());
        let merged = merge_reports(&[a, b]).unwrap();
        assert_eq!(
            merged.get("determinism_ok").and_then(Json::as_bool),
            Some(false),
            "gates AND"
        );
        assert_eq!(
            merged.get("legality_rejections").and_then(Json::as_i128),
            Some(3),
            "rejections sum"
        );
    }
}
