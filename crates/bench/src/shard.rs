//! Catalog sharding for `wfc bench-all --shard I/N` / `--workers N`.
//!
//! A shard is a deterministic contiguous slice of the (filtered) catalog:
//! [`plan_shards`] splits `len` benchmarks into `count` balanced ranges —
//! disjoint, covering, stable across runs and processes — so a
//! coordinator can hand shard `I` of `N` to a subprocess by index alone,
//! with no work-list to serialize. Shard indices are **1-based** on every
//! user-facing surface (`--shard 2/4`, `WF_SHARD=2/4`, report `shard`
//! blocks, `BENCH_shard_2_of_4.json`) and 0-based internally.
//!
//! This module also owns the env-var grammar shared by the CLI: like
//! every other `WF_*` knob, a malformed value is an invalid request
//! (exit 2), never a silent default.

use std::ops::Range;
use wf_harness::WfError;

/// Per-shard supervision deadline when `WF_SHARD_TIMEOUT_SECS` is unset.
/// Generous: a shard that is merely slow restarts from the shared spill
/// cache anyway, but a wedged one must not hang the coordinator forever.
pub const DEFAULT_TIMEOUT_SECS: u64 = 900;

/// Which slice of the catalog one `bench-all` run covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardSpec {
    /// 0-based shard index (`< count`).
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// The 1-based index used on every user-facing surface.
    #[must_use]
    pub fn display_index(&self) -> usize {
        self.index + 1
    }

    /// The `report::write_named` stem for this shard's report
    /// (`shard_2_of_4` → `BENCH_shard_2_of_4.json`).
    #[must_use]
    pub fn report_name(&self) -> String {
        format!("shard_{}_of_{}", self.display_index(), self.count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.display_index(), self.count)
    }
}

/// Split `len` items into `count` contiguous balanced ranges: the first
/// `len % count` shards get one extra item. The ranges are disjoint,
/// cover `0..len` exactly, never differ in size by more than one, and
/// depend only on `(len, count)` — the determinism the merge layer's
/// byte-equality contract rests on.
#[must_use]
pub fn plan_shards(len: usize, count: usize) -> Vec<Range<usize>> {
    let count = count.max(1);
    let (base, extra) = (len / count, len % count);
    let mut start = 0usize;
    (0..count)
        .map(|i| {
            let size = base + usize::from(i < extra);
            let r = start..start + size;
            start += size;
            r
        })
        .collect()
}

/// Parse the user-facing `I/N` grammar (1-based, `1 <= I <= N`).
///
/// # Errors
/// [`WfError::Invalid`] with the offending text otherwise.
pub fn parse_spec(s: &str) -> Result<ShardSpec, WfError> {
    let bad = || {
        WfError::invalid(format!(
            "shard must be I/N with 1 <= I <= N (e.g. 2/4; got \"{s}\")"
        ))
    };
    let (i, n) = s.trim().split_once('/').ok_or_else(bad)?;
    let index: usize = i.trim().parse().map_err(|_| bad())?;
    let count: usize = n.trim().parse().map_err(|_| bad())?;
    if index == 0 || count == 0 || index > count {
        return Err(bad());
    }
    Ok(ShardSpec {
        index: index - 1,
        count,
    })
}

/// `WF_SHARD=I/N`: run this slice of the catalog (same grammar as
/// `--shard`). `None` when unset.
///
/// # Errors
/// [`WfError::Invalid`] on a malformed value (exit 2).
pub fn spec_from_env() -> Result<Option<ShardSpec>, WfError> {
    match std::env::var("WF_SHARD") {
        Err(_) => Ok(None),
        Ok(v) => parse_spec(&v)
            .map(Some)
            .map_err(|e| WfError::invalid(format!("WF_SHARD: {e}"))),
    }
}

/// `WF_BENCH_WORKERS=N`: coordinate `N` shard subprocesses (same meaning
/// as `--workers`). `None` when unset.
///
/// # Errors
/// [`WfError::Invalid`] on a malformed or zero value (exit 2).
pub fn workers_from_env() -> Result<Option<usize>, WfError> {
    parse_positive("WF_BENCH_WORKERS", "worker-process count")
}

/// `WF_SHARD_TIMEOUT_SECS=S`: per-shard supervision deadline, defaulting
/// to [`DEFAULT_TIMEOUT_SECS`].
///
/// # Errors
/// [`WfError::Invalid`] on a malformed or zero value (exit 2).
pub fn timeout_from_env() -> Result<u64, WfError> {
    Ok(
        parse_positive("WF_SHARD_TIMEOUT_SECS", "per-shard timeout in seconds")?
            .map_or(DEFAULT_TIMEOUT_SECS, |v| v as u64),
    )
}

/// `WF_SHARD_FAIL_ONCE=I`: fault drill for the supervision path — the
/// coordinator kills shard `I`'s (1-based) first attempt right after
/// spawning it, forcing the crash-retry path. CI uses this to prove the
/// retried merge is byte-identical; never set it outside drills.
///
/// # Errors
/// [`WfError::Invalid`] on a malformed or zero value (exit 2).
pub fn fail_once_from_env() -> Result<Option<usize>, WfError> {
    parse_positive("WF_SHARD_FAIL_ONCE", "1-based shard index to kill once")
}

fn parse_positive(var: &str, what: &str) -> Result<Option<usize>, WfError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(WfError::invalid(format!(
                "{var} must be a positive integer ({what}; got \"{v}\")"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_disjoint_covering_balanced_stable() {
        for len in 0..=40 {
            for count in 1..=8 {
                let plan = plan_shards(len, count);
                assert_eq!(plan.len(), count);
                // Covering and disjoint: the ranges concatenate to 0..len.
                let mut cursor = 0usize;
                for r in &plan {
                    assert_eq!(r.start, cursor, "len={len} count={count}");
                    cursor = r.end;
                }
                assert_eq!(cursor, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = plan.iter().map(std::ops::Range::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "len={len} count={count} sizes={sizes:?}");
                // Stable: a pure function of (len, count).
                assert_eq!(plan, plan_shards(len, count));
            }
        }
    }

    #[test]
    fn spec_grammar_round_trips() {
        let s = parse_spec("2/4").unwrap();
        assert_eq!((s.index, s.count), (1, 4));
        assert_eq!(s.to_string(), "2/4");
        assert_eq!(s.report_name(), "shard_2_of_4");
        assert_eq!(parse_spec(" 1/1 ").unwrap().count, 1);
        for bad in ["", "3", "0/4", "5/4", "x/4", "2/y", "2/0", "-1/4", "1/4/2"] {
            assert!(parse_spec(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
