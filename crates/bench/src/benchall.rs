//! The `wfc bench-all` batch driver: every benchsuite SCoP × every fusion
//! model in **one process**, so the expensive work is paid once and shared —
//! dependence analysis once per SCoP, the worker pool reused across SCoPs,
//! and the schedule cache shared across models and phases.
//!
//! Per SCoP the driver times the three pipeline phases separately:
//!
//! * **analysis** — exact polyhedral dependence analysis, measured twice:
//!   serially ([`wf_deps::analyze`]) and with the pairwise statement tests
//!   forked on the shared pool ([`wf_deps::try_analyze`] at `threads`
//!   workers); the two DDGs must be byte-identical, and the timing pair is
//!   the report's `analysis_serial_seconds` / `analysis_parallel_seconds`
//!   / `analysis_speedup` columns;
//! * **ILP** — scheduling all five models, measured three ways: serially
//!   (one worker, cache bypassed), in parallel (`threads` workers, cache
//!   bypassed — the wall-clock speedup the report headlines), and through
//!   the schedule cache (a cold populating pass plus a warm pass whose
//!   hits skip the ILP entirely). The serial/parallel cold passes run
//!   with the [`wf_polyhedra::memo`] solver memo disabled so their
//!   timings stay true cold baselines; two additional serial passes then
//!   run with the memo on (a populating pass and a warm pass) — both
//!   must reproduce the memo-off schedules exactly (the memo-on/off leg
//!   of the determinism gate) and the warm pass's memo-counter delta is
//!   the row's `solver_hit_rate_pct`;
//! * **codegen** — building the execution plan for every scheduled model;
//! * **executor** — running wisefuse's plan over real tensors three ways:
//!   a serial baseline, per-band fresh workers (the old scoped-spawn cost
//!   model), and the shared process pool ([`ExecContext`]). The
//!   scoped-vs-pooled timing pair is the report's executor column, and
//!   all outputs must be byte-identical to the serial baseline.
//!
//! Every extra pass doubles as a determinism check: the parallel, cached,
//! and pool-replayed schedules must be **identical** to the serial ones
//! ([`Transformed`](wf_schedule::pluto::Transformed) and loop properties
//! compare equal), and the consolidated report carries the verdict in
//! `determinism_ok` so CI can fail on any divergence. Timing fields are the
//! only run-to-run variance; [`strip_timings`] removes them so two reports
//! can be compared byte-for-byte.

use std::sync::Arc;
use std::time::Instant;
use wf_benchsuite::{catalog, Benchmark};
use wf_harness::json::Json;
use wf_harness::{obs, pool};
use wf_polyhedra::memo;
use wf_runtime::{ExecContext, ExecOptions, ProgramData};
use wf_wisefuse::{cache, Model, Optimized, Optimizer};

/// Benchmark parameters are clamped to this for the executor phase: big
/// enough that parallel bands actually fork, small enough that the batch
/// stays interactive.
const EXEC_PARAM_CAP: i128 = 96;

/// Knobs for one [`run`].
#[derive(Clone, Debug)]
pub struct BenchAllOptions {
    /// Worker count for the parallel scheduling passes (≥ 2 to measure a
    /// speedup; the serial baseline always uses 1).
    pub threads: usize,
    /// Restrict the catalog to benchmarks whose name contains any of
    /// these comma-separated substrings (empty = whole catalog).
    pub filter: String,
    /// Re-verify every successfully scheduled model against the
    /// independent legality oracle (`wfc bench-all --check-legality`).
    pub check_legality: bool,
    /// Run only this slice of the (filtered) catalog and emit a
    /// `bench-shard/v1` report instead of `bench-all/v1`
    /// (`wfc bench-all --shard I/N`); `None` = the whole catalog.
    pub shard: Option<crate::shard::ShardSpec>,
}

impl Default for BenchAllOptions {
    fn default() -> BenchAllOptions {
        BenchAllOptions {
            threads: pool::global().n_threads(),
            filter: String::new(),
            check_legality: false,
            shard: None,
        }
    }
}

/// Everything one batch run produced.
pub struct BenchAllOutcome {
    /// The consolidated `BENCH_all.json` payload.
    pub report: Json,
    /// Did every redundant pass (parallel analysis, parallel scheduling,
    /// cached, memoized, pooled) reproduce the serial results exactly?
    pub determinism_ok: bool,
    /// Schedule-cache counters at the end of the run.
    pub cache_stats: cache::CacheStats,
    /// Solver-memo counters at the end of the run.
    pub memo_stats: memo::MemoStats,
    /// Schedules the legality oracle rejected (always 0 unless
    /// [`BenchAllOptions::check_legality`] was set).
    pub legality_rejections: usize,
}

/// Scheduling outcome fingerprint used for the determinism cross-checks:
/// per model, either the full transformed program + properties or the
/// error text.
type RunSet = Vec<(Model, Result<Optimized, wf_wisefuse::WfError>)>;

fn same_runs(a: &RunSet, b: &RunSet) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ma, ra), (mb, rb))| {
            ma == mb
                && match (ra, rb) {
                    (Ok(x), Ok(y)) => x.transformed == y.transformed && x.props == y.props,
                    (Err(x), Err(y)) => x == y,
                    _ => false,
                }
        })
}

fn secs(t: Instant) -> f64 {
    t.elapsed().as_secs_f64()
}

/// Counter movement between two solver-memo snapshots.
fn delta_stats(before: &memo::MemoStats, after: &memo::MemoStats) -> memo::MemoStats {
    memo::MemoStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        stores: after.stores.saturating_sub(before.stores),
        evictions: after.evictions.saturating_sub(before.evictions),
    }
}

/// Run the whole catalog × all models; see the module docs for the phase
/// structure. Pure compute — writing `BENCH_all.json` is the caller's job
/// (the CLI routes `report` through [`crate::BenchReport`]'s writer).
#[must_use]
pub fn run(opts: &BenchAllOptions) -> BenchAllOutcome {
    let threads = opts.threads.max(1);
    // The batch driver always collects metrics: every report row embeds the
    // per-SCoP registry delta (ILP nodes/pivots, cache traffic, …).
    // Restored afterwards so library callers keep their own switchboard.
    let prev_flags = obs::enabled();
    obs::set_enabled(prev_flags | obs::METRICS);
    let matches_filter = |name: &str| {
        opts.filter.is_empty()
            || opts.filter.split(',').any(|f| {
                let f = f.trim();
                !f.is_empty() && name.contains(f)
            })
    };
    let mut benchmarks: Vec<Benchmark> = catalog()
        .into_iter()
        .filter(|b| matches_filter(b.name))
        .collect();
    // Shard mode: keep only this run's deterministic slice. Sharding
    // happens *after* filtering so `--workers` + `--filter` compose.
    if let Some(spec) = opts.shard {
        let range = crate::shard::plan_shards(benchmarks.len(), spec.count)
            [spec.index.min(spec.count.saturating_sub(1))]
        .clone();
        benchmarks.truncate(range.end);
        benchmarks.drain(..range.start);
    }

    let mut determinism_ok = true;
    let mut rows = Vec::new();
    let mut tot_analysis_serial = 0.0;
    let mut tot_analysis_parallel = 0.0;
    let mut tot_serial = 0.0;
    let mut tot_parallel = 0.0;
    let mut tot_codegen = 0.0;
    let mut tot_exec_scoped = 0.0;
    let mut tot_exec_pooled = 0.0;
    let memo_before_all = memo::stats();
    let mut legality_rejections = 0usize;
    // The serial-pass results, kept for the cross-SCoP pool verification.
    let mut expected: Vec<(usize, RunSet)> = Vec::new();

    for (idx, b) in benchmarks.iter().enumerate() {
        let metrics_before = obs::metrics();
        // Phase 1a: dependence analysis, serial baseline; every later pass
        // reuses this graph through the facade.
        let t = Instant::now();
        let ddg = wf_deps::analyze(&b.scop);
        let analysis_serial_seconds = secs(t);

        // Phase 1b: the same analysis with the pairwise statement tests
        // forked on the shared pool. The merged DDG must be byte-identical
        // to the serial one — that is the parallel-analysis leg of the
        // determinism gate.
        let t = Instant::now();
        let ddg_parallel = wf_deps::try_analyze(&b.scop, threads);
        let analysis_parallel_seconds = secs(t);
        let analysis_same = matches!(&ddg_parallel, Ok(d) if *d == ddg);

        let fresh = |cached: bool| {
            // Fallback-on-degradable keeps the batch alive under injected
            // faults (`WF_FAULT`): a budget-starved or panicked model rides
            // on as its degraded schedule instead of an Err row. Fault-free
            // runs never take that path, so reports are unchanged.
            let o = Optimizer::new(&b.scop).with_ddg(ddg.clone()).fallback();
            if cached {
                o
            } else {
                o.cache_off()
            }
        };

        // Phases 2a/2b run with the solver memo disabled so their timings
        // are true cold baselines — with the memo on, the parallel pass
        // would answer the serial pass's solves from the cache and the
        // ilp_speedup column would measure the memo, not the pool.
        memo::set_enabled(false);

        // Phase 2a: ILP, serial cold baseline (one worker, cache bypassed).
        let t = Instant::now();
        let serial = fresh(false).threads(1).run_all();
        let serial_seconds = secs(t);

        // Phase 2b: ILP, parallel cold (the tentpole speedup measurement).
        let t = Instant::now();
        let parallel = fresh(false).threads(threads).run_all();
        let parallel_seconds = secs(t);
        let parallel_same = same_runs(&serial, &parallel);

        // Phase 2c: the solver memo's determinism + hit-rate passes: a
        // serial populating pass and a serial warm pass, both memo-on and
        // schedule-cache-bypassed. Both must reproduce the memo-off
        // schedules exactly, and the warm pass's counter delta yields the
        // row's hit rate (its solves repeat the populating pass verbatim).
        memo::set_enabled(true);
        let memo_cold = fresh(false).threads(1).run_all();
        let memo_stats_before = memo::stats();
        let memo_warm = fresh(false).threads(1).run_all();
        let memo_stats_row = delta_stats(&memo_stats_before, &memo::stats());
        let memo_same = same_runs(&serial, &memo_cold) && same_runs(&serial, &memo_warm);
        let solver_hit_rate_pct = memo_stats_row.hit_rate_pct();

        // Phase 2d: ILP through the cache — a cold pass that populates it,
        // then a warm pass whose lookups skip the ILP.
        let t = Instant::now();
        let cached_cold = fresh(true).threads(threads).run_all();
        let cached_cold_seconds = secs(t);
        let t = Instant::now();
        let cached_warm = fresh(true).threads(threads).run_all();
        let cached_warm_seconds = secs(t);
        let cached_same = same_runs(&serial, &cached_cold) && same_runs(&serial, &cached_warm);

        // Optional oracle pass: every successfully scheduled model from
        // the serial baseline is re-verified by the independent legality
        // checker. Cached/parallel/memoized passes are already proven
        // byte-identical to `serial` by the determinism gate, so one
        // verification covers them all.
        let mut row_rejections = 0usize;
        if opts.check_legality {
            for (m, r) in &serial {
                if let Ok(opt) = r {
                    let report =
                        wf_verify::check_schedule(&b.scop, &ddg, &opt.transformed.schedule);
                    if !report.is_legal() {
                        row_rejections += 1;
                        eprintln!(
                            "bench-all: legality oracle rejected {}/{}: {}",
                            b.name,
                            m.name(),
                            report.summary()
                        );
                    }
                }
            }
        }
        legality_rejections += row_rejections;

        // Phase 3: codegen — build the execution plan for every model that
        // scheduled.
        let t = Instant::now();
        let mut plans = 0usize;
        for (_, r) in &serial {
            if let Ok(opt) = r {
                let _ = opt.plan(&b.scop);
                plans += 1;
            }
        }
        let codegen_seconds = secs(t);

        // Phase 4: the interpreting executor, scoped-spawn vs shared pool.
        // Wisefuse's plan runs over identical inputs three ways; the
        // timing pair is the scoped-vs-pooled column and every successful
        // run's output must equal the serial baseline byte-for-byte.
        let mut exec_scoped_seconds = 0.0;
        let mut exec_pooled_seconds = 0.0;
        let mut exec_ok = true;
        let wisefuse = serial
            .iter()
            .find(|(m, _)| *m == Model::Wisefuse)
            .and_then(|(_, r)| r.as_ref().ok());
        if let Some(opt) = wisefuse {
            let plan = opt.plan(&b.scop);
            let params: Vec<i128> = b
                .bench_params
                .iter()
                .map(|&p| p.min(EXEC_PARAM_CAP))
                .collect();
            let mut init = ProgramData::new(&b.scop, &params);
            init.init_random(2024);
            let run = |eopts: ExecOptions| -> (f64, Option<ProgramData>) {
                let mut data = init.clone();
                let t = Instant::now();
                let r = ExecContext::with_options(eopts).execute(
                    &b.scop,
                    &opt.transformed,
                    &plan,
                    &mut data,
                );
                (secs(t), r.ok().map(|()| data))
            };
            let (_, base) = run(ExecOptions::new());
            let (scoped_s, scoped) = run(ExecOptions::new().threads(threads).per_band_pool(true));
            let (pooled_s, pooled) = run(ExecOptions::new().threads(threads));
            exec_scoped_seconds = scoped_s;
            exec_pooled_seconds = pooled_s;
            // Under `WF_FAULT` a pass may Err (contained partition panic);
            // the batch rides on, and only a *successful* pass whose output
            // diverges from the serial baseline fails the gate.
            if let Some(expected) = &base {
                exec_ok = scoped.as_ref().is_none_or(|d| d == expected)
                    && pooled.as_ref().is_none_or(|d| d == expected);
            }
        }

        let row_deterministic =
            analysis_same && parallel_same && memo_same && cached_same && exec_ok;
        determinism_ok &= row_deterministic;
        tot_analysis_serial += analysis_serial_seconds;
        tot_analysis_parallel += analysis_parallel_seconds;
        tot_serial += serial_seconds;
        tot_parallel += parallel_seconds;
        tot_codegen += codegen_seconds;
        tot_exec_scoped += exec_scoped_seconds;
        tot_exec_pooled += exec_pooled_seconds;

        let models: Vec<Json> = serial
            .iter()
            .map(|(m, r)| match r {
                Ok(opt) => {
                    let mut fields = vec![
                        ("model", m.name().into()),
                        ("ok", true.into()),
                        ("partitions", opt.n_partitions().into()),
                        ("outer_parallel", opt.outer_parallel().into()),
                        ("strategy", opt.transformed.strategy.as_str().into()),
                    ];
                    // Only present when the run actually degraded, so a
                    // fault-free report stays byte-identical to older ones.
                    if let Some(reason) = &opt.degraded {
                        fields.push(("degraded", reason.as_str().into()));
                    }
                    Json::obj(fields)
                }
                Err(e) => Json::obj([
                    ("model", m.name().into()),
                    ("ok", false.into()),
                    ("error", e.to_string().into()),
                ]),
            })
            .collect();
        let mut row = Json::obj([
            ("name", b.name.into()),
            ("suite", b.suite.into()),
            ("statements", b.scop.n_statements().into()),
            ("analysis_serial_seconds", analysis_serial_seconds.into()),
            (
                "analysis_parallel_seconds",
                analysis_parallel_seconds.into(),
            ),
            (
                "analysis_speedup",
                (analysis_serial_seconds / analysis_parallel_seconds.max(1e-12)).into(),
            ),
            ("solver_hit_rate_pct", solver_hit_rate_pct.into()),
            ("ilp_serial_seconds", serial_seconds.into()),
            ("ilp_parallel_seconds", parallel_seconds.into()),
            (
                "ilp_speedup",
                (serial_seconds / parallel_seconds.max(1e-12)).into(),
            ),
            ("cache_cold_seconds", cached_cold_seconds.into()),
            ("cache_warm_seconds", cached_warm_seconds.into()),
            ("codegen_seconds", codegen_seconds.into()),
            ("codegen_plans", plans.into()),
            ("exec_scoped_seconds", exec_scoped_seconds.into()),
            ("exec_pooled_seconds", exec_pooled_seconds.into()),
            (
                "exec_speedup",
                (exec_scoped_seconds / exec_pooled_seconds.max(1e-12)).into(),
            ),
            ("exec_ok", exec_ok.into()),
            ("determinism_ok", row_deterministic.into()),
            ("models", Json::Arr(models)),
            // What this SCoP's passes cost the pipeline, as a registry
            // delta: ILP nodes/pivots, FM eliminations, cache traffic.
            ("metrics", obs::metrics().delta(&metrics_before).to_json()),
        ]);
        // Present only under --check-legality so default reports stay
        // byte-identical to those from older builds.
        if opts.check_legality {
            row.push("legality_rejections", row_rejections.into());
        }
        rows.push(row);
        expected.push((idx, serial));
    }

    // Cross-SCoP phase: replay every (SCoP, warm) job on the persistent
    // process-wide pool — the pool is reused across SCoPs and the schedule
    // cache is shared across models, so these hits must reproduce the
    // serial schedules verbatim.
    let shared: Arc<Vec<Benchmark>> = Arc::new(benchmarks);
    let t = Instant::now();
    let replays: Vec<(usize, RunSet)> =
        pool::global().map(expected.iter().map(|(i, _)| *i).collect(), move |i| {
            let b = &shared[i];
            (i, Optimizer::new(&b.scop).fallback().run_all())
        });
    let pool_seconds = secs(t);
    let pool_same = expected
        .iter()
        .zip(&replays)
        .all(|((ia, a), (ib, b))| ia == ib && same_runs(a, b));
    determinism_ok &= pool_same;

    let cache_stats = cache::stats();
    let memo_stats = memo::stats();
    let memo_run = delta_stats(&memo_before_all, &memo_stats);
    // Shard runs emit their own schema tag plus a `shard` block right
    // after `threads`; everything below it is laid out identically to
    // the consolidated report so the merge layer can pass rows through
    // verbatim and the stripped forms compare byte-for-byte.
    let mut report = Json::obj([(
        "schema",
        if opts.shard.is_some() {
            "bench-shard/v1"
        } else {
            "bench-all/v1"
        }
        .into(),
    )]);
    report.push("threads", threads.into());
    if let Some(spec) = opts.shard {
        report.push(
            "shard",
            Json::obj([
                ("index", spec.display_index().into()),
                ("count", spec.count.into()),
            ]),
        );
    }
    let mut tail = Json::obj([
        ("benchmarks", Json::Arr(rows)),
        (
            "totals",
            Json::obj([
                ("analysis_serial_seconds", tot_analysis_serial.into()),
                ("analysis_parallel_seconds", tot_analysis_parallel.into()),
                (
                    "analysis_speedup",
                    (tot_analysis_serial / tot_analysis_parallel.max(1e-12)).into(),
                ),
                ("solver_hit_rate_pct", memo_run.hit_rate_pct().into()),
                ("ilp_serial_seconds", tot_serial.into()),
                ("ilp_parallel_seconds", tot_parallel.into()),
                ("ilp_speedup", (tot_serial / tot_parallel.max(1e-12)).into()),
                ("codegen_seconds", tot_codegen.into()),
                ("exec_scoped_seconds", tot_exec_scoped.into()),
                ("exec_pooled_seconds", tot_exec_pooled.into()),
                (
                    "exec_speedup",
                    (tot_exec_scoped / tot_exec_pooled.max(1e-12)).into(),
                ),
                ("pool_replay_seconds", pool_seconds.into()),
            ]),
        ),
        ("cache", cache_stats.to_json()),
        ("solver_memo", memo_run.to_json()),
        ("metrics", obs::metrics().to_json()),
        ("determinism_ok", determinism_ok.into()),
    ]);
    if opts.check_legality {
        tail.push("legality_rejections", legality_rejections.into());
    }
    if let Json::Obj(fields) = tail {
        for (k, v) in fields {
            report.push(k, v);
        }
    }
    obs::set_enabled(prev_flags);
    BenchAllOutcome {
        report,
        determinism_ok,
        cache_stats,
        memo_stats,
        legality_rejections,
    }
}

/// Recursively drop run-to-run-variable fields (`*_seconds`, `*_speedup`,
/// the cache and solver-memo counters, the hit-rate percentages, and the
/// metrics snapshots) so two reports from identical inputs compare
/// byte-for-byte. This is the determinism contract `wfc bench-all --json`
/// advertises and CI enforces. (Metrics would in fact be deterministic
/// for a fixed build, but they grow with every new probe, which would
/// churn the goldens; the memo counters depend on what earlier runs left
/// in the process-wide memo.)
#[must_use]
pub fn strip_timings(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    !(k.ends_with("_seconds")
                        || k.ends_with("speedup")
                        || k == "cache"
                        || k == "metrics"
                        || k == "solver_memo"
                        || k == "solver_hit_rate_pct")
                })
                .map(|(k, v)| (k.clone(), strip_timings(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timings).collect()),
        other => other.clone(),
    }
}

/// One ILP-phase timing regression between two `bench-all` reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// The regressed phase field (`ilp_serial_seconds` or
    /// `ilp_parallel_seconds`).
    pub phase: &'static str,
    /// The phase's time in the previous report.
    pub before: f64,
    /// The phase's time in the new report.
    pub after: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.1}x ({:.4}s -> {:.4}s)",
            self.name,
            self.phase,
            self.after / self.before.max(1e-12),
            self.before,
            self.after
        )
    }
}

/// Diff the per-benchmark ILP-phase timings of a new report against the
/// previous run's `BENCH_all.json`: a phase regresses when it takes more
/// than `factor`× its previous time *and* lands above `min_seconds` — the
/// noise floor, because sub-millisecond phases double on scheduler jitter
/// alone. Benchmarks present in only one report are skipped (the catalog
/// changed; there is nothing comparable to flag).
#[must_use]
pub fn ilp_regressions(
    previous: &Json,
    new: &Json,
    factor: f64,
    min_seconds: f64,
) -> Vec<Regression> {
    let rows = |j: &Json| -> Vec<(String, f64, f64)> {
        j.get("benchmarks")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| {
                        let name = r.get("name")?.as_str()?.to_string();
                        let f = |k: &str| r.get(k).and_then(Json::as_f64);
                        Some((name, f("ilp_serial_seconds")?, f("ilp_parallel_seconds")?))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let old = rows(previous);
    let mut out = Vec::new();
    for (name, serial, parallel) in rows(new) {
        let Some((_, old_serial, old_parallel)) = old.iter().find(|(n, _, _)| *n == name) else {
            continue;
        };
        for (phase, before, after) in [
            ("ilp_serial_seconds", *old_serial, serial),
            ("ilp_parallel_seconds", *old_parallel, parallel),
        ] {
            if after > min_seconds && after > before * factor {
                out.push(Regression {
                    name: name.clone(),
                    phase,
                    before,
                    after,
                });
            }
        }
    }
    out
}
