//! Phase profiler for the optimization pipeline (development aid).
//!
//! Reports the analysis / ILP / codegen wall-clock split for one benchmark
//! under every fusion model, plus the schedule-cache effect: each model is
//! scheduled twice (cold, then warm) and the process-wide cache counters
//! are printed at the end. `profile_phases <name>` (default `tce`).
use std::time::Instant;
use wf_benchsuite::by_name;
use wf_deps::analyze;
use wf_wisefuse::{cache, Model, Optimizer};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tce".into());
    let b = by_name(&name).expect("benchmark");

    let t0 = Instant::now();
    let ddg = analyze(&b.scop);
    println!(
        "{name}: analysis {:?} ({} edges, {} rar)",
        t0.elapsed(),
        ddg.edges.len(),
        ddg.rar.len()
    );

    for model in Model::ALL {
        // Cold: bypass the cache so the ILP actually runs.
        let t1 = Instant::now();
        let cold = Optimizer::new(&b.scop)
            .with_ddg(ddg.clone())
            .cache_off()
            .model(model)
            .run();
        let ilp = t1.elapsed();
        match cold {
            Ok(opt) => {
                let t2 = Instant::now();
                let plan = opt.plan(&b.scop);
                let codegen = t2.elapsed();
                // Warm: same schedule out of the cache (primed here if the
                // process hasn't scheduled this SCoP yet).
                let mut facade = Optimizer::new(&b.scop).with_ddg(ddg.clone());
                let _ = facade.run_model(model);
                let t3 = Instant::now();
                let warm = facade.run_model(model).expect("cached re-run");
                let warm_t = t3.elapsed();
                assert_eq!(
                    warm.transformed, opt.transformed,
                    "{name}: {model:?} cache hit diverges from cold path"
                );
                println!(
                    "{name}: {:<9} ilp {ilp:>10.2?}  codegen {codegen:>10.2?}  warm {warm_t:>10.2?}  ({} dims, {} partitions, {} plan dims)",
                    model.name(),
                    opt.transformed.schedule.n_dims(),
                    opt.n_partitions(),
                    plan.dims.len(),
                );
            }
            Err(e) => println!("{name}: {:<9} FAILED after {ilp:?}: {e}", model.name()),
        }
    }

    let s = cache::stats();
    let total = s.hits + s.misses;
    let rate = if total == 0 {
        0.0
    } else {
        100.0 * s.hits as f64 / total as f64
    };
    println!(
        "{name}: cache {} hits / {} misses ({rate:.0}% hit rate), {} entries stored, {} evicted",
        s.hits, s.misses, s.stores, s.evictions
    );
}
