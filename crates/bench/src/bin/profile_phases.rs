//! Ad-hoc phase profiler for the optimization pipeline (development aid).
use std::time::Instant;
use wf_benchsuite::by_name;
use wf_deps::analyze;
use wf_schedule::{schedule_scop, PlutoConfig, Smartfuse};
use wf_wisefuse::Wisefuse;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tce".into());
    let b = by_name(&name).expect("benchmark");
    let t0 = Instant::now();
    let ddg = analyze(&b.scop);
    println!(
        "{name}: deps analysis {:?} ({} edges, {} rar)",
        t0.elapsed(),
        ddg.edges.len(),
        ddg.rar.len()
    );
    for (label, strat) in [
        ("wisefuse", &Wisefuse as &dyn wf_schedule::FusionStrategy),
        ("smartfuse", &Smartfuse),
    ] {
        let t1 = Instant::now();
        match schedule_scop(&b.scop, &ddg, strat, &PlutoConfig::default()) {
            Ok(t) => println!(
                "{name}: {label} schedule {:?} ({} dims, partitions {:?})",
                t1.elapsed(),
                t.schedule.n_dims(),
                t.partitions
            ),
            Err(e) => println!("{name}: {label} FAILED after {:?}: {e}", t1.elapsed()),
        }
    }
}
