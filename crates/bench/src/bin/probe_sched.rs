//! One-shot scheduling timer (development aid): prints per-model schedule
//! times for one benchmark.
use std::time::Instant;
use wf_benchsuite::by_name;
use wf_wisefuse::{optimize, Model};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bt".into());
    let b = by_name(&name).expect("benchmark");
    for model in Model::ALL {
        let t0 = Instant::now();
        let r = optimize(&b.scop, model);
        match r {
            Ok(o) => println!(
                "{name} {:<10} {:?} partitions={} outer_par={}",
                model.name(),
                t0.elapsed(),
                o.n_partitions(),
                o.outer_parallel()
            ),
            Err(e) => println!(
                "{name} {:<10} FAILED after {:?}: {e}",
                model.name(),
                t0.elapsed()
            ),
        }
    }
}
