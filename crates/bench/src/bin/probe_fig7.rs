//! One-benchmark Figure 7 row (development aid).
use wf_bench::measure_modeled_via;
use wf_benchsuite::by_name;
use wf_cachesim::perf::MachineModel;
use wf_wisefuse::{Model, Optimizer};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "applu".into());
    let machine = MachineModel::default();
    let b = by_name(&name).expect("benchmark");
    // One facade for all five models: dependence analysis runs once, and
    // each model's schedule comes from the process-wide cache on re-runs.
    let mut optimizer = Optimizer::new(&b.scop);
    let (_, icc) = measure_modeled_via(&mut optimizer, &b.bench_params, Model::Icc, &machine, 2024);
    let base = icc.modeled_seconds;
    print!("{:<10} {:>5} |", name, b.bench_params[0]);
    for model in Model::ALL {
        let t = if model == Model::Icc {
            base
        } else {
            measure_modeled_via(&mut optimizer, &b.bench_params, model, &machine, 2024)
                .1
                .modeled_seconds
        };
        print!(" {:>8.2}", base / t);
    }
    println!("   (icc wise smart nofuse maxfuse)");
}
