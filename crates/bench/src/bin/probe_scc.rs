fn main() {
    for name in ["gemsfdtd", "applu", "swim"] {
        let b = wf_benchsuite::by_name(name).unwrap();
        let d = wf_deps::analyze(&b.scop);
        let s = wf_deps::tarjan(&d);
        let n = s.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while p[r] != r {
                p[r] = p[p[r]];
                r = p[r];
            }
            r
        }
        for e in &d.edges {
            let (a, b2) = (s.scc_of[e.src], s.scc_of[e.dst]);
            if a != b2 {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b2));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
        let mut sizes = std::collections::HashMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            *sizes.entry(r).or_insert(0usize) += 1;
        }
        let mut sz: Vec<usize> = sizes.values().copied().collect();
        sz.sort_unstable_by(|a, b| b.cmp(a));
        println!("{name}: {n} SCCs, component sizes {sz:?}");
    }
}
