//! Shared helpers for the figure/table harnesses.

#![warn(missing_docs)]

pub mod benchall;
pub mod merge;
pub mod shard;

use std::path::PathBuf;
use std::time::{Duration, Instant};
use wf_cachesim::perf::{model_performance, MachineModel, PerfReport};
use wf_codegen::ExecPlan;
use wf_harness::json::Json;
use wf_harness::pool;
use wf_harness::report;
use wf_runtime::{ExecContext, ProgramData};
use wf_scop::Scop;
use wf_wisefuse::{plan_from_optimized, Model, Optimized, Optimizer};

/// One benchmark × model measurement.
pub struct Measurement {
    /// Model measured.
    pub model: Model,
    /// Optimization pipeline output.
    pub opt: Optimized,
    /// Wall-clock of the transformed execution.
    pub time: Duration,
    /// Wall-clock of scheduling itself.
    pub compile_time: Duration,
}

/// Run one benchmark under one model: schedule, plan, execute, time.
/// Output arrays are compared against `oracle` (when provided) to keep the
/// harness honest.
///
/// Thin wrapper over [`measure_via`]; per-model loops should build one
/// [`Optimizer`] and call [`measure_via`] so the dependence analysis is
/// shared across models instead of re-run per call.
pub fn measure(
    scop: &Scop,
    params: &[i128],
    model: Model,
    ctx: &ExecContext<'_>,
    init: &ProgramData,
    oracle: Option<&ProgramData>,
) -> Measurement {
    let _ = params;
    measure_via(&mut Optimizer::new(scop), model, ctx, init, oracle)
}

/// [`measure`] through an existing [`Optimizer`], sharing its cached
/// dependence analysis (and the process-wide schedule cache) across the
/// models of one SCoP.
pub fn measure_via(
    optimizer: &mut Optimizer<'_>,
    model: Model,
    ctx: &ExecContext<'_>,
    init: &ProgramData,
    oracle: Option<&ProgramData>,
) -> Measurement {
    let scop = optimizer.scop();
    let c0 = Instant::now();
    let opt = optimizer
        .run_model(model)
        .unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let compile_time = c0.elapsed();
    let mut data = init.clone();
    let t0 = Instant::now();
    ctx.execute(scop, &opt.transformed, &plan, &mut data)
        .unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let time = t0.elapsed();
    if let Some(o) = oracle {
        assert_eq!(
            data.max_abs_diff(o),
            0.0,
            "{}: {model:?} diverges from the baseline execution",
            scop.name
        );
    }
    Measurement {
        model,
        opt,
        time,
        compile_time,
    }
}

/// Plan + data for a model (used by harnesses that need the plan itself).
/// Wrapper over [`plan_and_data_via`]; see [`measure`] for when to prefer
/// the `_via` form.
pub fn plan_and_data(
    scop: &Scop,
    params: &[i128],
    model: Model,
    seed: u64,
) -> (Optimized, ExecPlan, ProgramData) {
    plan_and_data_via(&mut Optimizer::new(scop), params, model, seed)
}

/// [`plan_and_data`] through an existing [`Optimizer`] (shared analysis
/// across the models of one SCoP).
pub fn plan_and_data_via(
    optimizer: &mut Optimizer<'_>,
    params: &[i128],
    model: Model,
    seed: u64,
) -> (Optimized, ExecPlan, ProgramData) {
    let scop = optimizer.scop();
    let opt = optimizer
        .run_model(model)
        .unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let mut data = ProgramData::new(scop, params);
    data.init_random(seed);
    (opt, plan, data)
}

/// Geometric mean.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Number of worker threads used by the harnesses: the shared pool's size
/// (`WF_THREADS`, else available parallelism capped at the paper's 8
/// cores — parsed exactly once, at pool construction).
#[must_use]
pub fn harness_threads() -> usize {
    pool::global().n_threads()
}

/// Schedule + plan + instrumented serial run priced on the machine model.
/// This is what the Figure 7 harness reports: it makes both of wisefuse's
/// objectives (reuse, coarse-grained parallelism) visible regardless of how
/// many physical cores the benchmarking host has.
pub fn measure_modeled(
    scop: &Scop,
    params: &[i128],
    model: Model,
    machine: &MachineModel,
    seed: u64,
) -> (Optimized, PerfReport) {
    measure_modeled_via(&mut Optimizer::new(scop), params, model, machine, seed)
}

/// [`measure_modeled`] through an existing [`Optimizer`]: harness loops
/// that price several models of one SCoP share its cached dependence
/// analysis instead of re-running it per model.
pub fn measure_modeled_via(
    optimizer: &mut Optimizer<'_>,
    params: &[i128],
    model: Model,
    machine: &MachineModel,
    seed: u64,
) -> (Optimized, PerfReport) {
    let scop = optimizer.scop();
    let opt = optimizer
        .run_model(model)
        .unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let mut data = ProgramData::new(scop, params);
    data.init_random(seed);
    let report = model_performance(scop, &opt, &plan, &mut data, machine);
    (opt, report)
}

/// Accumulates one harness's results and writes `BENCH_<name>.json`.
///
/// Every figure-regeneration binary keeps its human-readable stdout story
/// and *additionally* funnels the numbers behind it through one of these,
/// so CI (and the paper-claims tests) can diff machine-readable results.
pub struct BenchReport {
    name: String,
    top: Json,
    rows: Vec<Json>,
}

impl BenchReport {
    /// Start a report; `name` becomes the `BENCH_<name>.json` file stem.
    #[must_use]
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            top: Json::obj([]),
            rows: Vec::new(),
        }
    }

    /// Set a top-level field (benchmark name, problem size, core count…).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        self.top.push(key, value.into());
    }

    /// Append one result row.
    pub fn row(&mut self, fields: impl IntoIterator<Item = (&'static str, Json)>) {
        self.rows.push(Json::obj(fields));
    }

    /// Write `BENCH_<name>.json` and return its path.
    pub fn write(mut self) -> PathBuf {
        self.top.push("rows", Json::Arr(self.rows));
        report::write_named(&self.name, &self.top)
    }
}
