//! Shared helpers for the figure/table harnesses.

#![warn(missing_docs)]

use std::time::{Duration, Instant};
use wf_cachesim::perf::{model_performance, MachineModel, PerfReport};
use wf_codegen::{plan_from_optimized, ExecPlan};
use wf_runtime::{execute_plan, ExecOptions, ProgramData};
use wf_scop::Scop;
use wf_wisefuse::{optimize, Model, Optimized};

/// One benchmark × model measurement.
pub struct Measurement {
    /// Model measured.
    pub model: Model,
    /// Optimization pipeline output.
    pub opt: Optimized,
    /// Wall-clock of the transformed execution.
    pub time: Duration,
    /// Wall-clock of scheduling itself.
    pub compile_time: Duration,
}

/// Run one benchmark under one model: schedule, plan, execute, time.
/// Output arrays are compared against `oracle` (when provided) to keep the
/// harness honest.
pub fn measure(
    scop: &Scop,
    params: &[i128],
    model: Model,
    threads: usize,
    init: &ProgramData,
    oracle: Option<&ProgramData>,
) -> Measurement {
    let c0 = Instant::now();
    let opt = optimize(scop, model).unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let compile_time = c0.elapsed();
    let mut data = init.clone();
    let t0 = Instant::now();
    execute_plan(scop, &opt.transformed, &plan, &mut data, &ExecOptions { threads }, None);
    let time = t0.elapsed();
    if let Some(o) = oracle {
        assert_eq!(
            data.max_abs_diff(o),
            0.0,
            "{}: {model:?} diverges from the baseline execution",
            scop.name
        );
    }
    let _ = params;
    Measurement { model, opt, time, compile_time }
}

/// Plan + data for a model (used by harnesses that need the plan itself).
pub fn plan_and_data(
    scop: &Scop,
    params: &[i128],
    model: Model,
    seed: u64,
) -> (Optimized, ExecPlan, ProgramData) {
    let opt = optimize(scop, model).unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let mut data = ProgramData::new(scop, params);
    data.init_random(seed);
    (opt, plan, data)
}

/// Geometric mean.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Number of worker threads used by the harnesses (the paper uses 8 cores).
#[must_use]
pub fn harness_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get()).min(8)
}

/// Schedule + plan + instrumented serial run priced on the machine model.
/// This is what the Figure 7 harness reports: it makes both of wisefuse's
/// objectives (reuse, coarse-grained parallelism) visible regardless of how
/// many physical cores the benchmarking host has.
pub fn measure_modeled(
    scop: &Scop,
    params: &[i128],
    model: Model,
    machine: &MachineModel,
    seed: u64,
) -> (Optimized, PerfReport) {
    let opt = optimize(scop, model).unwrap_or_else(|e| panic!("{}: {model:?}: {e}", scop.name));
    let plan = plan_from_optimized(scop, &opt);
    let mut data = ProgramData::new(scop, params);
    data.init_random(seed);
    let report = model_performance(scop, &opt, &plan, &mut data, machine);
    (opt, report)
}
