//! Figure 5: pre-fusion schedules for swim — Algorithm 1 vs PLuTo's DFS —
//! and the fused code each produces.
//!
//! ```bash
//! cargo bench -p wf-bench --bench fig5_swim_schedule
//! ```

use wf_bench::BenchReport;
use wf_benchsuite::by_name;
use wf_deps::{analyze, tarjan};
use wf_harness::json::Json;
use wf_schedule::fusion::dfs_order;
use wf_wisefuse::prefusion::algorithm1;
use wf_wisefuse::prelude::*;

fn main() {
    let bench = by_name("swim").expect("swim in catalog");
    let scop = &bench.scop;
    let ddg = analyze(scop);
    let sccs = tarjan(&ddg);
    let depths: Vec<usize> = scop.statements.iter().map(|s| s.depth).collect();

    println!("== Figure 5(a)/(c): SCC ids under both pre-fusion schedules ==\n");
    let wise = algorithm1(scop, &ddg, &sccs);
    let dfs = dfs_order(&ddg, &sccs);
    let pos_in =
        |order: &[usize], stmt: usize| order.iter().position(|&c| c == sccs.scc_of[stmt]).unwrap();
    println!(
        "{:<6} {:>4} {:>14} {:>12}",
        "stmt", "dim", "wisefuse[id]", "pluto[id]"
    );
    for (s, st) in scop.statements.iter().enumerate() {
        println!(
            "{:<6} {:>4} {:>14} {:>12}",
            st.name,
            st.depth,
            pos_in(&wise, s),
            pos_in(&dfs, s)
        );
    }
    let switches = |order: &[usize]| {
        order
            .windows(2)
            .filter(|w| sccs.dimensionality(w[0], &depths) != sccs.dimensionality(w[1], &depths))
            .count()
    };
    println!(
        "\ndimensionality switches along the order: wisefuse {}, pluto-DFS {}",
        switches(&wise),
        switches(&dfs)
    );

    let mut report = BenchReport::new("fig5_swim_schedule");
    report.set("bench", "swim");
    report.set("switches_wisefuse", switches(&wise));
    report.set("switches_pluto_dfs", switches(&dfs));
    // The DDG above seeds the facade; scheduling reuses it per model.
    let mut optimizer = Optimizer::new(scop).with_ddg(ddg.clone());
    for model in [Model::Wisefuse, Model::Smartfuse] {
        let opt = optimizer.run_model(model).expect("schedulable");
        let parts = &opt.transformed.partitions;
        let n_parts = parts.iter().max().unwrap() + 1;
        let mut groups: std::collections::BTreeMap<usize, Vec<&str>> = Default::default();
        for (s, &p) in parts.iter().enumerate() {
            groups
                .entry(p)
                .or_default()
                .push(scop.statements[s].name.as_str());
        }
        println!(
            "\n== Figure 5({}): {} fused code — {} partitions, outer parallel: {} ==",
            if model == Model::Wisefuse { 'b' } else { 'd' },
            model.name(),
            n_parts,
            opt.outer_parallel(),
        );
        for (p, members) in &groups {
            println!("  loop nest {p}: {members:?}");
        }
        let biggest = groups.values().map(Vec::len).max().unwrap();
        println!("  largest fused nest: {biggest} statements");
        report.row([
            ("model", Json::str(model.name())),
            ("partitions", Json::from(n_parts)),
            ("outer_parallel", Json::Bool(opt.outer_parallel())),
            ("largest_fused_nest", Json::from(biggest)),
        ]);
        if model == Model::Wisefuse {
            let plan = plan_from_optimized(scop, &opt);
            let code = render_plan(scop, &plan);
            // Print just the head of the (long) transformed program.
            let head: String = code.lines().take(24).collect::<Vec<_>>().join("\n");
            println!("\n{head}\n  ...");
        }
    }
    let path = report.write();
    println!("\nresults: {}", path.display());
}
