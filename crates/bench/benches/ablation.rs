//! Ablation study: what each wisefuse ingredient contributes, on the
//! modeled 8-core machine.
//!
//! Variants:
//! * full wisefuse (Algorithm 1 + Algorithm 2),
//! * `no-rar`  — Algorithm 1 blind to input dependences,
//! * `no-alg2` — Algorithm 1 without the parallelism-restoring cuts,
//! * `dfs+alg2`— PLuTo's DFS order with Algorithm 2 bolted on,
//! * smartfuse — the PLuTo baseline (neither ingredient).
//!
//! ```bash
//! cargo bench -p wf-bench --bench ablation
//! ```

use wf_bench::BenchReport;
use wf_benchsuite::catalog;
use wf_cachesim::perf::{model_performance, MachineModel};
use wf_codegen::plan::build_plan;
use wf_deps::analyze;
use wf_harness::json::Json;
use wf_runtime::ProgramData;
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, FusionStrategy, PlutoConfig, Smartfuse};
use wf_wisefuse::ablation::{Algorithm2Only, NoAlgorithm2, NoRar};
use wf_wisefuse::pipeline::Optimized;
use wf_wisefuse::{Model, Wisefuse};

fn main() {
    let machine = MachineModel::default();
    let variants: Vec<(&str, &dyn FusionStrategy)> = vec![
        ("wisefuse", &Wisefuse),
        ("no-rar", &NoRar),
        ("no-alg2", &NoAlgorithm2),
        ("dfs+alg2", &Algorithm2Only),
        ("smartfuse", &Smartfuse),
    ];
    println!(
        "== ablation: normalized modeled performance (baseline = full wisefuse), {} cores ==\n",
        machine.cores
    );
    print!("{:<10}", "benchmark");
    for (name, _) in &variants {
        print!(" {name:>10}");
    }
    println!("   (1.00 = wisefuse; lower = slower)");
    let mut report = BenchReport::new("ablation");
    report.set("cores", machine.cores);
    report.set("baseline", "wisefuse");
    for b in catalog() {
        // The ablation story concentrates on the programs where the
        // heuristics matter; small single-nest kernels tie by construction.
        if !matches!(b.name, "swim" | "gemsfdtd" | "applu" | "advect") {
            continue;
        }
        let ddg = analyze(&b.scop);
        let mut base = None;
        let mut row: Vec<(&'static str, Json)> = vec![("bench", Json::str(b.name))];
        print!("{:<10}", b.name);
        for (vname, strat) in &variants {
            let t = schedule_scop(&b.scop, &ddg, *strat, &PlutoConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let p = props::analyze(&b.scop, &ddg, &t);
            let par: Vec<Vec<bool>> = p
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|x| matches!(x, Some(LoopProp::Parallel)))
                        .collect()
                })
                .collect();
            let plan = build_plan(&b.scop, &t, par);
            // Wrap into the pipeline's result shape for the model.
            let opt = Optimized {
                model: Model::Wisefuse,
                ddg: ddg.clone(),
                transformed: t,
                props: p,
                degraded: None,
            };
            let mut data = ProgramData::new(&b.scop, &b.bench_params);
            data.init_random(31);
            let r = model_performance(&b.scop, &opt, &plan, &mut data, &machine);
            let secs = r.modeled_seconds;
            let base_secs = *base.get_or_insert(secs);
            row.push((*vname, Json::Num(base_secs / secs)));
            print!(" {:>10.2}", base_secs / secs);
        }
        report.row(row);
        println!();
    }
    let path = report.write();
    println!("results: {}", path.display());
    println!("\nExpected shape: no-alg2 collapses on advect/swim-class programs (outer");
    println!("loop pipelined); no-rar and dfs+alg2 lose fusion reuse on swim/gemsfdtd/applu.");
}
