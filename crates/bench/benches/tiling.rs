//! Tiling ablation: the substrate's PLuTo-style composition of fusion with
//! rectangular tiling of permutable bands, measured with the cache
//! simulator on matmul (the canonical tiling workload).
//!
//! ```bash
//! cargo bench -p wf-bench --bench tiling
//! ```

use wf_bench::BenchReport;
use wf_cachesim::{CacheConfig, CacheSim};
use wf_codegen::plan::build_plan;
use wf_codegen::tiling::{build_tiled_plan, default_tiles};
use wf_deps::analyze;
use wf_harness::json::Json;
use wf_runtime::{ExecContext, ProgramData};
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, Maxfuse, PlutoConfig};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};

fn matmul() -> Scop {
    let mut b = ScopBuilder::new("mm", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let bb = b.array("B", &[Aff::param(0), Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 3, &[0, 0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .bounds(2, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0), Aff::iter(1)])
        .read(c, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(2)])
        .read(bb, &[Aff::iter(1), Aff::iter(2)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    b.build()
}

fn main() {
    let scop = matmul();
    let params = [96i128];
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Maxfuse, &PlutoConfig::default()).unwrap();
    let p = props::analyze(&scop, &ddg, &t);
    let par: Vec<Vec<bool>> = p
        .iter()
        .map(|row| {
            row.iter()
                .map(|x| matches!(x, Some(LoopProp::Parallel)))
                .collect()
        })
        .collect();

    // A small L1-only cache makes the locality effect visible at this size.
    let cfg = CacheConfig::tiny(16 * 1024, 8, 64);
    println!("== matmul N = {} through a 16 KiB 8-way L1 ==\n", params[0]);
    println!("{:<12} {:>14} {:>12}", "variant", "L1 misses", "miss/op");

    let mut report = BenchReport::new("tiling");
    report.set("bench", "matmul");
    report.set("n", params[0]);
    let run = |label: &str, plan: &wf_codegen::ExecPlan, report: &mut BenchReport| {
        let mut data = ProgramData::new(&scop, &params);
        data.init_random(1);
        let mut sim = CacheSim::new(&scop, &params, &cfg);
        ExecContext::serial()
            .execute_observed(&scop, &t, plan, &mut data, &mut sim)
            .expect("serial observed execution");
        let ops = (params[0] * params[0] * params[0]) as f64;
        println!(
            "{:<12} {:>14} {:>12.4}",
            label,
            sim.stats[0].misses,
            sim.stats[0].misses as f64 / ops
        );
        report.row([
            ("variant", Json::str(label)),
            ("l1_misses", Json::from(sim.stats[0].misses)),
            ("misses_per_op", Json::Num(sim.stats[0].misses as f64 / ops)),
        ]);
    };

    run("untiled", &build_plan(&scop, &t, par.clone()), &mut report);
    for size in [8i128, 16, 32] {
        let tiles = default_tiles(&t, size);
        let plan = build_tiled_plan(&scop, &t, par.clone(), &tiles);
        run(&format!("tile {size}"), &plan, &mut report);
    }
    println!("\nExpected shape: tiled variants cut L1 misses by an integer factor once");
    println!("a tile's working set fits in cache (classical blocked matmul result).");
    let path = report.write();
    println!("results: {}", path.display());
}
