//! Figure 8: fusion partitioning of the gemsfdtd UPML-update region under
//! icc, smartfuse and wisefuse — SCC dimensionalities and the partition
//! number each SCC lands in.
//!
//! ```bash
//! cargo bench -p wf-bench --bench fig8_gemsfdtd_partitions
//! ```

use wf_bench::BenchReport;
use wf_benchsuite::by_name;
use wf_deps::{analyze, tarjan};
use wf_harness::json::Json;
use wf_wisefuse::{Model, Optimizer};

fn main() {
    let bench = by_name("gemsfdtd").expect("gemsfdtd in catalog");
    let scop = &bench.scop;
    let ddg = analyze(scop);
    let sccs = tarjan(&ddg);
    let depths: Vec<usize> = scop.statements.iter().map(|s| s.depth).collect();

    // Reuse the DDG computed for the SCC table across all three models.
    let mut optimizer = Optimizer::new(scop).with_ddg(ddg.clone());
    let models = [Model::Icc, Model::Smartfuse, Model::Wisefuse];
    let parts: Vec<Vec<usize>> = models
        .iter()
        .map(|&m| {
            optimizer
                .run_model(m)
                .expect("schedulable")
                .transformed
                .partitions
        })
        .collect();

    println!("== Figure 8: partition number per SCC (gemsfdtd UPML update) ==\n");
    println!(
        "{:<6} {:>4} | {:>6} {:>10} {:>9}",
        "SCC", "dim", "icc", "smartfuse", "wisefuse"
    );
    for scc in 0..sccs.len() {
        let rep = sccs.members[scc][0];
        print!(
            "{:<6} {:>4} |",
            format!("#{scc}"),
            sccs.dimensionality(scc, &depths)
        );
        for p in &parts {
            print!(" {:>9}", p[rep]);
        }
        println!("   ({})", scop.statements[rep].name);
    }
    println!();
    let mut report = BenchReport::new("fig8_gemsfdtd_partitions");
    report.set("bench", "gemsfdtd");
    report.set("sccs", sccs.len());
    for (m, p) in models.iter().zip(&parts) {
        let n = p.iter().max().unwrap() + 1;
        println!("{:<10} -> {n} partitions", m.name());
        report.row([
            ("model", Json::str(m.name())),
            ("partitions", Json::from(n)),
            (
                "partition_of_scc",
                Json::Arr(
                    (0..sccs.len())
                        .map(|scc| Json::from(p[sccs.members[scc][0]]))
                        .collect(),
                ),
            ),
        ]);
    }
    let path = report.write();
    println!("results: {}", path.display());
    println!("\nExpected shape (paper): wisefuse minimizes the number of partitions by");
    println!("ordering same-dimensionality SCCs (with reuse, incl. input deps) next to");
    println!("each other; smartfuse's DFS interleaves them; icc fuses nothing.");
}
