//! Figures 1 & 3: the gemver kernel — original code, the statement-wise
//! multi-dimensional affine transform of the fused program, and the
//! fused/interchanged code (legal fusion of S1 and S2 requires
//! interchanging one nest).
//!
//! ```bash
//! cargo bench -p wf-bench --bench fig1_gemver
//! ```

use wf_bench::{measure_modeled_via, BenchReport};
use wf_benchsuite::by_name;
use wf_cachesim::perf::MachineModel;
use wf_harness::json::Json;
use wf_scop::pretty;
use wf_wisefuse::prelude::*;

fn main() {
    let bench = by_name("gemver").expect("gemver in catalog");
    let scop = &bench.scop;
    println!(
        "== Figure 1(a): original gemver ==\n{}",
        pretty::render_original(scop)
    );

    let mut optimizer = Optimizer::new(scop);
    let opt = optimizer.run_model(Model::Wisefuse).expect("schedulable");
    let names: Vec<String> = scop.statements.iter().map(|s| s.name.clone()).collect();
    println!("== Figure 3: statement-wise multi-dimensional affine transform ==");
    print!("{}", opt.transformed.schedule.render(&names));
    println!(
        "\npartitions: {:?}   outer parallel: {}",
        opt.transformed.partitions,
        opt.outer_parallel()
    );

    let plan = plan_from_optimized(scop, &opt);
    println!(
        "\n== Figure 1(c): transformed gemver ==\n{}",
        render_plan(scop, &plan)
    );

    // The §5.3 observation: at reference sizes, nofuse beats the fusing
    // models on gemver (fusion costs S1/S2 spatial locality), while icc
    // trails because it cannot outer-parallelize S2's nest.
    let machine = MachineModel::default();
    println!(
        "== gemver modeled time, N = {}, {} virtual cores ==",
        bench.bench_params[0], machine.cores
    );
    let mut report = BenchReport::new("fig1_gemver");
    report.set("bench", "gemver");
    report.set("n", bench.bench_params[0]);
    report.set("cores", machine.cores);
    report.set("wisefuse_partitions", opt.n_partitions());
    report.set("wisefuse_outer_parallel", opt.outer_parallel());
    for model in Model::ALL {
        let (_, r) = measure_modeled_via(&mut optimizer, &bench.bench_params, model, &machine, 3);
        println!("  {:<10} {:>10.4}s", model.name(), r.modeled_seconds);
        report.row([
            ("model", Json::str(model.name())),
            ("modeled_seconds", Json::Num(r.modeled_seconds)),
        ]);
    }
    let path = report.write();
    println!("\nresults: {}", path.display());
}
