//! Criterion micro-benchmarks of the compiler passes themselves: exact LP,
//! ILP, Fourier–Motzkin, dependence analysis, SCC computation, Algorithm 1,
//! and end-to-end scheduling per fusion model.

use wf_benchsuite::{by_name, catalog};
use wf_deps::{analyze, kosaraju, tarjan};
use wf_harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_linalg::Rat;
use wf_polyhedra::{fm, solve_ilp, solve_lp, ConstraintSystem, Sense};
use wf_wisefuse::prefusion::algorithm1;
use wf_wisefuse::{optimize, Model};

fn lp_fixture(n: usize) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new(n);
    for v in 0..n {
        cs.add_lower_bound(v, 0);
        cs.add_upper_bound(v, 100);
    }
    // Coupling rows.
    for v in 0..n.saturating_sub(1) {
        let mut row = vec![0i128; n + 1];
        row[v] = 1;
        row[v + 1] = -2;
        row[n] = 50;
        cs.add_ge0(row);
    }
    cs
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers");
    g.sample_size(20);
    for n in [4usize, 8, 16] {
        let cs = lp_fixture(n);
        let obj: Vec<Rat> = (0..n).map(|v| Rat::int((v % 3) as i128 - 1)).collect();
        g.bench_with_input(BenchmarkId::new("simplex", n), &cs, |b, cs| {
            b.iter(|| solve_lp(cs, &obj, Sense::Min));
        });
        let iobj: Vec<i128> = (0..n).map(|v| (v % 3) as i128 - 1).collect();
        g.bench_with_input(BenchmarkId::new("ilp", n), &cs, |b, cs| {
            b.iter(|| solve_ilp(cs, &iobj, Sense::Min).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("fm_eliminate", n), &cs, |b, cs| {
            let vars: Vec<usize> = (n / 2..n).collect();
            b.iter(|| fm::eliminate_vars_greedy(cs, &vars, 60));
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    for name in ["gemver", "advect", "gemsfdtd"] {
        let scop = by_name(name).unwrap().scop;
        g.bench_function(BenchmarkId::new("dependence_analysis", name), |b| {
            b.iter(|| analyze(&scop));
        });
        let ddg = analyze(&scop);
        g.bench_function(BenchmarkId::new("scc_tarjan", name), |b| {
            b.iter(|| tarjan(&ddg));
        });
        g.bench_function(BenchmarkId::new("scc_kosaraju", name), |b| {
            b.iter(|| kosaraju(&ddg));
        });
        let sccs = tarjan(&ddg);
        g.bench_function(BenchmarkId::new("algorithm1", name), |b| {
            b.iter(|| algorithm1(&scop, &ddg, &sccs));
        });
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    g.sample_size(10);
    for b_entry in catalog() {
        // The deep kernels take tens of seconds per schedule; sampling them
        // repeatedly under Criterion is not informative. The figure
        // harnesses time them once each.
        if !matches!(b_entry.name, "gemver" | "advect" | "wupwise") {
            continue;
        }
        g.bench_function(BenchmarkId::new("wisefuse", b_entry.name), |b| {
            b.iter(|| optimize(&b_entry.scop, Model::Wisefuse).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_analysis, bench_scheduling);
criterion_main!(benches);
