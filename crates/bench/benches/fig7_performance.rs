//! Figure 7: normalized performance of the five fusion models on all ten
//! benchmarks, plus the geometric mean.
//!
//! The paper reports wall-clock speedup over the Intel compiler baseline on
//! an 8-core Xeon E5-2650. The benchmarking host here may have any number of
//! cores (possibly one), so the harness prices each transformed program on a
//! deterministic machine model instead: exact per-partition cache behaviour
//! (E5-2650 geometry) + parallel/wavefront/serial execution on 8 virtual
//! cores — see `wf_cachesim::perf`. Interpreted work and simulated caches
//! are identical across models, so the *normalized* numbers reproduce the
//! figure's shape: who wins, by roughly what factor, where the models tie.
//!
//! ```bash
//! cargo bench -p wf-bench --bench fig7_performance
//! ```

use wf_bench::{geomean, measure_modeled_via, BenchReport};
use wf_benchsuite::catalog;
use wf_cachesim::perf::MachineModel;
use wf_harness::json::Json;
use wf_wisefuse::{Model, Optimizer};

fn main() {
    let machine = MachineModel::default();
    println!(
        "== Figure 7: normalized performance (baseline = icc model), {} virtual cores ==\n",
        machine.cores
    );
    println!(
        "{:<10} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "N", "icc", "wisefuse", "smartfuse", "nofuse", "maxfuse"
    );
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); Model::ALL.len()];
    let mut report = BenchReport::new("fig7_performance");
    report.set("cores", machine.cores);
    report.set("baseline", "icc");
    for b in catalog() {
        // One facade per benchmark: the five models share one dependence
        // analysis of the SCoP.
        let mut optimizer = Optimizer::new(&b.scop);
        let (_, icc) =
            measure_modeled_via(&mut optimizer, &b.bench_params, Model::Icc, &machine, 2024);
        let base = icc.modeled_seconds;
        print!("{:<10} {:>6} |", b.name, b.bench_params[0]);
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let mut row: Vec<(&'static str, Json)> = vec![
            ("bench", Json::str(b.name)),
            ("n", Json::from(b.bench_params[0])),
        ];
        for (m, model) in Model::ALL.iter().enumerate() {
            let t = if *model == Model::Icc {
                base
            } else {
                measure_modeled_via(&mut optimizer, &b.bench_params, *model, &machine, 2024)
                    .1
                    .modeled_seconds
            };
            let normalized = base / t;
            per_model[m].push(normalized);
            row.push((model.name(), Json::Num(normalized)));
            print!(" {normalized:>9.2}");
            let _ = std::io::stdout().flush();
        }
        report.row(row);
        println!();
    }
    print!("{:<10} {:>6} |", "GM", "");
    let mut gm_row: Vec<(&'static str, Json)> = vec![("bench", Json::str("geomean"))];
    for (m, xs) in Model::ALL.iter().zip(&per_model) {
        let g = geomean(xs);
        gm_row.push((m.name(), Json::Num(g)));
        print!(" {g:>9.2}");
    }
    report.row(gm_row);
    println!();
    let path = report.write();
    println!("results: {}", path.display());
    println!("\nExpected shape (paper): wisefuse >= smartfuse everywhere; large gaps on");
    println!("the five large programs (paper: 1.7x-7.2x); wisefuse ~ smartfuse on lu/tce;");
    println!("nofuse competitive on gemver; GM(wisefuse) > 1 vs the icc baseline.");
}
