//! Figures 4 & 6: the advect kernel under maximal fusion (shifted,
//! pipelined — Fig. 4c) vs wisefuse's Algorithm 2 (S4 distributed, outer
//! loops parallel — Fig. 6), with the statement-wise transforms and the
//! generated codes.
//!
//! ```bash
//! cargo bench -p wf-bench --bench fig6_advect
//! ```

use wf_bench::{measure_modeled_via, BenchReport};
use wf_benchsuite::by_name;
use wf_cachesim::perf::MachineModel;
use wf_harness::json::Json;
use wf_wisefuse::prelude::*;

fn main() {
    let bench = by_name("advect").expect("advect in catalog");
    let scop = &bench.scop;
    let names: Vec<String> = scop.statements.iter().map(|s| s.name.clone()).collect();

    let mut optimizer = Optimizer::new(scop);
    for (fig, model) in [
        ("4(c) maxfuse", Model::Maxfuse),
        ("6 wisefuse", Model::Wisefuse),
    ] {
        let opt = optimizer.run_model(model).expect("schedulable");
        println!("== Figure {fig} ==");
        print!("{}", opt.transformed.schedule.render(&names));
        println!(
            "partitions: {:?}   outer parallel: {}\n",
            opt.transformed.partitions,
            opt.outer_parallel()
        );
        let plan = plan_from_optimized(scop, &opt);
        println!("{}", render_plan(scop, &plan));
    }

    // Modeled comparison at the bench size (8 virtual cores).
    let machine = MachineModel::default();
    println!(
        "== advect modeled time, N = {}, {} virtual cores ==",
        bench.bench_params[0], machine.cores
    );
    let mut report = BenchReport::new("fig6_advect");
    report.set("bench", "advect");
    report.set("n", bench.bench_params[0]);
    report.set("cores", machine.cores);
    for model in Model::ALL {
        let (opt, r) = measure_modeled_via(&mut optimizer, &bench.bench_params, model, &machine, 7);
        println!(
            "  {:<10} {:>10.4}s   (partitions {}, outer parallel {})",
            model.name(),
            r.modeled_seconds,
            opt.n_partitions(),
            opt.outer_parallel()
        );
        report.row([
            ("model", Json::str(model.name())),
            ("modeled_seconds", Json::Num(r.modeled_seconds)),
            ("partitions", Json::from(opt.n_partitions())),
            ("outer_parallel", Json::Bool(opt.outer_parallel())),
        ]);
    }
    let path = report.write();
    println!("\nresults: {}", path.display());
}
