//! The iterative-compilation comparison (paper §6): exhaustively enumerate
//! every legal fusion partitioning of a *small* kernel (advect, 4 SCCs),
//! schedule and price each on the machine model, and place wisefuse's
//! single static choice within that space. Then show why the same search is
//! hopeless for the large programs ("the iterative compilation framework
//! fails to build the search space for even moderately sized programs").
//!
//! ```bash
//! cargo bench -p wf-bench --bench iterative_search
//! ```

use wf_bench::BenchReport;
use wf_benchsuite::by_name;
use wf_cachesim::perf::{model_performance, MachineModel};
use wf_codegen::plan::build_plan;
use wf_deps::enumerate::{linear_extensions, ln_count_fusion_partitionings};
use wf_deps::{analyze, tarjan, Ddg, SccInfo};
use wf_harness::json::Json;
use wf_runtime::ProgramData;
use wf_schedule::fusion::failure_boundary;
use wf_schedule::pluto::SchedState;
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, FusionStrategy, PlutoConfig};
use wf_scop::Scop;
use wf_wisefuse::cache::{self, Fingerprint};
use wf_wisefuse::pipeline::Optimized;
use wf_wisefuse::{Model, Optimizer};

/// A fully specified candidate: SCC order + cut boundaries.
struct FixedPartitioning {
    order: Vec<usize>,
    boundaries: Vec<usize>,
}

impl FusionStrategy for FixedPartitioning {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn pre_fusion_order(&self, _: &Scop, _: &Ddg, _: &SccInfo) -> Vec<usize> {
        self.order.clone()
    }
    fn initial_cuts(&self, _: &SchedState<'_>) -> Vec<usize> {
        self.boundaries.clone()
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        // Legality may force extra cuts beyond the candidate's spec; such a
        // candidate degenerates into a finer partitioning (counted as-is).
        failure_boundary(state, failed)
    }
}

fn main() {
    let machine = MachineModel::default();
    let bench = by_name("advect").expect("advect");
    let scop = &bench.scop;
    let params = &bench.bench_params;
    let ddg = analyze(scop);
    let sccs = tarjan(&ddg);
    let n = sccs.len();

    // Precedence edges between SCCs.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for e in &ddg.edges {
        let (a, b) = (sccs.scc_of[e.src], sccs.scc_of[e.dst]);
        if a != b && !edges.contains(&(a, b)) {
            edges.push((a, b));
        }
    }
    let orders = linear_extensions(n, &edges, 10_000);
    let total = orders.len() << (n - 1);
    println!(
        "advect: {} SCCs, {} legal orderings x {} cut placements = {} candidates\n",
        n,
        orders.len(),
        1usize << (n - 1),
        total
    );

    let mut results: Vec<(f64, String)> = Vec::new();
    for order in &orders {
        for cutmask in 0..(1usize << (n - 1)) {
            let boundaries: Vec<usize> = (1..n).filter(|b| cutmask & (1 << (b - 1)) != 0).collect();
            let strat = FixedPartitioning {
                order: order.clone(),
                boundaries,
            };
            let Ok(t) = schedule_scop(scop, &ddg, &strat, &PlutoConfig::default()) else {
                continue;
            };
            let p = props::analyze(scop, &ddg, &t);
            let par: Vec<Vec<bool>> = p
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|x| matches!(x, Some(LoopProp::Parallel)))
                        .collect()
                })
                .collect();
            let plan = build_plan(scop, &t, par);
            let partitions = t.partitions.clone();
            let opt = Optimized {
                model: Model::Wisefuse,
                ddg: ddg.clone(),
                transformed: t,
                props: p,
                degraded: None,
            };
            let mut data = ProgramData::new(scop, params);
            data.init_lcg(1);
            let r = model_performance(scop, &opt, &plan, &mut data, &machine);
            results.push((
                r.modeled_seconds,
                format!(
                    "order {order:?} cuts {cutmask:0width$b} -> partitions {partitions:?}",
                    width = n - 1
                ),
            ));
        }
    }
    results.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!(
        "evaluated {} schedulable candidates; best five:",
        results.len()
    );
    for (secs, desc) in results.iter().take(5) {
        println!("  {secs:.4}s  {desc}");
    }
    println!("  ...");
    for (secs, desc) in results.iter().rev().take(2).rev() {
        println!("  {secs:.4}s  {desc}");
    }

    // The exhaustive loop already computed the DDG; the facade reuses it
    // for wisefuse's own static choice.
    let wise = Optimizer::new(scop)
        .model(Model::Wisefuse)
        .with_ddg(ddg.clone())
        .run()
        .expect("schedulable");
    let plan = wf_wisefuse::plan_from_optimized(scop, &wise);
    let mut data = ProgramData::new(scop, params);
    data.init_lcg(1);
    let wr = model_performance(scop, &wise, &plan, &mut data, &machine);
    let best = results.first().map_or(f64::INFINITY, |r| r.0);
    println!(
        "\nwisefuse's static choice: {:.4}s = {:.1}% of the exhaustive optimum ({:.4}s)",
        wr.modeled_seconds,
        best / wr.modeled_seconds * 100.0,
        best
    );
    let mut report = BenchReport::new("iterative_search");
    report.set("bench", "advect");
    report.set("candidates", total);
    report.set("schedulable", results.len());
    report.set("best_modeled_seconds", best);
    report.set("wisefuse_modeled_seconds", wr.modeled_seconds);
    report.set("wisefuse_pct_of_optimum", best / wr.modeled_seconds * 100.0);

    // == cache-aware config sweep: incremental fingerprints ==
    // A second search axis varies only the engine tunables, so every
    // candidate's schedule-cache key shares the SCoP digest: one base
    // fingerprint is computed up front and each candidate derives its key
    // through `Fingerprint::with_config`, which rehashes the seven config
    // knobs and never re-renders the SCoP's canonical text. Two passes
    // over the sweep measure the per-search hit rate (the second pass
    // must be answered entirely from the cache) and the solver-memo
    // traffic underneath.
    println!("\n== cache-aware config sweep (incremental fingerprints) ==");
    let sweep: Vec<PlutoConfig> = (1..=6)
        .map(|w| PlutoConfig {
            max_fusion_width: w,
            ..PlutoConfig::default()
        })
        .collect();
    let t0 = std::time::Instant::now();
    let base = Fingerprint::new(scop, Model::Wisefuse, &PlutoConfig::default());
    let base_fp_seconds = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let keys: Vec<Fingerprint> = sweep.iter().map(|cfg| base.with_config(cfg)).collect();
    let delta_fp_seconds = t0.elapsed().as_secs_f64();
    let memo_before = wf_polyhedra::memo::stats();
    let mut pass_hit_rates = Vec::new();
    for pass in 0..2 {
        let (mut hits, mut lookups) = (0u64, 0u64);
        for (cfg, fp) in sweep.iter().zip(&keys) {
            lookups += 1;
            let cached = cache::global().lock().expect("schedule cache").lookup(fp);
            if cached.is_some() {
                hits += 1;
                continue;
            }
            if let Ok(t) = schedule_scop(scop, &ddg, &wf_wisefuse::Wisefuse, cfg) {
                cache::global()
                    .lock()
                    .expect("schedule cache")
                    .insert(*fp, &t);
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = hits as f64 / lookups.max(1) as f64 * 100.0;
        println!("  pass {pass}: {lookups} candidates, {hits} cache hits ({rate:.0}% hit rate)");
        pass_hit_rates.push(rate);
    }
    let memo_sweep = wf_polyhedra::memo::stats();
    let solver_lookups = memo_sweep.lookups() - memo_before.lookups();
    let solver_hits = memo_sweep.hits - memo_before.hits;
    println!(
        "  fingerprints: base {base_fp_seconds:.6}s once, {} deltas {delta_fp_seconds:.6}s total \
         (no SCoP re-render per candidate)",
        keys.len()
    );
    println!("  solver memo under the sweep: {solver_hits}/{solver_lookups} hits");
    report.set("sweep_candidates", sweep.len());
    report.set("sweep_cold_hit_rate_pct", pass_hit_rates[0]);
    report.set("sweep_warm_hit_rate_pct", pass_hit_rates[1]);
    report.set("sweep_base_fingerprint_seconds", base_fp_seconds);
    report.set("sweep_delta_fingerprint_seconds", delta_fp_seconds);
    report.set("sweep_solver_memo_hits", solver_hits);
    report.set("sweep_solver_memo_lookups", solver_lookups);
    assert!(
        pass_hit_rates[1] >= 100.0,
        "warm sweep pass must be answered entirely from the schedule cache"
    );

    // And the §6 point: this search does not scale.
    println!("\n== why iterative search fails on the large programs (paper §6) ==");
    for name in ["gemsfdtd", "applu", "swim"] {
        let b = by_name(name).unwrap();
        let d = analyze(&b.scop);
        let s = tarjan(&d);
        let mut es: Vec<(usize, usize)> = Vec::new();
        for e in &d.edges {
            let (x, y) = (s.scc_of[e.src], s.scc_of[e.dst]);
            if x != y && !es.contains(&(x, y)) {
                es.push((x, y));
            }
        }
        let (ln_count, exact) = ln_count_fusion_partitionings(s.len(), &es);
        let log10_count = ln_count / std::f64::consts::LN_10;
        let secs_per_candidate = 2.0f64; // optimistic: schedule + model once
        let log10_years = log10_count + (secs_per_candidate / (3600.0 * 24.0 * 365.0)).log10();
        let qual = if exact { "" } else { ">= " };
        println!(
            "  {name:<9} {:>2} SCCs -> {qual}~10^{log10_count:.1} legal partitionings \
             ({qual}~10^{log10_years:.1} years at 2 s each)",
            s.len()
        );
        report.row([
            ("bench", Json::str(name)),
            ("sccs", Json::from(s.len())),
            ("log10_partitionings", Json::Num(log10_count)),
            ("exact", Json::Bool(exact)),
        ]);
    }
    let path = report.write();
    println!("results: {}", path.display());
}
