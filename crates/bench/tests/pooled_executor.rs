//! Pooled-executor guarantees on the real benchmark catalog:
//!
//! 1. **Determinism** — for every catalog kernel, the wisefuse schedule
//!    executed through the shared pool produces byte-identical arrays at
//!    1, 2, 4, and 8 threads, and through a dedicated per-band pool.
//! 2. **Panic containment** — a fault injected into one partition
//!    (`runtime.partition`) surfaces as a typed [`WfError::JobPanic`]
//!    while sibling partitions' results stay intact: after the failed
//!    run every element is either its initial value (panicked chunk) or
//!    its fully-computed value (surviving chunks).
//!
//! Fault injection is process-global, so everything lives in one `#[test]`
//! to keep the deterministic runs out of the fault climate.

use std::panic;
use wf_benchsuite::catalog;
use wf_harness::fault::{self, FaultPlan};
use wf_runtime::{execute_reference, ExecContext, ExecOptions, ProgramData, WfError};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::plan_from_optimized;
use wf_wisefuse::{optimize, Model};

/// One embarrassingly parallel statement: `C[i] = 2 * A[i]`. Wisefuse
/// keeps the band outer-parallel, so the executor chunks it across
/// workers — the shape we need to observe containment per chunk.
fn stream_scop() -> Scop {
    let mut b = ScopBuilder::new("stream", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Const(2.0), Expr::Load(0)))
        .done();
    b.build()
}

#[test]
fn pooled_executor_is_deterministic_and_contains_panics() {
    fault::disable();

    // Part 1: catalog-wide thread-count determinism.
    for b in catalog() {
        let opt = optimize(&b.scop, Model::Wisefuse)
            .unwrap_or_else(|e| panic!("{}: wisefuse failed to schedule: {e}", b.name));
        let plan = plan_from_optimized(&b.scop, &opt);
        let mut init = ProgramData::new(&b.scop, &b.test_params);
        init.init_random(2024);

        let mut base = init.clone();
        ExecContext::serial()
            .execute(&b.scop, &opt.transformed, &plan, &mut base)
            .unwrap_or_else(|e| panic!("{}: serial execution failed: {e}", b.name));

        for threads in [2usize, 4, 8] {
            let mut data = init.clone();
            ExecContext::with_threads(threads)
                .execute(&b.scop, &opt.transformed, &plan, &mut data)
                .unwrap_or_else(|e| panic!("{}: {threads}-thread execution failed: {e}", b.name));
            assert!(
                data == base,
                "{}: {threads} threads diverge from the serial run",
                b.name
            );
        }

        // A dedicated per-band pool must use the same chunk map as the
        // shared pool — identical bytes again.
        let mut data = init.clone();
        ExecContext::with_options(ExecOptions::new().threads(4).per_band_pool(true))
            .execute(&b.scop, &opt.transformed, &plan, &mut data)
            .unwrap_or_else(|e| panic!("{}: per-band-pool execution failed: {e}", b.name));
        assert!(
            data == base,
            "{}: per-band pool diverges from the serial run",
            b.name
        );
    }

    // Part 2: panic containment on a parallel band.
    let scop = stream_scop();
    let params = [64i128];
    let opt = optimize(&scop, Model::Wisefuse).expect("stream schedules");
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &params);
    init.init_random(7);

    let mut expected = init.clone();
    ExecContext::with_threads(4)
        .execute(&scop, &opt.transformed, &plan, &mut expected)
        .expect("fault-free pooled run");
    let mut oracle = init.clone();
    execute_reference(&scop, &mut oracle);
    assert_eq!(expected.max_abs_diff(&oracle), 0.0, "stream kernel sanity");

    // Silence the per-panic backtrace spew from injected partition
    // panics; restored before the test returns.
    let quiet = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let (mut oks, mut contained) = (0u32, 0u32);
    for seed in 0..40u64 {
        fault::install(FaultPlan {
            site: Some("runtime.partition".to_string()),
            ..FaultPlan::all(seed, 300)
        });
        let mut data = init.clone();
        match ExecContext::with_threads(4).execute(&scop, &opt.transformed, &plan, &mut data) {
            Ok(()) => {
                oks += 1;
                assert!(
                    data == expected,
                    "seed {seed}: an un-faulted run diverged from the expected output"
                );
            }
            Err(e) => {
                contained += 1;
                assert!(
                    matches!(e, WfError::JobPanic { .. }),
                    "seed {seed}: injected partition panic surfaced as {e:?}"
                );
                // Sibling chunks stay intact: a partition panics before
                // touching data, so every element must be either its
                // initial value or its fully-computed value.
                for (t_got, (t_init, t_want)) in data
                    .arrays
                    .iter()
                    .zip(init.arrays.iter().zip(&expected.arrays))
                {
                    for (k, v) in t_got.data.iter().enumerate() {
                        assert!(
                            v.to_bits() == t_init.data[k].to_bits()
                                || v.to_bits() == t_want.data[k].to_bits(),
                            "seed {seed}: element {k} is neither initial nor final \
                             (a panicked chunk corrupted a sibling's range)"
                        );
                    }
                }
            }
        }
    }
    panic::set_hook(quiet);
    assert!(oks > 0, "no injected run ever completed at a 30% rate");
    assert!(
        contained > 0,
        "no partition panic was ever injected/contained"
    );

    // Faults off => the machinery leaves no residue.
    fault::disable();
    let mut replay = init.clone();
    ExecContext::with_threads(4)
        .execute(&scop, &opt.transformed, &plan, &mut replay)
        .expect("fault-free replay");
    assert!(replay == expected, "fault-free replay diverged");
}
