//! The sharding acceptance gate: running the catalog slice-by-slice and
//! folding the `bench-shard/v1` reports must reproduce the
//! single-process consolidated report **byte-for-byte** once timings are
//! stripped — at 2 and at 4 shards, including shards that get an empty
//! slice. Runs against a cheap two-benchmark slice so the tripled ILP
//! sweep stays test-suite friendly.

use wf_bench::benchall::{run, strip_timings, BenchAllOptions};
use wf_bench::merge::merge_reports;
use wf_bench::shard::{plan_shards, ShardSpec};
use wf_harness::json::Json;

fn opts(shard: Option<ShardSpec>) -> BenchAllOptions {
    BenchAllOptions {
        threads: 2,
        filter: "advect,wupwise".into(),
        check_legality: false,
        shard,
    }
}

#[test]
fn merged_shards_reproduce_the_unsharded_report_byte_for_byte() {
    let single = run(&opts(None)).report;
    assert_eq!(
        single.get("schema").and_then(Json::as_str),
        Some("bench-all/v1")
    );
    let want = strip_timings(&single).render();

    // 2 shards split the two benchmarks one each; 4 shards additionally
    // exercise empty slices (plan_shards(2, 4) leaves two shards bare).
    for count in [2usize, 4] {
        let mut row_total = 0;
        let reports: Vec<Json> = (0..count)
            .map(|index| {
                let outcome = run(&opts(Some(ShardSpec { index, count })));
                let r = outcome.report;
                assert_eq!(
                    r.get("schema").and_then(Json::as_str),
                    Some("bench-shard/v1"),
                    "shard {index}/{count} schema"
                );
                let rows = r.get("benchmarks").and_then(Json::as_arr).expect("rows");
                assert_eq!(
                    rows.len(),
                    plan_shards(2, count)[index].len(),
                    "shard {index}/{count} row count must follow the plan"
                );
                row_total += rows.len();
                r
            })
            .collect();
        assert_eq!(row_total, 2, "shards must cover the filtered catalog");
        let merged = merge_reports(&reports).expect("merge");
        assert_eq!(
            strip_timings(&merged).render(),
            want,
            "merged {count}-shard report diverges from the single-process run"
        );
    }
}
