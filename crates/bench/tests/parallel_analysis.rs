//! Properties of the pool-parallel dependence analysis and the solver
//! memo layer underneath it:
//!
//! 1. **Catalog-wide DDG identity** — [`wf_deps::try_analyze`] at 2, 4,
//!    and 8 workers must produce a [`Ddg`](wf_deps::Ddg) byte-identical
//!    (full structural equality, polyhedra included) to the serial
//!    [`wf_deps::analyze`], for every benchmark in the suite. The merge
//!    is in pair-index order, so worker count must be unobservable.
//! 2. **Memoized solver answers equal cold answers** — on seeded random
//!    constraint systems, repeated [`try_ilp_feasible`] /
//!    [`lexmin_budgeted`] calls (answered by the memo) must equal each
//!    other *and* a post-[`memo::clear`] cold re-solve.

use wf_benchsuite::catalog;
use wf_deps::{analyze, try_analyze};
use wf_harness::prelude::*;
use wf_polyhedra::memo;
use wf_polyhedra::{lexmin_budgeted, try_ilp_feasible, ConstraintSystem, IlpBudget};

#[test]
fn parallel_analysis_is_byte_identical_across_thread_counts() {
    for b in catalog() {
        let serial = analyze(&b.scop);
        for threads in [2, 4, 8] {
            let parallel = try_analyze(&b.scop, threads)
                .unwrap_or_else(|e| panic!("{}: try_analyze({threads}) failed: {e}", b.name));
            assert_eq!(
                serial, parallel,
                "{}: DDG from {threads}-worker analysis diverges from serial",
                b.name
            );
        }
    }
}

#[test]
fn parallel_analysis_serial_shortcircuit_matches() {
    // threads <= 1 must take the inline serial path and agree too.
    let b = &catalog()[0];
    let serial = analyze(&b.scop);
    assert_eq!(serial, try_analyze(&b.scop, 1).expect("serial path"));
    assert_eq!(serial, try_analyze(&b.scop, 0).expect("serial path"));
}

/// A random 2-variable system that is always bounded (a box intersected
/// with one arbitrary extra inequality), so branch-and-bound terminates;
/// feasibility is *not* guaranteed, which is the point — empty verdicts
/// must memoize correctly too.
fn boxed_system(hx: i128, hy: i128, extra: (i128, i128, i128)) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new(2);
    cs.add_ge0(vec![1, 0, 0]); // x >= 0
    cs.add_ge0(vec![-1, 0, hx]); // x <= hx
    cs.add_ge0(vec![0, 1, 0]); // y >= 0
    cs.add_ge0(vec![0, -1, hy]); // y <= hy
    let (a, b, c) = extra;
    cs.add_ge0(vec![a, b, c]);
    cs
}

props! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn memoized_feasibility_equals_cold(
        hx in 0i128..6,
        hy in 0i128..6,
        extra in (-3i128..4, -3i128..4, -6i128..7),
    ) {
        let cs = boxed_system(hx, hy, extra);
        let budget = IlpBudget::default();
        let first = try_ilp_feasible(&cs, &budget);
        let second = try_ilp_feasible(&cs, &budget);
        prop_assert_eq!(&first, &second, "repeated (memoized) answers diverge");
        memo::clear();
        let cold = try_ilp_feasible(&cs, &budget);
        prop_assert_eq!(&first, &cold, "memoized answer diverges from cold re-solve");
    }

    #[test]
    fn memoized_lexmin_equals_cold(
        hx in 0i128..6,
        hy in 0i128..6,
        extra in (-3i128..4, -3i128..4, -6i128..7),
    ) {
        let cs = boxed_system(hx, hy, extra);
        let budget = IlpBudget::default();
        let objectives = [vec![1, 0], vec![0, 1]];
        let first = lexmin_budgeted(&cs, &objectives, &budget);
        let second = lexmin_budgeted(&cs, &objectives, &budget);
        prop_assert_eq!(&first, &second, "repeated (memoized) lexmin diverges");
        memo::clear();
        let cold = lexmin_budgeted(&cs, &objectives, &budget);
        prop_assert_eq!(&first, &cold, "memoized lexmin diverges from cold re-solve");
    }
}

#[test]
fn repeated_solves_hit_the_memo() {
    // A system unlikely to collide with the property tests' samples.
    let cs = boxed_system(17, 23, (2, -1, 5));
    let budget = IlpBudget::default();
    let warmup = try_ilp_feasible(&cs, &budget).expect("in budget");
    let before = memo::stats();
    let again = try_ilp_feasible(&cs, &budget).expect("in budget");
    let after = memo::stats();
    assert_eq!(warmup, again);
    assert!(
        after.hits > before.hits,
        "second identical solve must be a memo hit ({before:?} -> {after:?})"
    );
}
