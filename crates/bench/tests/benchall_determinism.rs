//! End-to-end determinism contract of the `bench-all` batch driver: the
//! parallel, cached, and pool-replayed scheduling passes must reproduce
//! the serial schedules exactly, and two whole runs must emit identical
//! reports once the timing fields are stripped. Runs against a cheap
//! catalog slice so the double ILP sweep stays test-suite friendly.

use wf_bench::benchall::{run, strip_timings, BenchAllOptions};
use wf_harness::json::Json;

#[test]
fn benchall_is_deterministic_and_warm_runs_hit_the_cache() {
    let opts = BenchAllOptions {
        threads: 3,
        filter: "advect".into(),
        ..BenchAllOptions::default()
    };
    let first = run(&opts);
    assert!(
        first.determinism_ok,
        "parallel/cached schedules diverged from serial"
    );

    // Report shape: one benchmark row carrying all five models and the
    // three phase timings.
    let r = &first.report;
    assert_eq!(r.get("schema").and_then(Json::as_str), Some("bench-all/v1"));
    assert_eq!(r.get("threads").and_then(Json::as_i128), Some(3));
    let rows = r.get("benchmarks").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.get("name").and_then(Json::as_str), Some("advect"));
    for phase in [
        "analysis_serial_seconds",
        "analysis_parallel_seconds",
        "analysis_speedup",
        "solver_hit_rate_pct",
        "ilp_serial_seconds",
        "ilp_parallel_seconds",
        "cache_warm_seconds",
        "codegen_seconds",
        "exec_scoped_seconds",
        "exec_pooled_seconds",
    ] {
        assert!(
            row.get(phase)
                .and_then(Json::as_f64)
                .is_some_and(|s| s >= 0.0),
            "missing phase timing {phase}"
        );
    }
    // The memo warm pass repeats the populating pass's solves verbatim,
    // so the row's solver hit rate must be strictly positive.
    assert!(
        row.get("solver_hit_rate_pct")
            .and_then(Json::as_f64)
            .is_some_and(|p| p > 0.0),
        "memo warm pass produced no solver hits"
    );
    assert_eq!(
        row.get("exec_ok").and_then(Json::as_bool),
        Some(true),
        "executor scoped/pooled outputs diverged from the serial baseline"
    );
    let models = row.get("models").and_then(Json::as_arr).expect("models");
    assert_eq!(models.len(), 5, "one row per fusion model");

    // A second identical run must hit the now-warm process cache and
    // produce a byte-identical report modulo timings.
    let second = run(&opts);
    assert!(second.determinism_ok);
    assert!(
        second.cache_stats.hits > first.cache_stats.hits,
        "second run produced no cache hits ({:?})",
        second.cache_stats
    );
    assert_eq!(
        strip_timings(&first.report).render(),
        strip_timings(&second.report).render(),
        "reports differ beyond timing fields"
    );
}
