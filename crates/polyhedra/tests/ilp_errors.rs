//! Regression tests for the typed ILP error surface: unbounded
//! lexicographic objectives and exhausted solver budgets must come back as
//! `Err(IlpError)`, never as panics — the scheduler's graceful-degradation
//! path depends on it.

use wf_harness::WfError;
use wf_polyhedra::{
    lexmin, lexmin_budgeted, solve_ilp_budgeted, try_ilp_feasible, ConstraintSystem, IlpBudget,
    IlpError, Sense,
};

/// `min x` over `2x >= 1` (fractional LP optimum, forces branching) with
/// `x <= 10` so the search is finite.
fn fractional_system() -> ConstraintSystem {
    let mut cs = ConstraintSystem::new(1);
    cs.add_ge0(vec![2, -1]);
    cs.add_upper_bound(0, 10);
    cs
}

#[test]
fn lexmin_unbounded_objective_is_error_not_panic() {
    // No constraints at all: min x is unbounded below. This used to panic.
    let cs = ConstraintSystem::new(1);
    assert_eq!(
        lexmin(&cs, &[vec![1]]),
        Err(IlpError::Unbounded { site: "lexmin" })
    );
}

#[test]
fn lexmin_unbounded_second_objective_is_error() {
    // First objective bounded, second unbounded: x in [0,1], y free below.
    let mut cs = ConstraintSystem::new(2);
    cs.add_lower_bound(0, 0);
    cs.add_upper_bound(0, 1);
    assert_eq!(
        lexmin(&cs, &[vec![1, 0], vec![0, 1]]),
        Err(IlpError::Unbounded { site: "lexmin" })
    );
}

#[test]
fn node_budget_exhaustion_is_typed_error() {
    let cs = fractional_system();
    // One node is not enough to branch to integrality.
    let r = solve_ilp_budgeted(&cs, &[1], Sense::Min, &IlpBudget::nodes(1));
    assert_eq!(r, Err(IlpError::NodeBudget { limit: 1 }));
    // lexmin_budgeted propagates it.
    assert_eq!(
        lexmin_budgeted(&cs, &[vec![1]], &IlpBudget::nodes(1)),
        Err(IlpError::NodeBudget { limit: 1 })
    );
}

#[test]
fn pivot_budget_exhaustion_is_typed_error() {
    let cs = fractional_system();
    let budget = IlpBudget {
        max_pivots: 1,
        ..IlpBudget::default()
    };
    let r = solve_ilp_budgeted(&cs, &[1], Sense::Min, &budget);
    assert_eq!(r, Err(IlpError::PivotBudget { limit: 1 }));
}

#[test]
fn cell_budget_exhaustion_is_typed_error() {
    let cs = fractional_system();
    // A one-cell limit dies inside the very first LP — the check lives in
    // the simplex loop itself, so even a single giant solve cannot blow
    // past the budget between branch-and-bound nodes.
    let budget = IlpBudget {
        max_cells: 1,
        ..IlpBudget::default()
    };
    let r = solve_ilp_budgeted(&cs, &[1], Sense::Min, &budget);
    assert_eq!(r, Err(IlpError::CellBudget { limit: 1 }));
    assert_eq!(
        lexmin_budgeted(&cs, &[vec![1]], &budget),
        Err(IlpError::CellBudget { limit: 1 })
    );
    let cell: WfError = IlpError::CellBudget { limit: 1 }.into();
    assert!(matches!(cell, WfError::Budget { .. }));
    assert!(cell.is_degradable());
    assert_eq!(cell.exit_code(), 4);
}

#[test]
fn feasibility_budget_error_is_typed() {
    // 1/3 <= x <= 2/3: integrally empty, needs branching to prove it.
    let mut cs = ConstraintSystem::new(1);
    cs.add_ge0(vec![3, -1]);
    cs.add_ge0(vec![-3, 2]);
    assert_eq!(
        try_ilp_feasible(&cs, &IlpBudget::nodes(1)),
        Err(IlpError::NodeBudget { limit: 1 })
    );
    // With a real budget the verdict is a clean "no point".
    assert_eq!(try_ilp_feasible(&cs, &IlpBudget::default()), Ok(None));
}

#[test]
fn default_budget_solves_normal_systems() {
    let cs = fractional_system();
    let r = solve_ilp_budgeted(&cs, &[1], Sense::Min, &IlpBudget::default()).unwrap();
    assert_eq!(r.point(), Some(&[1i128][..]));
}

#[test]
fn ilp_errors_map_to_wf_error_taxonomy() {
    let budget: WfError = IlpError::NodeBudget { limit: 7 }.into();
    assert!(matches!(budget, WfError::Budget { .. }));
    assert_eq!(budget.exit_code(), 4);
    let unb: WfError = IlpError::Unbounded { site: "lexmin" }.into();
    assert!(matches!(unb, WfError::Unbounded { .. }));
    assert_eq!(unb.exit_code(), 8);
    let timeout: WfError = IlpError::Timeout { ms: 5 }.into();
    assert!(timeout.is_degradable());
}
