//! Exact two-phase rational simplex.
//!
//! All variables of the input [`ConstraintSystem`] are *free* (they may take
//! negative values); internally each is split into a difference of two
//! non-negative variables. Bland's pivoting rule guarantees termination
//! (no cycling) at the cost of speed — fine for the small systems produced
//! by the scheduler.
//!
//! No floating point is used anywhere: infeasibility / unboundedness /
//! optimality verdicts are exact, which the legality analysis depends on.

use crate::constraint::{ConstraintKind, ConstraintSystem};
use wf_linalg::Rat;

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Result of an LP solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The constraint system has no rational solution.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// An optimal vertex was found.
    Optimal {
        /// Optimal objective value.
        value: Rat,
        /// A point attaining it (one per original variable).
        point: Vec<Rat>,
    },
    /// The cell-update limit passed to [`solve_lp_measured`] was exhausted
    /// mid-solve; no verdict. Only produced under a finite limit — plain
    /// [`solve_lp`] / [`solve_lp_counted`] never return this.
    Exhausted,
}

impl LpResult {
    /// The optimal value, if any.
    #[must_use]
    pub fn value(&self) -> Option<Rat> {
        match self {
            LpResult::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The optimal point, if any.
    #[must_use]
    pub fn point(&self) -> Option<&[Rat]> {
        match self {
            LpResult::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }
}

/// Dense simplex tableau in standard equality form `T y = rhs`, `y >= 0`.
struct Tableau {
    /// `rows x cols` constraint coefficients.
    t: Vec<Vec<Rat>>,
    /// Right-hand sides (kept non-negative at basic feasible points).
    rhs: Vec<Rat>,
    /// Reduced-cost row.
    z: Vec<Rat>,
    /// Negative of current objective value.
    zval: Rat,
    /// Basic variable per row.
    basis: Vec<usize>,
    cols: usize,
    /// Total pivots performed over the tableau's lifetime (both phases);
    /// the ILP's pivot budget reads this through [`solve_lp_counted`].
    n_pivots: u64,
    /// Total tableau *cell updates* over the lifetime: each pivot costs
    /// `(rows + 1) * cols` whether or not individual entries short-circuit
    /// on zero, so this is a deterministic, machine-independent measure of
    /// arithmetic work. Raw pivot counts hide a factor of the tableau area
    /// — a pivot on a 300x700 exact-rational tableau is ~1000x a pivot on
    /// a 20x60 one — and the ILP's work budget needs the honest number.
    n_cells: u64,
    /// Abort the solve once `n_cells` exceeds this (checked per pivot, so a
    /// single runaway LP cannot overshoot by more than one pivot's area).
    /// `u64::MAX` = unlimited.
    cell_limit: u64,
}

/// Outcome of a [`Tableau::run`] phase.
#[derive(PartialEq, Eq)]
enum RunOutcome {
    Optimal,
    Unbounded,
    Exhausted,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        self.n_pivots += 1;
        self.n_cells += (self.t.len() as u64 + 1) * self.cols as u64;
        let piv = self.t[row][col];
        debug_assert!(!piv.is_zero());
        let inv = piv.recip();
        for j in 0..self.cols {
            let scaled = self.t[row][j] * inv;
            self.t[row][j] = scaled;
        }
        let scaled_rhs = self.rhs[row] * inv;
        self.rhs[row] = scaled_rhs;
        for i in 0..self.t.len() {
            if i == row {
                continue;
            }
            let f = self.t[i][col];
            if f.is_zero() {
                continue;
            }
            for j in 0..self.cols {
                let delta = f * self.t[row][j];
                self.t[i][j] -= delta;
            }
            let dr = f * self.rhs[row];
            self.rhs[i] -= dr;
        }
        let zf = self.z[col];
        if !zf.is_zero() {
            for j in 0..self.cols {
                let delta = zf * self.t[row][j];
                self.z[j] -= delta;
            }
            let dz = zf * self.rhs[row];
            self.zval -= dz;
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations (minimization). Uses Dantzig's rule (most
    /// negative reduced cost) for speed, switching permanently to Bland's
    /// rule after a degeneracy budget to guarantee termination.
    fn run(&mut self, allowed_cols: usize) -> RunOutcome {
        // After this many pivots, assume we might be cycling and fall back
        // to Bland's anti-cycling rule.
        let bland_after = 40 + 6 * (self.t.len() + allowed_cols);
        let mut pivots = 0usize;
        loop {
            if self.n_cells > self.cell_limit {
                return RunOutcome::Exhausted;
            }
            let col = if pivots < bland_after {
                // Dantzig: most negative reduced cost.
                let mut best: Option<(Rat, usize)> = None;
                for j in 0..allowed_cols {
                    if self.z[j].signum() < 0 {
                        match &best {
                            Some((v, _)) if *v <= self.z[j] => {}
                            _ => best = Some((self.z[j], j)),
                        }
                    }
                }
                best.map(|(_, j)| j)
            } else {
                // Bland: smallest eligible index.
                (0..allowed_cols).find(|&j| self.z[j].signum() < 0)
            };
            let Some(col) = col else {
                return RunOutcome::Optimal;
            };
            // Ratio test; Bland tie-break on smallest basis variable.
            let mut best: Option<(Rat, usize, usize)> = None; // (ratio, basisvar, row)
            for i in 0..self.t.len() {
                if self.t[i][col].signum() > 0 {
                    let ratio = self.rhs[i] / self.t[i][col];
                    let key = (ratio, self.basis[i]);
                    match &best {
                        Some((r, bv, _)) if (*r, *bv) <= key => {}
                        _ => best = Some((key.0, key.1, i)),
                    }
                }
            }
            let Some((_, _, row)) = best else {
                return RunOutcome::Unbounded;
            };
            self.pivot(row, col);
            pivots += 1;
        }
    }

    /// Recompute the reduced-cost row for objective `costs` given the current
    /// basis.
    fn set_objective(&mut self, costs: &[Rat]) {
        self.z = costs.to_vec();
        self.zval = Rat::ZERO;
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb.is_zero() {
                continue;
            }
            for j in 0..self.cols {
                let delta = cb * self.t[i][j];
                self.z[j] -= delta;
            }
            let dz = cb * self.rhs[i];
            self.zval -= dz;
        }
    }
}

/// Solve a linear program over the (free) variables of `cs`.
///
/// `objective` has one entry per variable of `cs` (constant terms in the
/// objective are the caller's business).
#[must_use]
pub fn solve_lp(cs: &ConstraintSystem, objective: &[Rat], sense: Sense) -> LpResult {
    let mut pivots = 0u64;
    solve_lp_counted(cs, objective, sense, &mut pivots)
}

/// [`solve_lp`], additionally accumulating the number of simplex pivots
/// performed into `pivots` (the ILP's branch-and-bound loop uses this to
/// enforce its pivot budget across nodes).
#[must_use]
pub fn solve_lp_counted(
    cs: &ConstraintSystem,
    objective: &[Rat],
    sense: Sense,
    pivots: &mut u64,
) -> LpResult {
    let mut cells = 0u64;
    solve_lp_measured(cs, objective, sense, pivots, &mut cells, u64::MAX)
}

/// [`solve_lp_counted`], additionally accumulating tableau *cell updates*
/// (pivots weighted by tableau area) into `cells` and aborting with
/// [`LpResult::Exhausted`] once this solve's own cell count exceeds
/// `cell_limit`. Pivot counts alone under-report work by the tableau area —
/// the ILP's cell budget uses this to bound arithmetic effort
/// deterministically across machines, *inside* the solve rather than only
/// between branch-and-bound nodes (a single LP can dwarf everything else).
#[must_use]
pub fn solve_lp_measured(
    cs: &ConstraintSystem,
    objective: &[Rat],
    sense: Sense,
    pivots: &mut u64,
    cells: &mut u64,
    cell_limit: u64,
) -> LpResult {
    assert_eq!(objective.len(), cs.n_vars, "objective arity mismatch");
    let n = cs.n_vars;
    let m = cs.constraints.len();

    // Column layout: [p_0..p_{n-1} | q_0..q_{n-1} | slacks | artificials]
    let n_slack = cs
        .constraints
        .iter()
        .filter(|c| c.kind == ConstraintKind::Ineq)
        .count();
    let n_struct = 2 * n + n_slack;
    let cols = n_struct + m; // one artificial per row
    let mut t = vec![vec![Rat::ZERO; cols]; m];
    let mut rhs = vec![Rat::ZERO; m];
    let mut slack_idx = 0;
    for (i, c) in cs.constraints.iter().enumerate() {
        // a·x + k >= 0  =>  a·p - a·q - s = -k
        let mut b = Rat::int(-c.coeffs[n]);
        let mut sign = Rat::ONE;
        if b.signum() < 0 {
            sign = -Rat::ONE;
            b = -b;
        }
        for v in 0..n {
            let a = Rat::int(c.coeffs[v]) * sign;
            t[i][v] = a;
            t[i][n + v] = -a;
        }
        if c.kind == ConstraintKind::Ineq {
            t[i][2 * n + slack_idx] = -sign;
            slack_idx += 1;
        }
        t[i][n_struct + i] = Rat::ONE; // artificial
        rhs[i] = b;
    }

    let mut tab = Tableau {
        t,
        rhs,
        z: vec![Rat::ZERO; cols],
        zval: Rat::ZERO,
        basis: (n_struct..cols).collect(),
        cols,
        n_pivots: 0,
        n_cells: 0,
        cell_limit,
    };

    // Phase 1: minimize sum of artificials.
    let mut phase1 = vec![Rat::ZERO; cols];
    for j in n_struct..cols {
        phase1[j] = Rat::ONE;
    }
    tab.set_objective(&phase1);
    match tab.run(cols) {
        RunOutcome::Exhausted => {
            *pivots += tab.n_pivots;
            *cells += tab.n_cells;
            return LpResult::Exhausted;
        }
        outcome => debug_assert!(
            outcome == RunOutcome::Optimal,
            "phase 1 cannot be unbounded"
        ),
    }
    if (-tab.zval).signum() > 0 {
        *pivots += tab.n_pivots;
        *cells += tab.n_cells;
        return LpResult::Infeasible;
    }
    // Pivot artificials out of the basis where possible; drop rows that are
    // identically zero (redundant constraints).
    let mut drop_rows = Vec::new();
    for i in 0..tab.t.len() {
        if tab.basis[i] >= n_struct {
            if let Some(j) = (0..n_struct).find(|&j| !tab.t[i][j].is_zero()) {
                tab.pivot(i, j);
            } else {
                drop_rows.push(i);
            }
        }
    }
    for &i in drop_rows.iter().rev() {
        tab.t.remove(i);
        tab.rhs.remove(i);
        tab.basis.remove(i);
    }

    // Phase 2 with the real objective (minimization; negate for Max).
    let mut costs = vec![Rat::ZERO; cols];
    for v in 0..n {
        let c = match sense {
            Sense::Min => objective[v],
            Sense::Max => -objective[v],
        };
        costs[v] = c;
        costs[n + v] = -c;
    }
    tab.set_objective(&costs);
    match tab.run(n_struct) {
        RunOutcome::Optimal => {}
        outcome => {
            *pivots += tab.n_pivots;
            *cells += tab.n_cells;
            return match outcome {
                RunOutcome::Unbounded => LpResult::Unbounded,
                _ => LpResult::Exhausted,
            };
        }
    }

    // Extract the point.
    let mut y = vec![Rat::ZERO; cols];
    for (i, &b) in tab.basis.iter().enumerate() {
        y[b] = tab.rhs[i];
    }
    let point: Vec<Rat> = (0..n).map(|v| y[v] - y[n + v]).collect();
    let value = match sense {
        Sense::Min => -tab.zval,
        Sense::Max => tab.zval,
    };
    *pivots += tab.n_pivots;
    *cells += tab.n_cells;
    LpResult::Optimal { value, point }
}

/// Convenience: is the system rationally feasible?
#[must_use]
pub fn lp_feasible(cs: &ConstraintSystem) -> bool {
    let obj = vec![Rat::ZERO; cs.n_vars];
    !matches!(solve_lp(cs, &obj, Sense::Min), LpResult::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: &[i128]) -> Vec<Rat> {
        v.iter().map(|&x| Rat::int(x)).collect()
    }

    #[test]
    fn simple_box_max() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 4);
        cs.add_lower_bound(1, 0);
        cs.add_upper_bound(1, 3);
        let r = solve_lp(&cs, &obj(&[1, 1]), Sense::Max);
        assert_eq!(r.value(), Some(Rat::int(7)));
    }

    #[test]
    fn simple_box_min_with_negatives() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, -5);
        cs.add_upper_bound(0, 4);
        cs.add_lower_bound(1, -2);
        cs.add_upper_bound(1, 3);
        let r = solve_lp(&cs, &obj(&[1, 2]), Sense::Min);
        assert_eq!(r.value(), Some(Rat::int(-9)));
        let p = r.point().unwrap();
        assert_eq!(p[0], Rat::int(-5));
        assert_eq!(p[1], Rat::int(-2));
    }

    #[test]
    fn fractional_vertex() {
        // max x + y s.t. 2x + y <= 4, x + 2y <= 4, x,y >= 0 -> (4/3, 4/3)
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-2, -1, 4]);
        cs.add_ge0(vec![-1, -2, 4]);
        let r = solve_lp(&cs, &obj(&[1, 1]), Sense::Max);
        assert_eq!(r.value(), Some(Rat::new(8, 3)));
    }

    #[test]
    fn infeasible_detected() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 3);
        cs.add_upper_bound(0, 1);
        assert_eq!(solve_lp(&cs, &obj(&[1]), Sense::Min), LpResult::Infeasible);
        assert!(!lp_feasible(&cs));
    }

    #[test]
    fn unbounded_detected() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        assert_eq!(solve_lp(&cs, &obj(&[1]), Sense::Max), LpResult::Unbounded);
        // But bounded in the other direction.
        assert_eq!(
            solve_lp(&cs, &obj(&[1]), Sense::Min).value(),
            Some(Rat::ZERO)
        );
    }

    #[test]
    fn equality_constraints_respected() {
        // x + y == 10, x - y == 2 -> x=6, y=4
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq0(vec![1, 1, -10]);
        cs.add_eq0(vec![1, -1, -2]);
        let r = solve_lp(&cs, &obj(&[1, 0]), Sense::Min);
        let p = r.point().unwrap();
        assert_eq!(p[0], Rat::int(6));
        assert_eq!(p[1], Rat::int(4));
    }

    #[test]
    fn redundant_rows_ok() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq0(vec![1, -5]);
        cs.add_eq0(vec![2, -10]); // same constraint scaled
        cs.add_ge0(vec![1, 0]);
        let r = solve_lp(&cs, &obj(&[1]), Sense::Max);
        assert_eq!(r.value(), Some(Rat::int(5)));
    }

    #[test]
    fn degenerate_vertex_no_cycle() {
        // Klee-Minty-ish degenerate setup; Bland must terminate.
        let mut cs = ConstraintSystem::new(3);
        for v in 0..3 {
            cs.add_lower_bound(v, 0);
        }
        cs.add_ge0(vec![-1, 0, 0, 1]);
        cs.add_ge0(vec![-4, -1, 0, 2]);
        cs.add_ge0(vec![-8, -4, -1, 4]);
        let r = solve_lp(&cs, &obj(&[4, 2, 1]), Sense::Max);
        assert!(r.value().is_some());
    }

    #[test]
    fn min_over_dependence_like_polyhedron() {
        // Typical dependence-distance query: min (t - s) over
        // 0 <= s <= N-1, t = s + 1, with N fixed at 100.
        let mut cs = ConstraintSystem::new(2); // s, t
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 99);
        cs.add_eq0(vec![-1, 1, -1]); // t - s - 1 == 0
        let r = solve_lp(&cs, &obj(&[-1, 1]), Sense::Min);
        assert_eq!(r.value(), Some(Rat::ONE));
        let rmax = solve_lp(&cs, &obj(&[-1, 1]), Sense::Max);
        assert_eq!(rmax.value(), Some(Rat::ONE));
    }

    #[test]
    fn empty_objective_space() {
        let cs = ConstraintSystem::new(0);
        let r = solve_lp(&cs, &[], Sense::Min);
        assert_eq!(r.value(), Some(Rat::ZERO));
    }
}

#[cfg(test)]
mod brute_force_tests {
    use super::*;
    use crate::ilp::solve_ilp;
    use wf_harness::prelude::*;

    props! {
        /// On random bounded systems, the exact simplex optimum is never
        /// beaten by any integer point, and the ILP optimum matches
        /// exhaustive search.
        #[test]
        fn prop_lp_bounds_and_ilp_matches_bruteforce(
            rows in collection::vec(
                (collection::vec(-2i128..3, 3), -4i128..5), 0..4),
            obj in collection::vec(-3i128..4, 3),
        ) {
            let mut cs = ConstraintSystem::new(3);
            for v in 0..3 {
                cs.add_lower_bound(v, -3);
                cs.add_upper_bound(v, 3);
            }
            for (a, c) in rows {
                let mut row = a;
                row.push(c);
                cs.add_ge0(row);
            }
            // Brute force over the integer box.
            let mut best: Option<i128> = None;
            for x in -3i128..=3 {
                for y in -3i128..=3 {
                    for z in -3i128..=3 {
                        if cs.contains(&[x, y, z]) {
                            let v = obj[0] * x + obj[1] * y + obj[2] * z;
                            best = Some(best.map_or(v, |b: i128| b.min(v)));
                        }
                    }
                }
            }
            let obj_rat: Vec<wf_linalg::Rat> =
                obj.iter().map(|&c| wf_linalg::Rat::int(c)).collect();
            let lp = solve_lp(&cs, &obj_rat, Sense::Min);
            let ilp = solve_ilp(&cs, &obj, Sense::Min).unwrap();
            match best {
                None => {
                    // No integer point; the LP may still be rationally
                    // feasible, but the ILP must agree with brute force.
                    prop_assert_eq!(ilp.value(), None);
                }
                Some(b) => {
                    // LP relaxation lower-bounds the integer optimum.
                    let lv = lp.value().expect("feasible");
                    prop_assert!(lv <= wf_linalg::Rat::int(b), "{lv} > {b}");
                    prop_assert_eq!(ilp.value(), Some(wf_linalg::Rat::int(b)));
                }
            }
        }
    }
}
