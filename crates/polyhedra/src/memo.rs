//! Process-wide solver memoization for the ILP entry points.
//!
//! The scheduler and the iterative-search harness re-solve *identical*
//! polyhedral subproblems constantly: the five fusion models share most
//! of their legality systems, every `run_all` fan-out repeats the serial
//! pass's `lexmin` calls, and candidate enumeration in iterative search
//! revisits the same emptiness tests per configuration. This module puts
//! a bounded-LRU memo in front of [`try_ilp_feasible`](crate::ilp::try_ilp_feasible)
//! and [`lexmin_budgeted`](crate::ilp::lexmin_budgeted) (and therefore
//! [`Polyhedron::is_empty_integer`](crate::Polyhedron::is_empty_integer),
//! which delegates to the former), keyed by a canonical FNV-1a digest of
//! the constraint system, the objectives, and the budget *class*.
//!
//! Correctness contract, in order of importance:
//!
//! * **Byte-identity.** A memo hit returns exactly the value the cold
//!   solve produced — entries store the full canonical key bytes, so an
//!   FNV collision is detected and treated as a miss (last writer wins),
//!   never as a wrong answer. The solver is deterministic, so re-solving
//!   under the same key always reproduces the stored value.
//! * **Budget-exhausted verdicts are never cached.** An `Err` depends on
//!   where the search was cut off, not only on the problem; caching it
//!   would let one tight budget poison later, looser-budgeted callers
//!   that share a key class. Only `Ok` verdicts are stored.
//! * **Wall-clock budgets bypass the memo entirely.** `wall_ms > 0`
//!   makes the verdict machine-speed-dependent; such solves are neither
//!   looked up nor stored.
//!
//! Hits, misses, stores, and evictions are counted here and mirrored
//! into the [`wf_harness::obs`] metrics registry (`memo.hit` /
//! `memo.miss` / `memo.store`). The `polyhedra.memo` fault-injection
//! site ([`wf_harness::fault`], [`FaultKind::Io`]) deterministically
//! forces lookups to miss, which the fault property suite uses to prove
//! forced-miss runs are byte-identical to warm runs. [`set_enabled`]
//! turns the layer off wholesale for harnesses that must time the cold
//! path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use wf_harness::fault::{self, FaultKind};
use wf_harness::hash::Fnv64;
use wf_harness::json::Json;
use wf_harness::obs;

use crate::constraint::{ConstraintKind, ConstraintSystem};
use crate::ilp::{IlpBudget, IlpError, LexMin};

/// Entries kept by the process-wide memo before LRU eviction kicks in.
const MEMO_CAPACITY: usize = 4096;

/// A memoized solver verdict. Variants match the two fronted entry
/// points; the op tag is also baked into the key bytes so a feasibility
/// query can never alias a lexmin query.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Value {
    /// `try_ilp_feasible`: some integer point, or proven-empty.
    Feasible(Option<Vec<i128>>),
    /// `lexmin_budgeted`: optimal values + attaining point, or infeasible.
    Lexmin(LexMin),
}

struct Entry {
    /// Full canonical key bytes, kept to detect FNV-1a collisions.
    key: Vec<u8>,
    value: Value,
    last_used: u64,
}

/// Counters for the solver memo; returned by [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to fall through to a cold solve (including
    /// fault-forced and collision misses).
    pub misses: u64,
    /// Verdicts written into the memo.
    pub stores: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

impl MemoStats {
    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in percent, 0.0 when no lookups happened.
    #[must_use]
    pub fn hit_rate_pct(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / self.lookups() as f64 * 100.0
            }
        }
    }

    /// The stats as a JSON object (for `wfc cache --stats --json` and
    /// bench-all reports).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("stores", Json::from(self.stores)),
            ("evictions", Json::from(self.evictions)),
            ("hit_rate_pct", Json::Num(self.hit_rate_pct())),
        ])
    }
}

struct SolverMemo {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    stats: MemoStats,
}

impl SolverMemo {
    fn new(capacity: usize) -> SolverMemo {
        SolverMemo {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            stats: MemoStats::default(),
        }
    }

    /// Look up `key_bytes`; a digest match with different key bytes is a
    /// collision and reported as a miss.
    fn lookup(&mut self, digest: u64, key_bytes: &[u8]) -> Option<Value> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&digest) {
            Some(e) if e.key == key_bytes => {
                e.last_used = tick;
                self.stats.hits += 1;
                obs::add("memo.hit", 1);
                // Attribute avoided work to whoever holds the labels —
                // `lookup` runs on the solving thread, so the caller's
                // (bench, model, unit, dim) labels are still live.
                wf_harness::attr::record_memo_hit();
                Some(e.value.clone())
            }
            _ => {
                self.stats.misses += 1;
                obs::add("memo.miss", 1);
                None
            }
        }
    }

    /// Insert (or overwrite on collision — last writer wins), evicting
    /// least-recently-used entries to respect the bound.
    fn insert(&mut self, digest: u64, key_bytes: Vec<u8>, value: Value) {
        while self.map.len() >= self.capacity && !self.map.contains_key(&digest) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        self.tick += 1;
        self.map.insert(
            digest,
            Entry {
                key: key_bytes,
                value,
                last_used: self.tick,
            },
        );
        self.stats.stores += 1;
        obs::add("memo.store", 1);
    }
}

fn global() -> &'static Mutex<SolverMemo> {
    static MEMO: OnceLock<Mutex<SolverMemo>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(SolverMemo::new(MEMO_CAPACITY)))
}

/// Is the memo layer consulted at all? Default on; flipped by
/// [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn the memo layer on or off process-wide. Off means every solve is
/// cold (no lookups, no stores, no counter movement) — for harnesses
/// that must time or verify the unmemoized path. Existing entries are
/// kept; re-enabling resumes hitting them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the memo layer is currently consulted.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of the process-wide memo counters.
#[must_use]
pub fn stats() -> MemoStats {
    global().lock().expect("memo lock").stats
}

/// Drop every memoized verdict. Counters are cumulative and survive the
/// clear (mirroring the schedule cache), so long-running reports keep
/// their totals.
pub fn clear() {
    let mut memo = global().lock().expect("memo lock");
    memo.map.clear();
}

/// Operation tags baked into the canonical key so the two fronted entry
/// points can never alias.
const OP_FEASIBLE: u8 = 1;
const OP_LEXMIN: u8 = 2;

/// Canonical key bytes: op tag, variable count, every constraint
/// (kind + coefficient row), the objective rows (lexmin only), and the
/// budget class (`max_nodes`, `max_pivots`, `max_cells`). Fixed-width little-endian
/// integers throughout, so the digest is stable across platforms.
fn key_bytes(
    op: u8,
    cs: &ConstraintSystem,
    objectives: &[Vec<i128>],
    budget: &IlpBudget,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + cs.constraints.len() * (1 + cs.n_vars * 16));
    out.push(op);
    out.extend_from_slice(&(cs.n_vars as u64).to_le_bytes());
    out.extend_from_slice(&(cs.constraints.len() as u64).to_le_bytes());
    for c in &cs.constraints {
        out.push(match c.kind {
            ConstraintKind::Ineq => 0,
            ConstraintKind::Eq => 1,
        });
        out.extend_from_slice(&(c.coeffs.len() as u64).to_le_bytes());
        for &x in &c.coeffs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out.extend_from_slice(&(objectives.len() as u64).to_le_bytes());
    for obj in objectives {
        out.extend_from_slice(&(obj.len() as u64).to_le_bytes());
        for &x in obj {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out.extend_from_slice(&(budget.max_nodes as u64).to_le_bytes());
    out.extend_from_slice(&budget.max_pivots.to_le_bytes());
    out.extend_from_slice(&budget.max_cells.to_le_bytes());
    out
}

fn digest_of(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

/// Should this solve go through the memo at all? Wall-clock budgets make
/// the verdict machine-dependent, so they bypass; [`set_enabled`] turns
/// the whole layer off.
fn memoizable(budget: &IlpBudget) -> bool {
    enabled() && budget.wall_ms == 0
}

/// Memoizing front for `try_ilp_feasible`: consult the memo, fall back
/// to `solve` on a miss (or a fault-forced miss), and store `Ok`
/// verdicts only.
pub(crate) fn feasible_cached<F>(
    cs: &ConstraintSystem,
    budget: &IlpBudget,
    solve: F,
) -> Result<Option<Vec<i128>>, IlpError>
where
    F: FnOnce() -> Result<Option<Vec<i128>>, IlpError>,
{
    if !memoizable(budget) {
        return solve();
    }
    let key = key_bytes(OP_FEASIBLE, cs, &[], budget);
    let digest = digest_of(&key);
    let forced_miss = fault::should_inject("polyhedra.memo", FaultKind::Io);
    if !forced_miss {
        if let Some(Value::Feasible(v)) = global().lock().expect("memo lock").lookup(digest, &key) {
            return Ok(v);
        }
    } else {
        // The forced miss still counts as a lookup so hit rates reflect
        // the injected climate.
        let mut memo = global().lock().expect("memo lock");
        memo.stats.misses += 1;
        obs::add("memo.miss", 1);
    }
    let out = solve();
    if let Ok(v) = &out {
        global()
            .lock()
            .expect("memo lock")
            .insert(digest, key, Value::Feasible(v.clone()));
    }
    out
}

/// Memoizing front for `lexmin_budgeted`; same policy as
/// [`feasible_cached`].
pub(crate) fn lexmin_cached<F>(
    cs: &ConstraintSystem,
    objectives: &[Vec<i128>],
    budget: &IlpBudget,
    solve: F,
) -> Result<LexMin, IlpError>
where
    F: FnOnce() -> Result<LexMin, IlpError>,
{
    if !memoizable(budget) {
        return solve();
    }
    let key = key_bytes(OP_LEXMIN, cs, objectives, budget);
    let digest = digest_of(&key);
    let forced_miss = fault::should_inject("polyhedra.memo", FaultKind::Io);
    if !forced_miss {
        if let Some(Value::Lexmin(v)) = global().lock().expect("memo lock").lookup(digest, &key) {
            return Ok(v);
        }
    } else {
        let mut memo = global().lock().expect("memo lock");
        memo.stats.misses += 1;
        obs::add("memo.miss", 1);
    }
    let out = solve();
    if let Ok(v) = &out {
        global()
            .lock()
            .expect("memo lock")
            .insert(digest, key, Value::Lexmin(v.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::{lexmin_budgeted, try_ilp_feasible};

    /// `0 <= x <= hi`, one variable — feasible, trivially solved.
    fn box_system(hi: i128) -> ConstraintSystem {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![1, 0]); // x >= 0
        cs.add_ge0(vec![-1, hi]); // x <= hi
        cs
    }

    /// `x >= 1 && x <= 0` — integer-empty.
    fn empty_system() -> ConstraintSystem {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![1, -1]);
        cs.add_ge0(vec![-1, 0]);
        cs
    }

    #[test]
    fn hit_equals_cold_and_counters_move() {
        let cs = box_system(7);
        let budget = IlpBudget::default();
        let s0 = stats();
        let cold = try_ilp_feasible(&cs, &budget).expect("solvable");
        let s1 = stats();
        assert!(s1.misses > s0.misses, "first solve must miss");
        assert!(s1.stores > s0.stores, "first Ok verdict must be stored");
        let warm = try_ilp_feasible(&cs, &budget).expect("solvable");
        let s2 = stats();
        assert!(s2.hits > s1.hits, "second identical solve must hit");
        assert_eq!(cold, warm, "memo hit must be byte-identical to cold");

        let lex_cold = lexmin_budgeted(&cs, &[vec![1]], &budget).expect("bounded");
        let lex_warm = lexmin_budgeted(&cs, &[vec![1]], &budget).expect("bounded");
        assert_eq!(lex_cold, lex_warm);
        assert_eq!(lex_cold.expect("feasible").0, vec![0]);
    }

    #[test]
    fn emptiness_verdicts_are_memoized_correctly() {
        let cs = empty_system();
        let budget = IlpBudget::default();
        let cold = try_ilp_feasible(&cs, &budget).expect("in budget");
        let warm = try_ilp_feasible(&cs, &budget).expect("in budget");
        assert_eq!(cold, None);
        assert_eq!(warm, None, "proven-empty must survive memoization");
    }

    #[test]
    fn errors_are_never_cached() {
        // max_nodes 0 exhausts on the first node, every time.
        let cs = box_system(7);
        let starved = IlpBudget {
            max_nodes: 0,
            ..IlpBudget::default()
        };
        let s0 = stats();
        assert!(try_ilp_feasible(&cs, &starved).is_err());
        assert!(try_ilp_feasible(&cs, &starved).is_err());
        let s1 = stats();
        assert_eq!(s1.stores, s0.stores, "Err verdicts must not be stored");
        assert!(s1.misses >= s0.misses + 2, "both starved solves must miss");
    }

    #[test]
    fn wall_clock_budgets_bypass_the_memo() {
        let cs = box_system(3);
        let timed = IlpBudget {
            wall_ms: 60_000,
            ..IlpBudget::default()
        };
        let s0 = stats();
        let a = try_ilp_feasible(&cs, &timed).expect("solvable");
        let b = try_ilp_feasible(&cs, &timed).expect("solvable");
        let s1 = stats();
        assert_eq!(a, b);
        assert_eq!(s0, s1, "wall-clock solves must not touch the memo");
    }

    #[test]
    fn different_budget_classes_do_not_alias() {
        let cs = box_system(5);
        let a = key_bytes(OP_FEASIBLE, &cs, &[], &IlpBudget::default());
        let b = key_bytes(OP_FEASIBLE, &cs, &[], &IlpBudget::nodes(7));
        assert_ne!(a, b, "budget class is part of the key");
        let c = key_bytes(OP_LEXMIN, &cs, &[], &IlpBudget::default());
        assert_ne!(a, c, "op tag is part of the key");
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let mut memo = SolverMemo::new(2);
        memo.insert(1, vec![1], Value::Feasible(None));
        memo.insert(2, vec![2], Value::Feasible(None));
        // Touch 1 so 2 is the LRU victim.
        assert!(memo.lookup(1, &[1]).is_some());
        memo.insert(3, vec![3], Value::Feasible(None));
        assert_eq!(memo.map.len(), 2);
        assert_eq!(memo.stats.evictions, 1);
        assert!(memo.lookup(2, &[2]).is_none(), "LRU entry evicted");
        assert!(memo.lookup(1, &[1]).is_some(), "recently-used entry kept");
        assert!(memo.lookup(3, &[3]).is_some());
    }

    #[test]
    fn digest_collision_is_a_miss_not_a_wrong_answer() {
        let mut memo = SolverMemo::new(4);
        memo.insert(9, vec![1, 2, 3], Value::Feasible(Some(vec![1])));
        // Same digest, different key bytes: must be reported as a miss.
        assert!(memo.lookup(9, &[4, 5, 6]).is_none());
        // Last writer wins on insert.
        memo.insert(9, vec![4, 5, 6], Value::Feasible(None));
        assert_eq!(
            memo.lookup(9, &[4, 5, 6]),
            Some(Value::Feasible(None)),
            "overwritten entry serves the new key"
        );
    }

    #[test]
    fn disabled_memo_is_fully_cold() {
        let cs = box_system(9);
        let budget = IlpBudget::default();
        let warm = try_ilp_feasible(&cs, &budget).expect("solvable");
        set_enabled(false);
        let s0 = stats();
        let cold = try_ilp_feasible(&cs, &budget).expect("solvable");
        let s1 = stats();
        set_enabled(true);
        assert_eq!(warm, cold, "disabled layer must not change verdicts");
        assert_eq!(s0, s1, "disabled layer must not move counters");
    }
}
