//! Polyhedral core for the wisefuse stack.
//!
//! This crate rebuilds, in pure safe Rust, the slice of ISL / PolyLib / PIP
//! functionality that the PPoPP'14 wisefuse paper's toolchain (PLuTo) relies
//! on:
//!
//! * [`ConstraintSystem`] — integer affine constraints `a·x + c ≥ 0` /
//!   `a·x + c = 0` over a fixed variable space,
//! * [`fm`] — exact Fourier–Motzkin variable elimination (projection) with
//!   equality substitution and redundancy pruning,
//! * [`simplex`] — an exact two-phase rational simplex (Bland's rule, no
//!   floating point anywhere),
//! * [`ilp`] — branch-and-bound integer programming plus lexicographic
//!   multi-objective minimization, standing in for PIP,
//! * [`memo`] — a process-wide bounded-LRU memo fronting the ILP entry
//!   points ([`try_ilp_feasible`], [`lexmin_budgeted`], and through them
//!   [`Polyhedron::is_empty_integer`]), keyed by a canonical FNV-1a digest
//!   of system + budget class, with byte-identical hits,
//! * [`Polyhedron`] — a convenience wrapper offering emptiness tests, affine
//!   min/max, and integer point enumeration (for testing).
//!
//! Everything is exact: a wrong sign here would make an illegal loop
//! transform look legal.

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod constraint;
pub mod fm;
pub mod ilp;
pub mod memo;
pub mod poly;
pub mod simplex;

pub use constraint::{Constraint, ConstraintKind, ConstraintSystem};
pub use ilp::{
    ilp_feasible, lexmin, lexmin_budgeted, solve_ilp, solve_ilp_budgeted, try_ilp_feasible,
    IlpBudget, IlpError, IlpResult,
};
pub use poly::{PolyError, Polyhedron};
pub use simplex::{solve_lp, solve_lp_counted, LpResult, Sense};
