//! Exact Fourier–Motzkin variable elimination (polyhedral projection).
//!
//! Elimination keeps the variable space intact: an eliminated variable simply
//! has a zero coefficient in every remaining constraint. This avoids index
//! remapping bugs in callers (Farkas elimination, code generation) that
//! eliminate interior variables.
//!
//! Equalities are used first (exact Gaussian substitution, no blow-up); only
//! then do we resort to pairwise inequality combination. Rows are normalized
//! and deduplicated after each step to keep growth in check.

use crate::constraint::{Constraint, ConstraintKind, ConstraintSystem};
use std::collections::HashSet;
use wf_harness::obs;

/// Eliminate variable `v` from the system.
///
/// The result ranges over the same variable space, with `x_v` unconstrained
/// (zero coefficient everywhere). The projection is exact over the rationals.
#[must_use]
pub fn eliminate_var(cs: &ConstraintSystem, v: usize) -> ConstraintSystem {
    assert!(v < cs.n_vars, "eliminate_var: variable out of range");
    obs::add("fm.eliminations", 1);
    let mut out = ConstraintSystem::new(cs.n_vars);

    // 1. Prefer an equality carrying v: exact substitution.
    if let Some(eq_idx) = cs
        .constraints
        .iter()
        .position(|c| c.kind == ConstraintKind::Eq && c.coeffs[v] != 0)
    {
        let mut eq = cs.constraints[eq_idx].clone();
        if eq.coeffs[v] < 0 {
            for x in &mut eq.coeffs {
                *x = -*x;
            }
        }
        let e = eq.coeffs[v]; // > 0
        for (i, c) in cs.constraints.iter().enumerate() {
            if i == eq_idx {
                continue;
            }
            let cv = c.coeffs[v];
            if cv == 0 {
                out.constraints.push(c.clone());
                continue;
            }
            // e * c - cv * eq cancels v; e > 0 preserves inequality direction.
            let mut row = vec![0i128; cs.n_vars + 1];
            for j in 0..=cs.n_vars {
                row[j] = e
                    .checked_mul(c.coeffs[j])
                    .and_then(|a| cv.checked_mul(eq.coeffs[j]).map(|b| (a, b)))
                    .map(|(a, b)| a.checked_sub(b).expect("FM overflow"))
                    .expect("FM overflow");
            }
            debug_assert_eq!(row[v], 0);
            out.constraints.push(Constraint {
                coeffs: row,
                kind: c.kind,
            });
        }
        out.simplify();
        return out;
    }

    // 2. Pairwise inequality combination.
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for c in &cs.constraints {
        if c.coeffs[v] == 0 {
            // Constraints (including equalities) not involving v pass
            // through untouched.
            out.constraints.push(c.clone());
            continue;
        }
        debug_assert_eq!(c.kind, ConstraintKind::Ineq, "eqs carrying v handled above");
        match c.coeffs[v].signum() {
            1 => pos.push(c),
            _ => neg.push(c),
        }
    }
    for p in &pos {
        let a = p.coeffs[v]; // > 0
        for n in &neg {
            let b = n.coeffs[v]; // < 0
            let mut row = vec![0i128; cs.n_vars + 1];
            for j in 0..=cs.n_vars {
                // (-b) * p + a * n; both multipliers positive.
                let t1 = (-b).checked_mul(p.coeffs[j]).expect("FM overflow");
                let t2 = a.checked_mul(n.coeffs[j]).expect("FM overflow");
                row[j] = t1.checked_add(t2).expect("FM overflow");
            }
            debug_assert_eq!(row[v], 0);
            out.constraints.push(Constraint::ge0(row));
        }
    }
    out.simplify();
    out
}

/// Eliminate every variable in `vars` (in the given order).
#[must_use]
pub fn eliminate_vars(cs: &ConstraintSystem, vars: &[usize]) -> ConstraintSystem {
    let mut cur = cs.clone();
    for &v in vars {
        cur = eliminate_var(&cur, v);
    }
    cur
}

/// Eliminate a *set* of variables choosing the order greedily (classic FM
/// heuristic: cheapest variable first — equality carriers, then the variable
/// minimizing the `pos × neg` product), with LP-based redundancy pruning
/// whenever the system grows past `prune_at` rows. This keeps the
/// Farkas-multiplier eliminations of the scheduler from blowing up.
#[must_use]
pub fn eliminate_vars_greedy(
    cs: &ConstraintSystem,
    vars: &[usize],
    prune_at: usize,
) -> ConstraintSystem {
    let mut remaining: Vec<usize> = vars.to_vec();
    let mut cur = cs.clone();
    while !remaining.is_empty() {
        // Pick the cheapest variable to eliminate next.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(idx, &v)| {
                let has_eq = cur
                    .constraints
                    .iter()
                    .any(|c| c.kind == ConstraintKind::Eq && c.coeffs[v] != 0);
                let cost = if has_eq {
                    0usize
                } else {
                    let pos = cur.constraints.iter().filter(|c| c.coeffs[v] > 0).count();
                    let neg = cur.constraints.iter().filter(|c| c.coeffs[v] < 0).count();
                    1 + pos * neg
                };
                (idx, cost)
            })
            .min_by_key(|&(_, cost)| cost)
            .expect("remaining non-empty");
        let v = remaining.swap_remove(idx);
        cur = eliminate_var(&cur, v);
        if cur.constraints.len() > prune_at {
            cur = remove_redundant(&cur);
        }
    }
    cur
}

/// Drop inequalities implied by the rest of the system (exact LP test).
/// Equalities are kept as-is.
#[must_use]
pub fn remove_redundant(cs: &ConstraintSystem) -> ConstraintSystem {
    obs::add("fm.prunes", 1);
    let t0 = std::time::Instant::now();
    let out = remove_redundant_inner(cs);
    obs::add("fm.prune_ms", t0.elapsed().as_millis() as u64);
    out
}

fn remove_redundant_inner(cs: &ConstraintSystem) -> ConstraintSystem {
    let mut kept = cs.clone();
    let mut i = 0;
    while i < kept.constraints.len() {
        if kept.constraints[i].kind != ConstraintKind::Ineq {
            i += 1;
            continue;
        }
        let mut without = kept.clone();
        let row = without.constraints.remove(i);
        // Redundant iff the row cannot be violated under the others:
        // min of (a·x + c) over `without` is >= 0.
        let n = without.n_vars;
        let obj: Vec<wf_linalg::Rat> = row.coeffs[..n]
            .iter()
            .map(|&c| wf_linalg::Rat::int(c))
            .collect();
        match crate::simplex::solve_lp(&without, &obj, crate::simplex::Sense::Min) {
            crate::simplex::LpResult::Optimal { value, .. }
                if value + wf_linalg::Rat::int(row.coeffs[n]) >= wf_linalg::Rat::ZERO =>
            {
                kept = without; // implied, drop it
            }
            crate::simplex::LpResult::Infeasible => {
                // System itself empty; keep as-is, caller will notice.
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    kept
}

/// Project the system onto its first `keep` variables: eliminates variables
/// `keep..n_vars`, then shrinks the variable space to `keep`.
#[must_use]
pub fn project_onto_prefix(cs: &ConstraintSystem, keep: usize) -> ConstraintSystem {
    assert!(keep <= cs.n_vars);
    let elim: Vec<usize> = (keep..cs.n_vars).rev().collect();
    let wide = eliminate_vars(cs, &elim);
    let mut out = ConstraintSystem::new(keep);
    let mut seen = HashSet::new();
    for c in &wide.constraints {
        debug_assert!(c.coeffs[keep..cs.n_vars].iter().all(|&x| x == 0));
        let mut coeffs: Vec<i128> = c.coeffs[..keep].to_vec();
        coeffs.push(c.coeffs[cs.n_vars]);
        let cons = Constraint {
            coeffs,
            kind: c.kind,
        };
        if seen.insert((cons.coeffs.clone(), cons.kind)) {
            out.constraints.push(cons);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Polyhedron;
    use wf_harness::prelude::*;

    /// 0 <= x <= 4, 0 <= y <= 4, x + y <= 5
    fn pentagon() -> ConstraintSystem {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 4);
        cs.add_lower_bound(1, 0);
        cs.add_upper_bound(1, 4);
        cs.add_ge0(vec![-1, -1, 5]);
        cs
    }

    #[test]
    fn eliminate_inequality_var() {
        let p = eliminate_var(&pentagon(), 1);
        // Projection onto x should be 0 <= x <= 4.
        for x in 0..=4 {
            assert!(p.contains(&[x, 0]), "x={x} should be in projection");
        }
        assert!(!p.contains(&[5, 0]));
        assert!(!p.contains(&[-1, 0]));
        // y must be unconstrained now.
        assert!(p.constraints.iter().all(|c| c.coeffs[1] == 0));
    }

    #[test]
    fn eliminate_with_equality_substitution() {
        // x == 2y, 0 <= y <= 3 ; eliminating y gives 0 <= x <= 6 (rationally
        // 0 <= x/2 <= 3).
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq0(vec![1, -2, 0]);
        cs.add_lower_bound(1, 0);
        cs.add_upper_bound(1, 3);
        let p = eliminate_var(&cs, 1);
        assert!(p.contains(&[0, 0]));
        assert!(p.contains(&[6, 99]));
        assert!(!p.contains(&[7, 0]));
        assert!(!p.contains(&[-1, 0]));
    }

    #[test]
    fn eliminate_detects_empty() {
        // x >= 3 and x <= 1: eliminating x yields a contradiction row.
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 3);
        cs.add_upper_bound(0, 1);
        let mut p = eliminate_var(&cs, 0);
        assert!(!p.simplify(), "must detect contradiction");
    }

    #[test]
    fn project_onto_prefix_shrinks_space() {
        let p = project_onto_prefix(&pentagon(), 1);
        assert_eq!(p.n_vars, 1);
        assert!(p.contains(&[4]));
        assert!(!p.contains(&[5]));
    }

    #[test]
    fn chained_elimination_order_independent() {
        let mut cs = ConstraintSystem::new(3);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 3);
        cs.add_ge0(vec![-1, 1, 0, 0]); // y >= x
        cs.add_ge0(vec![0, -1, 1, 0]); // z >= y
        cs.add_upper_bound(2, 5);
        let a = eliminate_vars(&cs, &[1, 2]);
        let b = eliminate_vars(&cs, &[2, 1]);
        for x in -2..8 {
            assert_eq!(a.contains(&[x, 0, 0]), b.contains(&[x, 0, 0]), "x={x}");
        }
    }

    fn arb_system() -> impl Strategy<Value = ConstraintSystem> {
        // Random small systems over 3 vars with bounded box to keep them
        // enumerable.
        collection::vec((collection::vec(-3i128..4, 3), -4i128..5), 1..5).prop_map(|rows| {
            let mut cs = ConstraintSystem::new(3);
            for v in 0..3 {
                cs.add_lower_bound(v, -3);
                cs.add_upper_bound(v, 3);
            }
            for (a, c) in rows {
                let mut row = a;
                row.push(c);
                cs.add_ge0(row);
            }
            cs
        })
    }

    props! {
        /// Soundness: the image of every point of P lies in the projection.
        #[test]
        fn prop_projection_sound(cs in arb_system()) {
            let proj = eliminate_var(&cs, 2);
            for x in -3i128..=3 {
                for y in -3i128..=3 {
                    for z in -3i128..=3 {
                        if cs.contains(&[x, y, z]) {
                            prop_assert!(proj.contains(&[x, y, 0]),
                                "({x},{y},{z}) in P but ({x},{y}) not in proj");
                        }
                    }
                }
            }
        }

        /// Exactness over the rationals: every integer point of the
        /// projection has a rational preimage (checked by LP feasibility).
        #[test]
        fn prop_projection_rationally_exact(cs in arb_system()) {
            let proj = eliminate_var(&cs, 2);
            for x in -3i128..=3 {
                for y in -3i128..=3 {
                    if proj.contains(&[x, y, 0]) {
                        let mut fixed = cs.clone();
                        fixed.add_fixed(0, x);
                        fixed.add_fixed(1, y);
                        let p = Polyhedron::from(fixed);
                        prop_assert!(!p.is_empty_rational(),
                            "({x},{y}) in projection but no rational preimage");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod redundancy_tests {
    use super::*;
    use wf_harness::prelude::*;

    #[test]
    fn remove_redundant_drops_implied_rows() {
        // x >= 0, x >= -5 (implied), x <= 10, x <= 20 (implied).
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(0, -5);
        cs.add_upper_bound(0, 10);
        cs.add_upper_bound(0, 20);
        let r = remove_redundant(&cs);
        assert_eq!(r.constraints.len(), 2, "{r}");
        for x in [-6, -1, 0, 10, 11, 21] {
            assert_eq!(cs.contains(&[x]), r.contains(&[x]), "x={x}");
        }
    }

    #[test]
    fn remove_redundant_keeps_equalities() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq0(vec![1, -1, 0]); // x == y
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 5);
        // y bounds are implied via the equality.
        cs.add_lower_bound(1, -10);
        let r = remove_redundant(&cs);
        assert!(r.constraints.iter().any(|c| c.kind == ConstraintKind::Eq));
        for x in -2..8 {
            for y in -2..8 {
                assert_eq!(cs.contains(&[x, y]), r.contains(&[x, y]), "({x},{y})");
            }
        }
    }

    #[test]
    fn greedy_elimination_matches_plain() {
        let mut cs = ConstraintSystem::new(4);
        for v in 0..4 {
            cs.add_lower_bound(v, -2);
            cs.add_upper_bound(v, 3);
        }
        cs.add_ge0(vec![1, 1, -1, 0, 1]);
        cs.add_eq0(vec![0, 1, 0, -2, 1]);
        let plain = eliminate_vars(&cs, &[3, 2]);
        let greedy = eliminate_vars_greedy(&cs, &[2, 3], 60);
        for x in -3..5 {
            for y in -3..5 {
                let p = [x, y, 0, 0];
                assert_eq!(plain.contains(&p), greedy.contains(&p), "({x},{y})");
            }
        }
    }

    props! {
        /// remove_redundant never changes the solution set.
        #[test]
        fn prop_redundancy_preserves_set(
            rows in collection::vec(
                (collection::vec(-3i128..4, 2), -5i128..6), 1..6)
        ) {
            let mut cs = ConstraintSystem::new(2);
            for v in 0..2 {
                cs.add_lower_bound(v, -4);
                cs.add_upper_bound(v, 4);
            }
            for (a, c) in rows {
                let mut row = a;
                row.push(c);
                cs.add_ge0(row);
            }
            let r = remove_redundant(&cs);
            prop_assert!(r.constraints.len() <= cs.constraints.len());
            for x in -5i128..=5 {
                for y in -5i128..=5 {
                    prop_assert_eq!(cs.contains(&[x, y]), r.contains(&[x, y]));
                }
            }
        }
    }
}
