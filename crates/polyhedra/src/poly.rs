//! A convenience wrapper around [`ConstraintSystem`] offering the queries the
//! dependence analyzer and scheduler need: emptiness, affine extrema, and
//! (for tests) exhaustive integer-point enumeration.

use crate::constraint::ConstraintSystem;
use crate::ilp::ilp_feasible;
use crate::simplex::{solve_lp, LpResult, Sense};
use wf_linalg::Rat;

/// Extremum of an affine expression over a polyhedron.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Extremum {
    /// The polyhedron is empty.
    Empty,
    /// The expression is unbounded in the requested direction.
    Unbounded,
    /// Finite extremum (over the rationals).
    Value(Rat),
}

impl Extremum {
    /// The finite value, if any.
    #[must_use]
    pub fn value(self) -> Option<Rat> {
        match self {
            Extremum::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// A rational polyhedron `{ x | A x + c >= 0, B x + d == 0 }`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Polyhedron {
    /// The defining constraints.
    pub cs: ConstraintSystem,
}

impl From<ConstraintSystem> for Polyhedron {
    fn from(cs: ConstraintSystem) -> Polyhedron {
        Polyhedron { cs }
    }
}

impl Polyhedron {
    /// Universe polyhedron over `n` variables.
    #[must_use]
    pub fn universe(n: usize) -> Polyhedron {
        Polyhedron {
            cs: ConstraintSystem::new(n),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.cs.n_vars
    }

    /// Is the polyhedron empty over the rationals?
    #[must_use]
    pub fn is_empty_rational(&self) -> bool {
        !crate::simplex::lp_feasible(&self.cs)
    }

    /// Is the polyhedron empty over the integers?
    ///
    /// Requires boundedness in the directions branch-and-bound explores;
    /// dependence polyhedra in this project always bound every variable.
    #[must_use]
    pub fn is_empty_integer(&self) -> bool {
        ilp_feasible(&self.cs).is_none()
    }

    /// Some integer point, if one exists.
    #[must_use]
    pub fn integer_point(&self) -> Option<Vec<i128>> {
        ilp_feasible(&self.cs)
    }

    /// Does the polyhedron contain the integer point?
    #[must_use]
    pub fn contains(&self, x: &[i128]) -> bool {
        self.cs.contains(x)
    }

    /// Minimum of `expr · (x, 1)` over the rational points.
    ///
    /// `expr` has `n_vars + 1` entries (affine expression with constant).
    #[must_use]
    pub fn min_affine(&self, expr: &[i128]) -> Extremum {
        self.extremum(expr, Sense::Min)
    }

    /// Maximum of `expr · (x, 1)` over the rational points.
    #[must_use]
    pub fn max_affine(&self, expr: &[i128]) -> Extremum {
        self.extremum(expr, Sense::Max)
    }

    fn extremum(&self, expr: &[i128], sense: Sense) -> Extremum {
        assert_eq!(expr.len(), self.cs.n_vars + 1, "affine expr arity mismatch");
        let obj: Vec<Rat> = expr[..self.cs.n_vars]
            .iter()
            .map(|&c| Rat::int(c))
            .collect();
        match solve_lp(&self.cs, &obj, sense) {
            LpResult::Infeasible => Extremum::Empty,
            LpResult::Unbounded => Extremum::Unbounded,
            LpResult::Optimal { value, .. } => {
                Extremum::Value(value + Rat::int(expr[self.cs.n_vars]))
            }
        }
    }

    /// Enumerate all integer points (test helper; panics if the polyhedron is
    /// unbounded or if more than `limit` points would be produced).
    #[must_use]
    pub fn enumerate(&self, limit: usize) -> Vec<Vec<i128>> {
        let n = self.cs.n_vars;
        if n == 0 {
            return if self.is_empty_rational() {
                vec![]
            } else {
                vec![vec![]]
            };
        }
        // Per-variable bounding box via LP.
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for v in 0..n {
            let mut e = vec![0i128; n + 1];
            e[v] = 1;
            match self.min_affine(&e) {
                Extremum::Empty => return vec![],
                Extremum::Unbounded => panic!("enumerate: unbounded variable x{v}"),
                Extremum::Value(r) => lo.push(r.ceil()),
            }
            match self.max_affine(&e) {
                Extremum::Empty => return vec![],
                Extremum::Unbounded => panic!("enumerate: unbounded variable x{v}"),
                Extremum::Value(r) => hi.push(r.floor()),
            }
        }
        let mut out = Vec::new();
        let mut point = lo.clone();
        'outer: loop {
            if self.contains(&point) {
                out.push(point.clone());
                assert!(out.len() <= limit, "enumerate: more than {limit} points");
            }
            // Odometer increment.
            for v in (0..n).rev() {
                if point[v] < hi[v] {
                    point[v] += 1;
                    for (idx, p) in point.iter_mut().enumerate().skip(v + 1) {
                        *p = lo[idx];
                    }
                    continue 'outer;
                }
            }
            break;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Polyhedron {
        // x >= 0, y >= 0, x + y <= 3
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-1, -1, 3]);
        Polyhedron::from(cs)
    }

    #[test]
    fn emptiness_checks() {
        assert!(!triangle().is_empty_rational());
        assert!(!triangle().is_empty_integer());
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 1);
        cs.add_upper_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert!(p.is_empty_rational());
        assert!(p.is_empty_integer());
    }

    #[test]
    fn integer_gap_polyhedron() {
        // Rationally nonempty, integrally empty.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![4, -1]); // x >= 1/4
        cs.add_ge0(vec![-4, 3]); // x <= 3/4
        let p = Polyhedron::from(cs);
        assert!(!p.is_empty_rational());
        assert!(p.is_empty_integer());
    }

    #[test]
    fn extrema() {
        let t = triangle();
        assert_eq!(t.min_affine(&[1, 1, 0]).value(), Some(Rat::ZERO));
        assert_eq!(t.max_affine(&[1, 1, 0]).value(), Some(Rat::int(3)));
        assert_eq!(t.max_affine(&[1, 0, 10]).value(), Some(Rat::int(13)));
    }

    #[test]
    fn extremum_on_empty_is_empty() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 1);
        cs.add_upper_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert_eq!(p.min_affine(&[1, 0]), Extremum::Empty);
    }

    #[test]
    fn unbounded_extremum() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert_eq!(p.max_affine(&[1, 0]), Extremum::Unbounded);
        assert_eq!(p.min_affine(&[1, 0]).value(), Some(Rat::ZERO));
    }

    #[test]
    fn enumerate_triangle() {
        let pts = triangle().enumerate(100);
        // Points with x,y >= 0, x+y <= 3: C(5,2) = 10 points.
        assert_eq!(pts.len(), 10);
        assert!(pts.contains(&vec![0, 0]));
        assert!(pts.contains(&vec![3, 0]));
        assert!(pts.contains(&vec![0, 3]));
        assert!(!pts.contains(&vec![2, 2]));
    }

    #[test]
    fn enumerate_empty() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 5);
        cs.add_upper_bound(0, 4);
        assert!(Polyhedron::from(cs).enumerate(10).is_empty());
    }

    #[test]
    fn enumerate_zero_dim() {
        let p = Polyhedron::universe(0);
        assert_eq!(p.enumerate(10), vec![Vec::<i128>::new()]);
    }
}
