//! A convenience wrapper around [`ConstraintSystem`] offering the queries the
//! dependence analyzer and scheduler need: emptiness, affine extrema, and
//! (for tests) exhaustive integer-point enumeration.

use crate::constraint::ConstraintSystem;
use crate::ilp::{ilp_feasible, try_ilp_feasible, IlpBudget};
use crate::simplex::{solve_lp, LpResult, Sense};
use wf_linalg::Rat;

/// Typed failure of a polyhedron query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolyError {
    /// A variable is unbounded, so exhaustive enumeration cannot terminate.
    Unbounded {
        /// Index of the unbounded variable.
        var: usize,
    },
    /// Enumeration would produce more than the requested limit of points.
    TooManyPoints {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::Unbounded { var } => {
                write!(f, "cannot enumerate: variable x{var} is unbounded")
            }
            PolyError::TooManyPoints { limit } => {
                write!(f, "enumeration exceeds {limit} points")
            }
        }
    }
}

impl std::error::Error for PolyError {}

impl From<PolyError> for wf_harness::WfError {
    fn from(e: PolyError) -> wf_harness::WfError {
        match e {
            PolyError::Unbounded { .. } => wf_harness::WfError::Unbounded {
                site: "poly.enumerate".into(),
            },
            PolyError::TooManyPoints { .. } => wf_harness::WfError::Budget {
                site: "poly.enumerate".into(),
                detail: e.to_string(),
            },
        }
    }
}

/// Extremum of an affine expression over a polyhedron.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Extremum {
    /// The polyhedron is empty.
    Empty,
    /// The expression is unbounded in the requested direction.
    Unbounded,
    /// Finite extremum (over the rationals).
    Value(Rat),
}

impl Extremum {
    /// The finite value, if any.
    #[must_use]
    pub fn value(self) -> Option<Rat> {
        match self {
            Extremum::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// A rational polyhedron `{ x | A x + c >= 0, B x + d == 0 }`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Polyhedron {
    /// The defining constraints.
    pub cs: ConstraintSystem,
}

impl From<ConstraintSystem> for Polyhedron {
    fn from(cs: ConstraintSystem) -> Polyhedron {
        Polyhedron { cs }
    }
}

impl Polyhedron {
    /// Universe polyhedron over `n` variables.
    #[must_use]
    pub fn universe(n: usize) -> Polyhedron {
        Polyhedron {
            cs: ConstraintSystem::new(n),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.cs.n_vars
    }

    /// Is the polyhedron empty over the rationals?
    #[must_use]
    pub fn is_empty_rational(&self) -> bool {
        !crate::simplex::lp_feasible(&self.cs)
    }

    /// Is the polyhedron empty over the integers?
    ///
    /// Requires boundedness in the directions branch-and-bound explores;
    /// dependence polyhedra in this project always bound every variable.
    /// If the solver's budget is somehow exhausted, this answers `false`
    /// (conservatively non-empty): the dependence analyzer then *keeps*
    /// the dependence, which can only forbid transformations, never
    /// admit an illegal one.
    ///
    /// Verdicts are memoized process-wide through the underlying
    /// [`try_ilp_feasible`] (see [`crate::memo`]); repeated tests of the
    /// same system are answered from the cache, byte-identically.
    #[must_use]
    pub fn is_empty_integer(&self) -> bool {
        match try_ilp_feasible(&self.cs, &IlpBudget::default()) {
            Ok(found) => found.is_none(),
            Err(_) => false,
        }
    }

    /// Some integer point, if one exists.
    #[must_use]
    pub fn integer_point(&self) -> Option<Vec<i128>> {
        ilp_feasible(&self.cs)
    }

    /// Does the polyhedron contain the integer point?
    #[must_use]
    pub fn contains(&self, x: &[i128]) -> bool {
        self.cs.contains(x)
    }

    /// Minimum of `expr · (x, 1)` over the rational points.
    ///
    /// `expr` has `n_vars + 1` entries (affine expression with constant).
    #[must_use]
    pub fn min_affine(&self, expr: &[i128]) -> Extremum {
        self.extremum(expr, Sense::Min)
    }

    /// Maximum of `expr · (x, 1)` over the rational points.
    #[must_use]
    pub fn max_affine(&self, expr: &[i128]) -> Extremum {
        self.extremum(expr, Sense::Max)
    }

    fn extremum(&self, expr: &[i128], sense: Sense) -> Extremum {
        assert_eq!(expr.len(), self.cs.n_vars + 1, "affine expr arity mismatch");
        let obj: Vec<Rat> = expr[..self.cs.n_vars]
            .iter()
            .map(|&c| Rat::int(c))
            .collect();
        match solve_lp(&self.cs, &obj, sense) {
            LpResult::Infeasible => Extremum::Empty,
            LpResult::Unbounded => Extremum::Unbounded,
            LpResult::Optimal { value, .. } => {
                Extremum::Value(value + Rat::int(expr[self.cs.n_vars]))
            }
            // solve_lp runs without a cell limit, so exhaustion is impossible.
            LpResult::Exhausted => unreachable!("unlimited solve_lp cannot exhaust"),
        }
    }

    /// Enumerate all integer points (test and reference-execution helper).
    ///
    /// # Errors
    /// [`PolyError::Unbounded`] if some variable has no finite extremum,
    /// [`PolyError::TooManyPoints`] if more than `limit` points would be
    /// produced.
    pub fn enumerate(&self, limit: usize) -> Result<Vec<Vec<i128>>, PolyError> {
        let n = self.cs.n_vars;
        if n == 0 {
            return Ok(if self.is_empty_rational() {
                vec![]
            } else {
                vec![vec![]]
            });
        }
        // Per-variable bounding box via LP.
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for v in 0..n {
            let mut e = vec![0i128; n + 1];
            e[v] = 1;
            match self.min_affine(&e) {
                Extremum::Empty => return Ok(vec![]),
                Extremum::Unbounded => return Err(PolyError::Unbounded { var: v }),
                Extremum::Value(r) => lo.push(r.ceil()),
            }
            match self.max_affine(&e) {
                Extremum::Empty => return Ok(vec![]),
                Extremum::Unbounded => return Err(PolyError::Unbounded { var: v }),
                Extremum::Value(r) => hi.push(r.floor()),
            }
        }
        let mut out = Vec::new();
        let mut point = lo.clone();
        'outer: loop {
            if self.contains(&point) {
                if out.len() >= limit {
                    return Err(PolyError::TooManyPoints { limit });
                }
                out.push(point.clone());
            }
            // Odometer increment.
            for v in (0..n).rev() {
                if point[v] < hi[v] {
                    point[v] += 1;
                    for (idx, p) in point.iter_mut().enumerate().skip(v + 1) {
                        *p = lo[idx];
                    }
                    continue 'outer;
                }
            }
            break;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Polyhedron {
        // x >= 0, y >= 0, x + y <= 3
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-1, -1, 3]);
        Polyhedron::from(cs)
    }

    #[test]
    fn emptiness_checks() {
        assert!(!triangle().is_empty_rational());
        assert!(!triangle().is_empty_integer());
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 1);
        cs.add_upper_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert!(p.is_empty_rational());
        assert!(p.is_empty_integer());
    }

    #[test]
    fn integer_gap_polyhedron() {
        // Rationally nonempty, integrally empty.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![4, -1]); // x >= 1/4
        cs.add_ge0(vec![-4, 3]); // x <= 3/4
        let p = Polyhedron::from(cs);
        assert!(!p.is_empty_rational());
        assert!(p.is_empty_integer());
    }

    #[test]
    fn extrema() {
        let t = triangle();
        assert_eq!(t.min_affine(&[1, 1, 0]).value(), Some(Rat::ZERO));
        assert_eq!(t.max_affine(&[1, 1, 0]).value(), Some(Rat::int(3)));
        assert_eq!(t.max_affine(&[1, 0, 10]).value(), Some(Rat::int(13)));
    }

    #[test]
    fn extremum_on_empty_is_empty() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 1);
        cs.add_upper_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert_eq!(p.min_affine(&[1, 0]), Extremum::Empty);
    }

    #[test]
    fn unbounded_extremum() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        let p = Polyhedron::from(cs);
        assert_eq!(p.max_affine(&[1, 0]), Extremum::Unbounded);
        assert_eq!(p.min_affine(&[1, 0]).value(), Some(Rat::ZERO));
    }

    #[test]
    fn enumerate_triangle() {
        let pts = triangle().enumerate(100).unwrap();
        // Points with x,y >= 0, x+y <= 3: C(5,2) = 10 points.
        assert_eq!(pts.len(), 10);
        assert!(pts.contains(&vec![0, 0]));
        assert!(pts.contains(&vec![3, 0]));
        assert!(pts.contains(&vec![0, 3]));
        assert!(!pts.contains(&vec![2, 2]));
    }

    #[test]
    fn enumerate_empty() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 5);
        cs.add_upper_bound(0, 4);
        assert!(Polyhedron::from(cs).enumerate(10).unwrap().is_empty());
    }

    #[test]
    fn enumerate_zero_dim() {
        let p = Polyhedron::universe(0);
        assert_eq!(p.enumerate(10).unwrap(), vec![Vec::<i128>::new()]);
    }

    #[test]
    fn enumerate_unbounded_is_typed_error() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        assert_eq!(
            Polyhedron::from(cs).enumerate(10),
            Err(PolyError::Unbounded { var: 0 })
        );
    }

    #[test]
    fn enumerate_limit_is_typed_error() {
        assert_eq!(
            triangle().enumerate(3),
            Err(PolyError::TooManyPoints { limit: 3 })
        );
    }
}
