//! Integer affine constraint systems.

use std::fmt;
use wf_linalg::{dot, normalize_row};

/// Whether a constraint is an inequality (`expr >= 0`) or equality
/// (`expr == 0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ConstraintKind {
    /// `a·x + c >= 0`
    Ineq,
    /// `a·x + c == 0`
    Eq,
}

/// One affine constraint over `n` variables.
///
/// `coeffs` has length `n + 1`: the first `n` entries are variable
/// coefficients, the final entry is the constant term. The represented
/// predicate is `coeffs[0..n]·x + coeffs[n] (>=|==) 0`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Constraint {
    /// Variable coefficients followed by the constant term.
    pub coeffs: Vec<i128>,
    /// Inequality or equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// An inequality `coeffs·(x,1) >= 0`.
    #[must_use]
    pub fn ge0(coeffs: Vec<i128>) -> Constraint {
        Constraint {
            coeffs,
            kind: ConstraintKind::Ineq,
        }
    }

    /// An equality `coeffs·(x,1) == 0`.
    #[must_use]
    pub fn eq0(coeffs: Vec<i128>) -> Constraint {
        Constraint {
            coeffs,
            kind: ConstraintKind::Eq,
        }
    }

    /// Number of variables this constraint ranges over.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluate the affine expression at an integer point.
    #[must_use]
    pub fn eval(&self, x: &[i128]) -> i128 {
        assert_eq!(x.len(), self.n_vars(), "eval: wrong point dimension");
        dot(&self.coeffs[..x.len()], x) + self.coeffs[x.len()]
    }

    /// Does the point satisfy the constraint?
    #[must_use]
    pub fn satisfied_by(&self, x: &[i128]) -> bool {
        let v = self.eval(x);
        match self.kind {
            ConstraintKind::Ineq => v >= 0,
            ConstraintKind::Eq => v == 0,
        }
    }

    /// Divide through by the gcd of all coefficients (exact for equalities;
    /// for inequalities this is the standard normalization and also tightens
    /// nothing since we only divide when the gcd divides the constant too —
    /// we deliberately keep it simple and only normalize fully-divisible
    /// rows; see [`Constraint::normalize_tighten`] for the integer
    /// tightening variant).
    pub fn normalize(&mut self) {
        normalize_row(&mut self.coeffs);
    }

    /// Normalize and, for inequalities, tighten the constant using
    /// integrality: `g·(a'·x) + c >= 0` implies `a'·x >= ceil(-c/g)`.
    pub fn normalize_tighten(&mut self) {
        let n = self.coeffs.len() - 1;
        let g = wf_linalg::gcd_slice(&self.coeffs[..n]);
        if g > 1 {
            match self.kind {
                ConstraintKind::Ineq => {
                    for x in &mut self.coeffs[..n] {
                        *x /= g;
                    }
                    // a·x >= -c  =>  a'·x >= ceil(-c / g) = -floor(c / g)
                    self.coeffs[n] = self.coeffs[n].div_euclid(g);
                }
                ConstraintKind::Eq => {
                    // Equality with gcd not dividing the constant is
                    // unsatisfiable over the integers; leave it as-is so the
                    // system stays (rationally) faithful. Otherwise divide.
                    if self.coeffs[n] % g == 0 {
                        for x in &mut self.coeffs {
                            *x /= g;
                        }
                    }
                }
            }
        } else {
            self.normalize();
        }
    }

    /// True if every coefficient (including the constant) is zero.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// True if the constraint can never hold (e.g. `0·x - 1 >= 0`).
    #[must_use]
    pub fn is_contradiction(&self) -> bool {
        let n = self.coeffs.len() - 1;
        if self.coeffs[..n].iter().any(|&c| c != 0) {
            return false;
        }
        match self.kind {
            ConstraintKind::Ineq => self.coeffs[n] < 0,
            ConstraintKind::Eq => self.coeffs[n] != 0,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.n_vars();
        let mut first = true;
        for (i, &c) in self.coeffs[..n].iter().enumerate() {
            if c == 0 {
                continue;
            }
            if first {
                if c == -1 {
                    write!(f, "-")?;
                } else if c != 1 {
                    write!(f, "{c}*")?;
                }
                first = false;
            } else if c > 0 {
                write!(f, " + ")?;
                if c != 1 {
                    write!(f, "{c}*")?;
                }
            } else {
                write!(f, " - ")?;
                if c != -1 {
                    write!(f, "{}*", -c)?;
                }
            }
            write!(f, "x{i}")?;
        }
        let k = self.coeffs[n];
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        match self.kind {
            ConstraintKind::Ineq => write!(f, " >= 0"),
            ConstraintKind::Eq => write!(f, " == 0"),
        }
    }
}

/// A conjunction of affine constraints over `n_vars` variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConstraintSystem {
    /// Number of variables.
    pub n_vars: usize,
    /// The constraints; all must have `coeffs.len() == n_vars + 1`.
    pub constraints: Vec<Constraint>,
}

impl ConstraintSystem {
    /// An empty (universally true) system over `n_vars` variables.
    #[must_use]
    pub fn new(n_vars: usize) -> ConstraintSystem {
        ConstraintSystem {
            n_vars,
            constraints: Vec::new(),
        }
    }

    /// Add an inequality `coeffs·(x,1) >= 0`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn add_ge0(&mut self, coeffs: Vec<i128>) {
        assert_eq!(coeffs.len(), self.n_vars + 1, "constraint arity mismatch");
        self.constraints.push(Constraint::ge0(coeffs));
    }

    /// Add an equality `coeffs·(x,1) == 0`.
    pub fn add_eq0(&mut self, coeffs: Vec<i128>) {
        assert_eq!(coeffs.len(), self.n_vars + 1, "constraint arity mismatch");
        self.constraints.push(Constraint::eq0(coeffs));
    }

    /// Add `var_lo <= x_v` (i.e. `x_v - lo >= 0`).
    pub fn add_lower_bound(&mut self, v: usize, lo: i128) {
        let mut c = vec![0; self.n_vars + 1];
        c[v] = 1;
        c[self.n_vars] = -lo;
        self.add_ge0(c);
    }

    /// Add `x_v <= hi` (i.e. `-x_v + hi >= 0`).
    pub fn add_upper_bound(&mut self, v: usize, hi: i128) {
        let mut c = vec![0; self.n_vars + 1];
        c[v] = -1;
        c[self.n_vars] = hi;
        self.add_ge0(c);
    }

    /// Pin `x_v == value`.
    pub fn add_fixed(&mut self, v: usize, value: i128) {
        let mut c = vec![0; self.n_vars + 1];
        c[v] = 1;
        c[self.n_vars] = -value;
        self.add_eq0(c);
    }

    /// Append all constraints of `other` (same variable space).
    pub fn extend(&mut self, other: &ConstraintSystem) {
        assert_eq!(self.n_vars, other.n_vars, "extend: variable-space mismatch");
        self.constraints.extend(other.constraints.iter().cloned());
    }

    /// Does the point satisfy all constraints?
    #[must_use]
    pub fn contains(&self, x: &[i128]) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(x))
    }

    /// Normalize rows, drop trivial `0 >= 0` rows and exact duplicates.
    /// Returns `false` if a syntactic contradiction (e.g. `-1 >= 0`) was
    /// found, in which case the system is unsatisfiable.
    pub fn simplify(&mut self) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut ok = true;
        self.constraints.retain_mut(|c| {
            c.normalize_tighten();
            if c.is_contradiction() {
                ok = false;
            }
            if c.is_trivial()
                || (c.kind == ConstraintKind::Ineq && {
                    let n = c.coeffs.len() - 1;
                    c.coeffs[..n].iter().all(|&a| a == 0) && c.coeffs[n] >= 0
                })
            {
                return false;
            }
            seen.insert((c.coeffs.clone(), c.kind))
        });
        ok
    }

    /// Widen the variable space: remap this system's variables into a larger
    /// space of `new_n` variables, placing old variable `i` at
    /// `var_map[i]`. The constant column stays last.
    #[must_use]
    pub fn embed(&self, new_n: usize, var_map: &[usize]) -> ConstraintSystem {
        assert_eq!(var_map.len(), self.n_vars, "embed: var_map arity");
        let mut out = ConstraintSystem::new(new_n);
        for c in &self.constraints {
            let mut row = vec![0i128; new_n + 1];
            for (i, &m) in var_map.iter().enumerate() {
                assert!(m < new_n, "embed: target var out of range");
                row[m] = c.coeffs[i];
            }
            row[new_n] = c.coeffs[self.n_vars];
            out.constraints.push(Constraint {
                coeffs: row,
                kind: c.kind,
            });
        }
        out
    }

    /// Number of equality constraints.
    #[must_use]
    pub fn n_eqs(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::Eq)
            .count()
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ vars: {}", self.n_vars)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_satisfaction() {
        // x0 + 2*x1 - 3 >= 0
        let c = Constraint::ge0(vec![1, 2, -3]);
        assert_eq!(c.eval(&[1, 1]), 0);
        assert!(c.satisfied_by(&[1, 1]));
        assert!(!c.satisfied_by(&[0, 1]));
        let e = Constraint::eq0(vec![1, -1, 0]);
        assert!(e.satisfied_by(&[4, 4]));
        assert!(!e.satisfied_by(&[4, 5]));
    }

    #[test]
    fn tighten_inequality() {
        // 2x - 3 >= 0  =>  x >= 2 over the integers (x - 2 >= 0)
        let mut c = Constraint::ge0(vec![2, -3]);
        c.normalize_tighten();
        assert_eq!(c.coeffs, vec![1, -2]);
    }

    #[test]
    fn tighten_equality_divisible() {
        let mut c = Constraint::eq0(vec![2, 4, -6]);
        c.normalize_tighten();
        assert_eq!(c.coeffs, vec![1, 2, -3]);
    }

    #[test]
    fn contradiction_detection() {
        assert!(Constraint::ge0(vec![0, 0, -1]).is_contradiction());
        assert!(!Constraint::ge0(vec![0, 0, 0]).is_contradiction());
        assert!(Constraint::eq0(vec![0, 0, 5]).is_contradiction());
        assert!(!Constraint::eq0(vec![1, 0, 5]).is_contradiction());
    }

    #[test]
    fn system_contains() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 10);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-1, 1, 0]); // x1 >= x0
        assert!(cs.contains(&[3, 5]));
        assert!(!cs.contains(&[5, 3]));
        assert!(!cs.contains(&[11, 12]));
    }

    #[test]
    fn simplify_dedups_and_flags_contradiction() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![2, 0]);
        cs.add_ge0(vec![1, 0]); // duplicate after normalize
        cs.add_ge0(vec![0, 3]); // trivially true, dropped
        assert!(cs.simplify());
        assert_eq!(cs.constraints.len(), 1);

        let mut bad = ConstraintSystem::new(1);
        bad.add_ge0(vec![0, -1]);
        assert!(!bad.simplify());
    }

    #[test]
    fn embed_remaps_vars() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_ge0(vec![1, -1, 5]);
        let big = cs.embed(4, &[2, 0]);
        assert_eq!(big.n_vars, 4);
        assert_eq!(big.constraints[0].coeffs, vec![-1, 0, 1, 0, 5]);
    }

    #[test]
    fn display_renders() {
        let c = Constraint::ge0(vec![1, -2, 3]);
        assert_eq!(c.to_string(), "x0 - 2*x1 + 3 >= 0");
        let e = Constraint::eq0(vec![0, 0, 0]);
        assert_eq!(e.to_string(), "0 == 0");
    }

    #[test]
    fn fixed_bound_helpers() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_fixed(1, 7);
        assert!(cs.contains(&[100, 7]));
        assert!(!cs.contains(&[100, 8]));
    }
}
