//! Integer linear programming by branch-and-bound over the exact simplex,
//! plus lexicographic multi-objective minimization (the PIP stand-in used by
//! the scheduler).
//!
//! Solver effort is bounded by an explicit [`IlpBudget`] (branch-and-bound
//! nodes, cumulative simplex pivots, wall clock); exhaustion returns a
//! typed [`IlpError`] instead of panicking or hanging, so callers — the
//! scheduler above all — can degrade gracefully (distribute the component,
//! fall back to original program order) the way production ILP-based
//! fusers do. Unbounded objectives are likewise an [`IlpError`], never a
//! panic: they indicate a modelling problem in the *caller's* constraint
//! system, which is input-dependent territory for `.wfs` files.

use crate::constraint::ConstraintSystem;
use crate::simplex::{solve_lp_measured, LpResult, Sense};
use std::time::Instant;
use wf_harness::attr;
use wf_harness::fault::{self, FaultKind};
use wf_harness::obs;
use wf_linalg::Rat;

/// Feed one finished solve's accounting into the metrics registry and
/// the cost-attribution table (single atomic load when metrics are
/// off). The attribution tally receives the *same* `cells`/`pivots`
/// values as the counters, from the same call — that is what makes the
/// per-edge cost table reconcile exactly with `simplex.cells`.
fn record_solve(nodes: usize, pivots: u64, cells: u64, err: Option<&IlpError>) {
    if !obs::metrics_on() {
        return;
    }
    obs::add("ilp.solves", 1);
    obs::add("ilp.nodes", nodes as u64);
    obs::add("simplex.pivots", pivots);
    obs::add("simplex.cells", cells);
    attr::record_solve(cells, pivots);
    obs::observe("ilp.nodes_per_solve", nodes as u64);
    obs::observe("ilp.pivots_per_solve", pivots);
    // Scaled to megacells so real solves (10^6..10^9 cells) land inside the
    // histogram's power-of-two bucket range instead of the overflow bucket.
    obs::observe("ilp.megacells_per_solve", cells >> 20);
    match err {
        Some(IlpError::Unbounded { .. }) | None => {}
        Some(_) => obs::add("ilp.budget_exhausted", 1),
    }
}

/// Result of an ILP solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IlpResult {
    /// No integer point satisfies the constraints.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded in the requested
    /// direction.
    Unbounded,
    /// Integer optimum.
    Optimal {
        /// Optimal objective value.
        value: Rat,
        /// An integer point attaining it.
        point: Vec<i128>,
    },
}

impl IlpResult {
    /// The optimal point, if any.
    #[must_use]
    pub fn point(&self) -> Option<&[i128]> {
        match self {
            IlpResult::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// The optimal value, if any.
    #[must_use]
    pub fn value(&self) -> Option<Rat> {
        match self {
            IlpResult::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// Explicit resource budget for one ILP solve. Exhaustion is an expected
/// outcome ([`IlpError`]), not a crash — the scheduler treats it like
/// infeasibility and cuts, and the `Optimizer` facade can degrade to the
/// fallback schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IlpBudget {
    /// Maximum branch-and-bound nodes explored.
    pub max_nodes: usize,
    /// Maximum cumulative simplex pivots across all nodes
    /// (`u64::MAX` = unlimited).
    pub max_pivots: u64,
    /// Maximum cumulative tableau *cell updates* across all nodes
    /// (`u64::MAX` = unlimited). A pivot costs `(rows + 1) * cols` cell
    /// updates, so unlike `max_pivots` this bound scales with the tableau
    /// area — the dominant cost on the large dense Farkas systems the
    /// scheduler produces — while staying exactly deterministic across
    /// machines (unlike `wall_ms`).
    pub max_cells: u64,
    /// Wall-clock ceiling in milliseconds (`0` = unlimited). Budgets with
    /// a wall clock trade determinism for latency — results may depend on
    /// machine speed — so the deterministic pipeline paths leave it 0 and
    /// only interactive/service callers set it.
    pub wall_ms: u64,
}

impl IlpBudget {
    /// Default node cap: far above anything the scheduler's ILPs need, low
    /// enough to turn a runaway model into a typed error instead of a hang.
    pub const DEFAULT_MAX_NODES: usize = 500_000;

    /// A budget limiting only branch-and-bound nodes.
    #[must_use]
    pub fn nodes(max_nodes: usize) -> IlpBudget {
        IlpBudget {
            max_nodes,
            ..IlpBudget::default()
        }
    }
}

impl Default for IlpBudget {
    fn default() -> IlpBudget {
        IlpBudget {
            max_nodes: IlpBudget::DEFAULT_MAX_NODES,
            max_pivots: u64::MAX,
            max_cells: u64::MAX,
            wall_ms: 0,
        }
    }
}

/// Typed ILP failure: a budget ran out, or the model was unbounded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IlpError {
    /// The branch-and-bound node budget was exhausted before optimality
    /// (or infeasibility) was proven.
    NodeBudget {
        /// The limit that was hit.
        limit: usize,
    },
    /// The cumulative simplex pivot budget was exhausted.
    PivotBudget {
        /// The limit that was hit.
        limit: u64,
    },
    /// The cumulative tableau cell-update budget was exhausted.
    CellBudget {
        /// The limit that was hit.
        limit: u64,
    },
    /// The wall-clock budget was exhausted.
    Timeout {
        /// The limit that was hit, in milliseconds.
        ms: u64,
    },
    /// An objective was unbounded in the requested direction (lexicographic
    /// minimization requires bounded objectives; bound your variables).
    Unbounded {
        /// Which solve detected it.
        site: &'static str,
    },
}

impl std::fmt::Display for IlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpError::NodeBudget { limit } => {
                write!(f, "branch-and-bound node budget exhausted (limit {limit})")
            }
            IlpError::PivotBudget { limit } => {
                write!(f, "simplex pivot budget exhausted (limit {limit})")
            }
            IlpError::CellBudget { limit } => {
                write!(f, "simplex cell-update budget exhausted (limit {limit})")
            }
            IlpError::Timeout { ms } => write!(f, "ILP wall-clock budget exhausted ({ms} ms)"),
            IlpError::Unbounded { site } => write!(f, "unbounded objective in {site}"),
        }
    }
}

impl std::error::Error for IlpError {}

impl From<IlpError> for wf_harness::WfError {
    fn from(e: IlpError) -> wf_harness::WfError {
        match e {
            IlpError::NodeBudget { .. } => wf_harness::WfError::Budget {
                site: "ilp.nodes".into(),
                detail: e.to_string(),
            },
            IlpError::PivotBudget { .. } => wf_harness::WfError::Budget {
                site: "ilp.pivots".into(),
                detail: e.to_string(),
            },
            IlpError::CellBudget { .. } => wf_harness::WfError::Budget {
                site: "ilp.cells".into(),
                detail: e.to_string(),
            },
            IlpError::Timeout { .. } => wf_harness::WfError::Budget {
                site: "ilp.wall_ms".into(),
                detail: e.to_string(),
            },
            IlpError::Unbounded { site } => wf_harness::WfError::Unbounded { site: site.into() },
        }
    }
}

/// Minimize (or maximize) `objective · x` over the integer points of `cs`
/// under the default [`IlpBudget`].
///
/// # Errors
/// [`IlpError`] when the budget is exhausted before a verdict. An
/// unbounded relaxation is a normal [`IlpResult::Unbounded`] verdict here,
/// not an error — only [`lexmin`] (which must *pin* each objective at its
/// optimum) escalates unboundedness to an error.
pub fn solve_ilp(
    cs: &ConstraintSystem,
    objective: &[i128],
    sense: Sense,
) -> Result<IlpResult, IlpError> {
    solve_ilp_budgeted(cs, objective, sense, &IlpBudget::default())
}

fn first_fractional(point: &[Rat]) -> Option<(usize, Rat)> {
    point
        .iter()
        .enumerate()
        .find_map(|(i, r)| (!r.is_integer()).then_some((i, *r)))
}

/// Find any integer point of `cs`, or `None`.
///
/// Infallible convenience wrapper over [`try_ilp_feasible`] with the
/// default budget: a budget-exhausted search reports `None` (no point
/// *found*), which is what the feasibility-probing callers want. Callers
/// for whom "not found" and "proven absent" must differ (emptiness tests
/// feeding dependence analysis) use [`try_ilp_feasible`] and handle the
/// error conservatively.
#[must_use]
pub fn ilp_feasible(cs: &ConstraintSystem) -> Option<Vec<i128>> {
    try_ilp_feasible(cs, &IlpBudget::default()).unwrap_or(None)
}

/// Find any integer point of `cs` within `budget`.
///
/// Uses branch-and-bound with a zero objective; `cs` must be bounded in
/// every fractional direction that branching explores (true for all
/// callers here, which bound their variables).
///
/// Verdicts are memoized in the process-wide [`memo`](crate::memo)
/// layer (keyed by the canonical system + budget class); a hit is
/// byte-identical to the cold solve, and budget-exhausted outcomes are
/// never cached.
///
/// # Errors
/// [`IlpError`] when the budget runs out before the search concludes.
pub fn try_ilp_feasible(
    cs: &ConstraintSystem,
    budget: &IlpBudget,
) -> Result<Option<Vec<i128>>, IlpError> {
    crate::memo::feasible_cached(cs, budget, || {
        let mut span = wf_harness::span!("ilp.feasible");
        attr::annotate_span(&mut span);
        let mut nodes = 0usize;
        let mut pivots = 0u64;
        let mut cells = 0u64;
        let out = feasible_counted(cs, budget, &mut nodes, &mut pivots, &mut cells);
        record_solve(nodes, pivots, cells, out.as_ref().err());
        span.arg("cells", cells.to_string());
        out
    })
}

fn feasible_counted(
    cs: &ConstraintSystem,
    budget: &IlpBudget,
    nodes: &mut usize,
    pivots: &mut u64,
    cells: &mut u64,
) -> Result<Option<Vec<i128>>, IlpError> {
    let mut stack = vec![cs.clone()];
    let obj = vec![Rat::ZERO; cs.n_vars];
    let t0 = Instant::now();
    while let Some(node) = stack.pop() {
        *nodes += 1;
        check_budget(budget, *nodes, *pivots, *cells, &t0)?;
        let remaining = budget.max_cells.saturating_sub(*cells);
        match solve_lp_measured(&node, &obj, Sense::Min, pivots, cells, remaining) {
            LpResult::Infeasible => {}
            LpResult::Exhausted => {
                return Err(IlpError::CellBudget {
                    limit: budget.max_cells,
                })
            }
            // A zero objective can never improve, so an unbounded verdict
            // here means the LP layer broke an invariant; surface it as a
            // typed error rather than crashing the process.
            LpResult::Unbounded => {
                return Err(IlpError::Unbounded {
                    site: "ilp_feasible (zero objective)",
                })
            }
            LpResult::Optimal { point, .. } => match first_fractional(&point) {
                None => {
                    return Ok(Some(
                        point.iter().map(|r| r.to_integer().unwrap()).collect(),
                    ))
                }
                Some((v, val)) => {
                    let mut lo = node.clone();
                    lo.add_upper_bound(v, val.floor());
                    let mut hi = node;
                    hi.add_lower_bound(v, val.ceil());
                    stack.push(lo);
                    stack.push(hi);
                }
            },
        }
    }
    Ok(None)
}

/// Lexicographic minimization: minimize `objectives[0]`, then among its
/// optima minimize `objectives[1]`, and so on. Returns the optimal values
/// and a point attaining them, `Ok(None)` when infeasible.
///
/// This is PLuTo's use of PIP: the cost vector `(u, w, Σc)` is minimized
/// lexicographically over the integer points of the Farkas-eliminated
/// legality polyhedron.
///
/// # Errors
/// [`IlpError::Unbounded`] when an objective is unbounded below (bound
/// your variables), or a budget error under the default [`IlpBudget`].
pub fn lexmin(cs: &ConstraintSystem, objectives: &[Vec<i128>]) -> Result<LexMin, IlpError> {
    lexmin_budgeted(cs, objectives, &IlpBudget::default())
}

/// [`lexmin`] success payload: the per-level optimal objective values and
/// an integer point attaining them, or `None` when infeasible.
pub type LexMin = Option<(Vec<i128>, Vec<i128>)>;

/// [`lexmin`] with an explicit resource budget. Exhaustion returns a typed
/// [`IlpError`]; callers (the scheduler) treat that like infeasibility and
/// fall back to loop distribution, which keeps pathological fusion ILPs
/// from stalling the compiler (PLuTo has analogous practical limits).
///
/// Verdicts are memoized in the process-wide [`memo`](crate::memo)
/// layer keyed by the canonical system, objectives, and budget class; a
/// whole-lexmin hit skips every per-objective ILP inside. Hits are
/// byte-identical to cold solves; errors are never cached.
pub fn lexmin_budgeted(
    cs: &ConstraintSystem,
    objectives: &[Vec<i128>],
    budget: &IlpBudget,
) -> Result<LexMin, IlpError> {
    crate::memo::lexmin_cached(cs, objectives, budget, || {
        let mut span = wf_harness::span!("ilp.lexmin");
        attr::annotate_span(&mut span);
        let mut work = cs.clone();
        let mut values = Vec::with_capacity(objectives.len());
        let mut point = None;
        for obj in objectives {
            match solve_ilp_budgeted(&work, obj, Sense::Min, budget)? {
                IlpResult::Infeasible => return Ok(None),
                IlpResult::Unbounded => return Err(IlpError::Unbounded { site: "lexmin" }),
                IlpResult::Optimal { value, point: p } => {
                    let v = value
                        .to_integer()
                        .expect("integer objective at integer point");
                    values.push(v);
                    // Pin this objective to its optimum for subsequent levels.
                    let mut row: Vec<i128> = obj.clone();
                    row.push(-v);
                    work.add_eq0(row);
                    point = Some(p);
                }
            }
        }
        Ok(point.map(|p| (values, p)))
    })
}

/// One budget check per branch-and-bound node; also the seeded
/// fault-injection point for [`FaultKind::Budget`] faults (`WF_FAULT`),
/// which surface as a node-budget error on the first node.
fn check_budget(
    budget: &IlpBudget,
    nodes: usize,
    pivots: u64,
    cells: u64,
    t0: &Instant,
) -> Result<(), IlpError> {
    if nodes == 1 && fault::should_inject("ilp.solve", FaultKind::Budget) {
        return Err(IlpError::NodeBudget {
            limit: budget.max_nodes,
        });
    }
    if nodes > budget.max_nodes {
        return Err(IlpError::NodeBudget {
            limit: budget.max_nodes,
        });
    }
    if pivots > budget.max_pivots {
        return Err(IlpError::PivotBudget {
            limit: budget.max_pivots,
        });
    }
    if cells > budget.max_cells {
        return Err(IlpError::CellBudget {
            limit: budget.max_cells,
        });
    }
    if budget.wall_ms > 0 && u128::from(budget.wall_ms) < t0.elapsed().as_millis() {
        return Err(IlpError::Timeout { ms: budget.wall_ms });
    }
    Ok(())
}

/// [`solve_ilp`] with an explicit resource budget.
///
/// # Errors
/// [`IlpError`] on budget exhaustion (never on unboundedness — that is the
/// [`IlpResult::Unbounded`] verdict).
pub fn solve_ilp_budgeted(
    cs: &ConstraintSystem,
    objective: &[i128],
    sense: Sense,
    budget: &IlpBudget,
) -> Result<IlpResult, IlpError> {
    let mut nodes = 0usize;
    let mut pivots = 0u64;
    let mut cells = 0u64;
    let out = solve_counted(
        cs,
        objective,
        sense,
        budget,
        &mut nodes,
        &mut pivots,
        &mut cells,
    );
    record_solve(nodes, pivots, cells, out.as_ref().err());
    out
}

#[allow(clippy::too_many_arguments)]
fn solve_counted(
    cs: &ConstraintSystem,
    objective: &[i128],
    sense: Sense,
    budget: &IlpBudget,
    nodes: &mut usize,
    pivots: &mut u64,
    cells: &mut u64,
) -> Result<IlpResult, IlpError> {
    assert_eq!(objective.len(), cs.n_vars, "objective arity mismatch");
    let minimize: Vec<i128> = match sense {
        Sense::Min => objective.to_vec(),
        Sense::Max => objective.iter().map(|&c| -c).collect(),
    };
    let obj_rat: Vec<Rat> = minimize.iter().map(|&c| Rat::int(c)).collect();
    let mut best: Option<(Rat, Vec<i128>)> = None;
    let mut stack = vec![cs.clone()];
    let t0 = Instant::now();
    while let Some(node) = stack.pop() {
        *nodes += 1;
        check_budget(budget, *nodes, *pivots, *cells, &t0)?;
        let remaining = budget.max_cells.saturating_sub(*cells);
        match solve_lp_measured(&node, &obj_rat, Sense::Min, pivots, cells, remaining) {
            LpResult::Infeasible => {}
            LpResult::Unbounded => return Ok(IlpResult::Unbounded),
            LpResult::Exhausted => {
                return Err(IlpError::CellBudget {
                    limit: budget.max_cells,
                })
            }
            LpResult::Optimal { value, point } => {
                if let Some((bv, _)) = &best {
                    if value >= *bv {
                        continue;
                    }
                }
                match first_fractional(&point) {
                    None => {
                        let ipoint: Vec<i128> =
                            point.iter().map(|r| r.to_integer().unwrap()).collect();
                        best = Some((value, ipoint));
                    }
                    Some((v, val)) => {
                        let mut lo = node.clone();
                        lo.add_upper_bound(v, val.floor());
                        let mut hi = node;
                        hi.add_lower_bound(v, val.ceil());
                        stack.push(lo);
                        stack.push(hi);
                    }
                }
            }
        }
    }
    Ok(match best {
        None => IlpResult::Infeasible,
        Some((value, point)) => {
            let value = match sense {
                Sense::Min => value,
                Sense::Max => -value,
            };
            IlpResult::Optimal { value, point }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_prefers_integer_vertex() {
        // max x + y s.t. 2x + y <= 4, x + 2y <= 4 (LP opt 8/3 at (4/3,4/3));
        // integer optimum is 2 at e.g. (2,0).
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-2, -1, 4]);
        cs.add_ge0(vec![-1, -2, 4]);
        let r = solve_ilp(&cs, &[1, 1], Sense::Max).unwrap();
        assert_eq!(r.value(), Some(Rat::int(2)));
        let p = r.point().unwrap();
        assert_eq!(p[0] + p[1], 2);
    }

    #[test]
    fn ilp_detects_integer_infeasibility() {
        // 1/3 <= x <= 2/3 has rational but no integer points:
        // 3x - 1 >= 0 and 2 - 3x >= 0.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![3, -1]);
        cs.add_ge0(vec![-3, 2]);
        assert_eq!(
            solve_ilp(&cs, &[1], Sense::Min).unwrap(),
            IlpResult::Infeasible
        );
        assert!(ilp_feasible(&cs).is_none());
    }

    #[test]
    fn ilp_feasible_finds_point() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 2);
        cs.add_upper_bound(0, 2);
        cs.add_eq0(vec![1, -1, 0]); // y == x
        let p = ilp_feasible(&cs).expect("feasible");
        assert_eq!(p, vec![2, 2]);
    }

    #[test]
    fn ilp_equality_scaled() {
        // 2x == 3 has no integer solution.
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq0(vec![2, -3]);
        assert!(ilp_feasible(&cs).is_none());
    }

    #[test]
    fn ilp_unbounded_direction() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        assert_eq!(
            solve_ilp(&cs, &[1], Sense::Max).unwrap(),
            IlpResult::Unbounded
        );
    }

    #[test]
    fn lexmin_orders_objectives() {
        // Over 0<=x<=3, 0<=y<=3 with x+y>=3: lexmin (x, y) -> x=0 then y=3.
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 3);
        cs.add_lower_bound(1, 0);
        cs.add_upper_bound(1, 3);
        cs.add_ge0(vec![1, 1, -3]);
        let (vals, point) = lexmin(&cs, &[vec![1, 0], vec![0, 1]])
            .unwrap()
            .expect("feasible");
        assert_eq!(vals, vec![0, 3]);
        assert_eq!(point, vec![0, 3]);
    }

    #[test]
    fn lexmin_second_objective_constrained_by_first() {
        // min (x+y) then min x over x,y in [0,5], x+y >= 4:
        // first opt: x+y = 4; then min x = 0 => (0,4).
        let mut cs = ConstraintSystem::new(2);
        for v in 0..2 {
            cs.add_lower_bound(v, 0);
            cs.add_upper_bound(v, 5);
        }
        cs.add_ge0(vec![1, 1, -4]);
        let (vals, point) = lexmin(&cs, &[vec![1, 1], vec![1, 0]])
            .unwrap()
            .expect("feasible");
        assert_eq!(vals, vec![4, 0]);
        assert_eq!(point, vec![0, 4]);
    }

    #[test]
    fn lexmin_infeasible_is_none() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 2);
        cs.add_upper_bound(0, 1);
        assert!(lexmin(&cs, &[vec![1]]).unwrap().is_none());
    }

    #[test]
    fn ilp_matches_exhaustive_on_small_box() {
        // min 3x - 2y + z over a box with a coupling constraint; brute force
        // the answer.
        let mut cs = ConstraintSystem::new(3);
        for v in 0..3 {
            cs.add_lower_bound(v, -2);
            cs.add_upper_bound(v, 2);
        }
        cs.add_ge0(vec![1, 1, 1, 1]); // x+y+z >= -1
        let mut best = i128::MAX;
        for x in -2..=2 {
            for y in -2..=2 {
                for z in -2..=2 {
                    if x + y + z >= -1 {
                        best = best.min(3 * x - 2 * y + z);
                    }
                }
            }
        }
        let r = solve_ilp(&cs, &[3, -2, 1], Sense::Min).unwrap();
        assert_eq!(r.value(), Some(Rat::int(best)));
    }
}
