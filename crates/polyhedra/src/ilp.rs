//! Integer linear programming by branch-and-bound over the exact simplex,
//! plus lexicographic multi-objective minimization (the PIP stand-in used by
//! the scheduler).

use crate::constraint::ConstraintSystem;
use crate::simplex::{solve_lp, LpResult, Sense};
use wf_linalg::Rat;

/// Result of an ILP solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IlpResult {
    /// No integer point satisfies the constraints.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded in the requested
    /// direction.
    Unbounded,
    /// Integer optimum.
    Optimal {
        /// Optimal objective value.
        value: Rat,
        /// An integer point attaining it.
        point: Vec<i128>,
    },
}

impl IlpResult {
    /// The optimal point, if any.
    #[must_use]
    pub fn point(&self) -> Option<&[i128]> {
        match self {
            IlpResult::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// The optimal value, if any.
    #[must_use]
    pub fn value(&self) -> Option<Rat> {
        match self {
            IlpResult::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// Hard cap on branch-and-bound nodes; the scheduler's ILPs are tiny, so
/// hitting this indicates a modelling bug and we'd rather panic than hang.
const MAX_NODES: usize = 500_000;

/// Minimize (or maximize) `objective · x` over the integer points of `cs`.
///
/// The search requires the relaxation to be bounded in the objective
/// direction; branching variables must also be bounded for termination
/// (all scheduler ILPs bound every variable explicitly).
#[must_use]
pub fn solve_ilp(cs: &ConstraintSystem, objective: &[i128], sense: Sense) -> IlpResult {
    solve_ilp_budgeted(cs, objective, sense, MAX_NODES)
        .expect("ILP node budget exceeded — unbounded branching?")
}

fn first_fractional(point: &[Rat]) -> Option<(usize, Rat)> {
    point
        .iter()
        .enumerate()
        .find_map(|(i, r)| (!r.is_integer()).then_some((i, *r)))
}

/// Find any integer point of `cs`, or `None`.
///
/// Uses branch-and-bound with a zero objective; `cs` must be bounded in every
/// fractional direction that branching explores (true for all callers here,
/// which bound their variables).
#[must_use]
pub fn ilp_feasible(cs: &ConstraintSystem) -> Option<Vec<i128>> {
    let mut stack = vec![cs.clone()];
    let obj = vec![Rat::ZERO; cs.n_vars];
    let mut nodes = 0usize;
    while let Some(node) = stack.pop() {
        nodes += 1;
        assert!(
            nodes <= MAX_NODES,
            "ILP node budget exceeded — unbounded branching?"
        );
        match solve_lp(&node, &obj, Sense::Min) {
            LpResult::Infeasible => {}
            LpResult::Unbounded => unreachable!("zero objective is never unbounded"),
            LpResult::Optimal { point, .. } => match first_fractional(&point) {
                None => return Some(point.iter().map(|r| r.to_integer().unwrap()).collect()),
                Some((v, val)) => {
                    let mut lo = node.clone();
                    lo.add_upper_bound(v, val.floor());
                    let mut hi = node;
                    hi.add_lower_bound(v, val.ceil());
                    stack.push(lo);
                    stack.push(hi);
                }
            },
        }
    }
    None
}

/// Lexicographic minimization: minimize `objectives[0]`, then among its
/// optima minimize `objectives[1]`, and so on. Returns the optimal values
/// and a point attaining them.
///
/// This is PLuTo's use of PIP: the cost vector `(u, w, Σc)` is minimized
/// lexicographically over the integer points of the Farkas-eliminated
/// legality polyhedron.
#[must_use]
pub fn lexmin(cs: &ConstraintSystem, objectives: &[Vec<i128>]) -> Option<(Vec<i128>, Vec<i128>)> {
    lexmin_budgeted(cs, objectives, MAX_NODES).unwrap_or_default()
}

/// [`lexmin`] with an explicit branch-and-bound node budget. Returns
/// `Err(())` when the budget is exhausted before optimality was proven —
/// callers (the scheduler) treat that like infeasibility and fall back to
/// loop distribution, which keeps pathological fusion ILPs from stalling
/// the compiler (PLuTo has analogous practical limits).
#[allow(clippy::result_unit_err, clippy::type_complexity)]
pub fn lexmin_budgeted(
    cs: &ConstraintSystem,
    objectives: &[Vec<i128>],
    node_budget: usize,
) -> Result<Option<(Vec<i128>, Vec<i128>)>, ()> {
    let mut work = cs.clone();
    let mut values = Vec::with_capacity(objectives.len());
    let mut point = None;
    for obj in objectives {
        match solve_ilp_budgeted(&work, obj, Sense::Min, node_budget) {
            Err(()) => return Err(()),
            Ok(IlpResult::Infeasible) => return Ok(None),
            Ok(IlpResult::Unbounded) => {
                panic!("lexmin: unbounded objective — bound your variables")
            }
            Ok(IlpResult::Optimal { value, point: p }) => {
                let v = value
                    .to_integer()
                    .expect("integer objective at integer point");
                values.push(v);
                // Pin this objective to its optimum for subsequent levels.
                let mut row: Vec<i128> = obj.clone();
                row.push(-v);
                work.add_eq0(row);
                point = Some(p);
            }
        }
    }
    Ok(point.map(|p| (values, p)))
}

/// [`solve_ilp`] with an explicit node budget; `Err(())` on exhaustion.
#[allow(clippy::result_unit_err)]
pub fn solve_ilp_budgeted(
    cs: &ConstraintSystem,
    objective: &[i128],
    sense: Sense,
    node_budget: usize,
) -> Result<IlpResult, ()> {
    assert_eq!(objective.len(), cs.n_vars, "objective arity mismatch");
    let minimize: Vec<i128> = match sense {
        Sense::Min => objective.to_vec(),
        Sense::Max => objective.iter().map(|&c| -c).collect(),
    };
    let obj_rat: Vec<Rat> = minimize.iter().map(|&c| Rat::int(c)).collect();
    let mut best: Option<(Rat, Vec<i128>)> = None;
    let mut stack = vec![cs.clone()];
    let mut nodes = 0usize;
    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > node_budget {
            return Err(());
        }
        match solve_lp(&node, &obj_rat, Sense::Min) {
            LpResult::Infeasible => {}
            LpResult::Unbounded => return Ok(IlpResult::Unbounded),
            LpResult::Optimal { value, point } => {
                if let Some((bv, _)) = &best {
                    if value >= *bv {
                        continue;
                    }
                }
                match first_fractional(&point) {
                    None => {
                        let ipoint: Vec<i128> =
                            point.iter().map(|r| r.to_integer().unwrap()).collect();
                        best = Some((value, ipoint));
                    }
                    Some((v, val)) => {
                        let mut lo = node.clone();
                        lo.add_upper_bound(v, val.floor());
                        let mut hi = node;
                        hi.add_lower_bound(v, val.ceil());
                        stack.push(lo);
                        stack.push(hi);
                    }
                }
            }
        }
    }
    Ok(match best {
        None => IlpResult::Infeasible,
        Some((value, point)) => {
            let value = match sense {
                Sense::Min => value,
                Sense::Max => -value,
            };
            IlpResult::Optimal { value, point }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_prefers_integer_vertex() {
        // max x + y s.t. 2x + y <= 4, x + 2y <= 4 (LP opt 8/3 at (4/3,4/3));
        // integer optimum is 2 at e.g. (2,0).
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_lower_bound(1, 0);
        cs.add_ge0(vec![-2, -1, 4]);
        cs.add_ge0(vec![-1, -2, 4]);
        let r = solve_ilp(&cs, &[1, 1], Sense::Max);
        assert_eq!(r.value(), Some(Rat::int(2)));
        let p = r.point().unwrap();
        assert_eq!(p[0] + p[1], 2);
    }

    #[test]
    fn ilp_detects_integer_infeasibility() {
        // 1/3 <= x <= 2/3 has rational but no integer points:
        // 3x - 1 >= 0 and 2 - 3x >= 0.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ge0(vec![3, -1]);
        cs.add_ge0(vec![-3, 2]);
        assert_eq!(solve_ilp(&cs, &[1], Sense::Min), IlpResult::Infeasible);
        assert!(ilp_feasible(&cs).is_none());
    }

    #[test]
    fn ilp_feasible_finds_point() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 2);
        cs.add_upper_bound(0, 2);
        cs.add_eq0(vec![1, -1, 0]); // y == x
        let p = ilp_feasible(&cs).expect("feasible");
        assert_eq!(p, vec![2, 2]);
    }

    #[test]
    fn ilp_equality_scaled() {
        // 2x == 3 has no integer solution.
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq0(vec![2, -3]);
        assert!(ilp_feasible(&cs).is_none());
    }

    #[test]
    fn ilp_unbounded_direction() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 0);
        assert_eq!(solve_ilp(&cs, &[1], Sense::Max), IlpResult::Unbounded);
    }

    #[test]
    fn lexmin_orders_objectives() {
        // Over 0<=x<=3, 0<=y<=3 with x+y>=3: lexmin (x, y) -> x=0 then y=3.
        let mut cs = ConstraintSystem::new(2);
        cs.add_lower_bound(0, 0);
        cs.add_upper_bound(0, 3);
        cs.add_lower_bound(1, 0);
        cs.add_upper_bound(1, 3);
        cs.add_ge0(vec![1, 1, -3]);
        let (vals, point) = lexmin(&cs, &[vec![1, 0], vec![0, 1]]).expect("feasible");
        assert_eq!(vals, vec![0, 3]);
        assert_eq!(point, vec![0, 3]);
    }

    #[test]
    fn lexmin_second_objective_constrained_by_first() {
        // min (x+y) then min x over x,y in [0,5], x+y >= 4:
        // first opt: x+y = 4; then min x = 0 => (0,4).
        let mut cs = ConstraintSystem::new(2);
        for v in 0..2 {
            cs.add_lower_bound(v, 0);
            cs.add_upper_bound(v, 5);
        }
        cs.add_ge0(vec![1, 1, -4]);
        let (vals, point) = lexmin(&cs, &[vec![1, 1], vec![1, 0]]).expect("feasible");
        assert_eq!(vals, vec![4, 0]);
        assert_eq!(point, vec![0, 4]);
    }

    #[test]
    fn lexmin_infeasible_is_none() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_lower_bound(0, 2);
        cs.add_upper_bound(0, 1);
        assert!(lexmin(&cs, &[vec![1]]).is_none());
    }

    #[test]
    fn ilp_matches_exhaustive_on_small_box() {
        // min 3x - 2y + z over a box with a coupling constraint; brute force
        // the answer.
        let mut cs = ConstraintSystem::new(3);
        for v in 0..3 {
            cs.add_lower_bound(v, -2);
            cs.add_upper_bound(v, 2);
        }
        cs.add_ge0(vec![1, 1, 1, 1]); // x+y+z >= -1
        let mut best = i128::MAX;
        for x in -2..=2 {
            for y in -2..=2 {
                for z in -2..=2 {
                    if x + y + z >= -1 {
                        best = best.min(3 * x - 2 * y + z);
                    }
                }
            }
        }
        let r = solve_ilp(&cs, &[3, -2, 1], Sense::Min);
        assert_eq!(r.value(), Some(Rat::int(best)));
    }
}
