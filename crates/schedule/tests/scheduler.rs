//! End-to-end tests of the PLuTo-style scheduler with the baseline fusion
//! models.

#![allow(clippy::needless_range_loop)]

use wf_deps::analyze;
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, Maxfuse, Nofuse, PlutoConfig, Smartfuse};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};

fn cfg() -> PlutoConfig {
    PlutoConfig::default()
}

/// for i: A[i] = 1;
/// for i: B[i] = A[i];
fn producer_consumer() -> Scop {
    let mut b = ScopBuilder::new("pc", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let bb = b.array("B", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Const(1.0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(bb, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::Load(0))
        .done();
    b.build()
}

/// The gemver S1/S2 core (Figure 1): fusion requires interchanging one of
/// the nests because S2 reads A transposed.
fn gemver_core() -> Scop {
    let mut b = ScopBuilder::new("gemver2", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let u1 = b.array("u1", &[Aff::param(0)]);
    let v1 = b.array("v1", &[Aff::param(0)]);
    let x = b.array("x", &[Aff::param(0)]);
    let y = b.array("y", &[Aff::param(0)]);
    // S1: A[i][j] = A[i][j] + u1[i]*v1[j]
    b.stmt("S1", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1)])
        .read(u1, &[Aff::iter(0)])
        .read(v1, &[Aff::iter(1)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    // S2: x[i] = x[i] + A[j][i]*y[j]
    b.stmt("S2", 2, &[1, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(x, &[Aff::iter(0)])
        .read(x, &[Aff::iter(0)])
        .read(a, &[Aff::iter(1), Aff::iter(0)])
        .read(y, &[Aff::iter(1)])
        .rhs(Expr::add(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    b.build()
}

/// advect-like pattern (Figure 4): producer nest then a symmetric-stencil
/// consumer nest. Maximal fusion needs a shift and turns the loop into a
/// forward-dependence (pipelined) loop.
fn advect_like() -> Scop {
    let mut b = ScopBuilder::new("advect2", &["N"]);
    b.context_ge(Aff::param(0) - 8);
    let a = b.array("A", &[Aff::param(0)]);
    let out = b.array("B", &[Aff::param(0)]);
    b.stmt("S1", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S4", 1, &[1, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 2)
        .write(out, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .read(a, &[Aff::iter(0) + 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
        .done();
    b.build()
}

#[test]
fn maxfuse_fuses_producer_consumer() {
    let scop = producer_consumer();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Maxfuse, &cfg()).expect("schedulable");
    assert_eq!(
        t.partitions,
        vec![0, 0],
        "statements should share a partition"
    );
    // Both rows at the loop dim should be identity (i).
    let d = t.schedule.loop_dims()[0];
    assert_eq!(t.schedule.rows[d][0].coeffs, vec![1]);
    assert_eq!(t.schedule.rows[d][1].coeffs, vec![1]);
    // Loop is parallel: the flow dep is loop-independent after fusion.
    let p = props::analyze(&scop, &ddg, &t);
    assert_eq!(p[d][0], Some(LoopProp::Parallel));
}

#[test]
fn nofuse_distributes_producer_consumer() {
    let scop = producer_consumer();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Nofuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 1], "nofuse must distribute");
}

#[test]
fn smartfuse_fuses_same_dimensionality() {
    let scop = producer_consumer();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Smartfuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 0]);
}

#[test]
fn gemver_fusion_requires_interchange() {
    let scop = gemver_core();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Smartfuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 0], "S1 and S2 fuse (paper Fig. 1c)");
    // The two statements' outer hyperplanes must be transposed relative to
    // each other: S2's outer row equals S1's inner row pattern.
    let dims = t.schedule.loop_dims();
    let outer = dims[0];
    let r1 = &t.schedule.rows[outer][0];
    let r2 = &t.schedule.rows[outer][1];
    assert_ne!(
        r1.coeffs, r2.coeffs,
        "one nest must be interchanged, got {r1:?} / {r2:?}"
    );
    // Outer loop stays parallel (communication-free fusion).
    let p = props::analyze(&scop, &ddg, &t);
    assert_eq!(p[outer][0], Some(LoopProp::Parallel));
    assert_eq!(p[outer][1], Some(LoopProp::Parallel));
}

#[test]
fn advect_maxfuse_shifts_and_goes_pipelined() {
    let scop = advect_like();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Maxfuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 0], "maxfuse fuses everything");
    let d = t.schedule.loop_dims()[0];
    let (r1, r4) = (&t.schedule.rows[d][0], &t.schedule.rows[d][1]);
    // S4 must be shifted at least one iteration after S1.
    assert!(
        r4.konst - r1.konst >= 1,
        "shift expected: S1 {r1:?}, S4 {r4:?}"
    );
    // And the fused loop is a forward-dependence loop (pipelined), the
    // situation Figure 4(c) shows: coarse-grained parallelism lost.
    let p = props::analyze(&scop, &ddg, &t);
    assert_eq!(p[d][0], Some(LoopProp::Forward));
}

#[test]
fn advect_nofuse_keeps_parallel_nests() {
    let scop = advect_like();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Nofuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 1]);
    let p = props::analyze(&scop, &ddg, &t);
    for d in t.schedule.loop_dims() {
        for s in 0..2 {
            assert_eq!(p[d][s], Some(LoopProp::Parallel), "dim {d} stmt {s}");
        }
    }
}

/// lu-like triangular update: for k, for i > k, for j > k:
///   A[i][j] = A[i][j] - A[i][k]*A[k][j]
/// One statement, non-rectangular domain, self-dependences carried by k.
#[test]
fn triangular_self_dependences_schedule() {
    let mut b = ScopBuilder::new("lu-ish", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 3, &[0, 0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::iter(0) + 1, Aff::param(0) - 1)
        .bounds(2, Aff::iter(0) + 1, Aff::param(0) - 1)
        .write(a, &[Aff::iter(1), Aff::iter(2)])
        .read(a, &[Aff::iter(1), Aff::iter(2)])
        .read(a, &[Aff::iter(1), Aff::iter(0)])
        .read(a, &[Aff::iter(0), Aff::iter(2)])
        .rhs(Expr::sub(
            Expr::Load(0),
            Expr::mul(Expr::Load(1), Expr::Load(2)),
        ))
        .done();
    let scop = b.build();
    let ddg = analyze(&scop);
    assert!(!ddg.edges.is_empty());
    let t = schedule_scop(&scop, &ddg, &Smartfuse, &cfg()).expect("schedulable");
    // Full-depth schedule found.
    assert_eq!(t.schedule.loop_dims().len(), 3);
}

/// Statements of different dimensionality: smartfuse cuts them apart
/// pre-emptively, maxfuse is free to try fusing.
#[test]
fn smartfuse_cuts_dimensionality_mismatch() {
    let mut b = ScopBuilder::new("mixdim", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let r = b.array("r", &[Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .rhs(Expr::Const(1.0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(r, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0), Aff::zero()])
        .rhs(Expr::Load(0))
        .done();
    let scop = b.build();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Smartfuse, &cfg()).expect("schedulable");
    assert_eq!(t.partitions, vec![0, 1], "different dims must be cut apart");
}

/// The schedule respects original semantics on a sampled instance basis:
/// every dependence pair must be lexicographically ordered. (The engine
/// verifies this internally; here we re-check from the outside on points.)
#[test]
fn sampled_instances_are_ordered() {
    for scop in [producer_consumer(), gemver_core(), advect_like()] {
        let ddg = analyze(&scop);
        for strat in [
            &Maxfuse as &dyn wf_schedule::FusionStrategy,
            &Nofuse,
            &Smartfuse,
        ] {
            let t = schedule_scop(&scop, &ddg, strat, &cfg()).expect("schedulable");
            for edge in &ddg.edges {
                // Sample a few integer points of the dependence polyhedron
                // with N pinned small.
                let mut cs = edge.poly.cs.clone();
                let nv = cs.n_vars;
                cs.add_fixed(nv - 1, 9); // N = 9 (all fixtures have context N >= 4 or 8)
                let pts = wf_polyhedra::Polyhedron::from(cs).enumerate(500).unwrap();
                assert!(!pts.is_empty(), "dep poly empty at N=9?");
                for p in pts {
                    let s_iters = &p[..edge.src_depth];
                    let t_iters = &p[edge.src_depth..edge.src_depth + edge.dst_depth];
                    let vs = t.schedule.apply(edge.src, s_iters);
                    let vt = t.schedule.apply(edge.dst, t_iters);
                    assert!(
                        vt > vs,
                        "{}: dep {}->{} unordered: {vs:?} !< {vt:?} (strategy {})",
                        scop.name,
                        edge.src,
                        edge.dst,
                        t.strategy
                    );
                }
            }
        }
    }
}
