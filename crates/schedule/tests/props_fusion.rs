//! Unit tests for the loop-property analysis and fusion-helper functions.

use wf_deps::analyze;
use wf_schedule::fusion::{dfs_order, program_order};
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{schedule_scop, Maxfuse, Nofuse, PlutoConfig};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};

/// Carried recurrence: its loop must classify as Forward under any model.
fn recurrence() -> Scop {
    let mut b = ScopBuilder::new("rec", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Const(1.0)))
        .done();
    b.build()
}

#[test]
fn recurrence_loop_is_forward() {
    let scop = recurrence();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Nofuse, &PlutoConfig::default()).unwrap();
    let p = props::analyze(&scop, &ddg, &t);
    let d = t.schedule.loop_dims()[0];
    assert_eq!(p[d][0], Some(LoopProp::Forward));
    assert!(!props::outer_parallel(&p, &t.schedule));
}

/// A 2-D statement whose recurrence is only on the inner axis: outer stays
/// parallel.
#[test]
fn outer_parallel_inner_forward() {
    let mut b = ScopBuilder::new("mix", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::konst(1), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1) - 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Const(1.0)))
        .done();
    let scop = b.build();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Maxfuse, &PlutoConfig::default()).unwrap();
    let p = props::analyze(&scop, &ddg, &t);
    let dims = t.schedule.loop_dims();
    assert_eq!(p[dims[0]][0], Some(LoopProp::Parallel), "outer parallel");
    assert_eq!(p[dims[1]][0], Some(LoopProp::Forward), "inner carries");
    assert!(props::outer_parallel(&p, &t.schedule));
}

/// Scalar dimensions never get a loop property.
#[test]
fn scalar_dims_have_no_props() {
    let scop = recurrence();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Nofuse, &PlutoConfig::default()).unwrap();
    let p = props::analyze(&scop, &ddg, &t);
    for (d, kind) in t.schedule.dims.iter().enumerate() {
        if *kind == wf_schedule::DimKind::Scalar {
            assert!(p[d].iter().all(Option::is_none), "dim {d}");
        }
    }
}

/// program_order is the identity on canonical SCC ids; dfs_order is always
/// a permutation.
#[test]
fn order_helpers_are_permutations() {
    let mut b = ScopBuilder::new("t", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    let d = b.array("D", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Const(1.0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0)])
        .rhs(Expr::Const(2.0))
        .done();
    b.stmt("S2", 1, &[2, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(d, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::Load(0))
        .done();
    let scop = b.build();
    let ddg = analyze(&scop);
    let sccs = wf_deps::tarjan(&ddg);
    assert_eq!(program_order(&sccs), vec![0, 1, 2]);
    let mut dfs = dfs_order(&ddg, &sccs);
    dfs.sort_unstable();
    assert_eq!(dfs, vec![0, 1, 2]);
}

/// Bands: consecutive loop dims of a deep nest share a band; a cut breaks
/// the band.
#[test]
fn band_structure_breaks_at_cuts() {
    let mut b = ScopBuilder::new("bands", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0), Aff::param(0)]);
    let r = b.array("r", &[Aff::param(0)]);
    b.stmt("S0", 2, &[0, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0), Aff::iter(1)])
        .rhs(Expr::Const(1.0))
        .done();
    // Different dimensionality: forces a cut under Nofuse anyway.
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(r, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0), Aff::zero()])
        .rhs(Expr::Load(0))
        .done();
    b.stmt("S2", 2, &[2, 0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .bounds(1, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0), Aff::iter(1)])
        .read(a, &[Aff::iter(0), Aff::iter(1)])
        .rhs(Expr::Load(0))
        .done();
    let scop = b.build();
    let ddg = analyze(&scop);
    let t = schedule_scop(&scop, &ddg, &Nofuse, &PlutoConfig::default()).unwrap();
    // Every Loop dim belongs to a band; scalar dims to none.
    for (d, kind) in t.schedule.dims.iter().enumerate() {
        match kind {
            wf_schedule::DimKind::Loop => assert!(t.band_of_dim[d].is_some(), "dim {d}"),
            wf_schedule::DimKind::Scalar => assert!(t.band_of_dim[d].is_none(), "dim {d}"),
        }
    }
}
