//! The level-by-level hyperplane search (Bondhugula's algorithm), with
//! pluggable fusion strategies.
//!
//! At each level we try to find, for every statement, a legal loop
//! hyperplane `φ_S(i) = c·i + c0` such that for every not-yet-satisfied
//! dependence `e: S_i → S_j`:
//!
//! * legality: `φ_Sj(t) − φ_Si(s) ≥ 0` on `P_e`,
//! * bounding: `u·n + w − (φ_Sj(t) − φ_Si(s)) ≥ 0` on `P_e`,
//!
//! both via the Farkas lemma, minimizing `(Σu, w, Σc, …)` lexicographically
//! (PLuTo's communication-volume cost function). If no hyperplane exists,
//! the active [`FusionStrategy`] chooses a *cut*: a scalar dimension
//! distributing the SCCs (ordered by the strategy's pre-fusion schedule)
//! into separate fusion partitions, which satisfies the crossing
//! dependences. Fusion is thus decided implicitly — exactly the mechanism
//! the paper describes in §2.2.

use crate::farkas::{nonneg_over, LinForm};
use crate::fusion::FusionStrategy;
use crate::transform::{DimKind, Schedule, StmtRow};
use std::collections::BTreeSet;
use wf_deps::{tarjan, Ddg, DepEdge, SccInfo};
use wf_harness::{attr, obs};
use wf_linalg::RatMat;
use wf_polyhedra::poly::Extremum;
use wf_polyhedra::ConstraintSystem;
use wf_scop::Scop;

/// Render candidate per-statement hyperplane rows compactly for the
/// decision log: `"S0:[1,0]+0 S1:[1]+2"`.
#[must_use]
pub fn rows_summary(rows: &[StmtRow]) -> String {
    rows.iter()
        .enumerate()
        .map(|(s, r)| {
            let coeffs: Vec<String> = r.coeffs.iter().map(ToString::to_string).collect();
            format!("S{s}:[{}]+{}", coeffs.join(","), r.konst)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Tunables for the hyperplane search.
#[derive(Clone, Copy, Debug)]
pub struct PlutoConfig {
    /// Upper bound on loop-coefficient magnitudes (PLuTo bounds these too).
    pub coeff_bound: i128,
    /// Upper bound on constant shifts.
    pub shift_bound: i128,
    /// Upper bound on the parametric bounding coefficients `u`.
    pub u_bound: i128,
    /// Upper bound on the constant bounding coefficient `w`.
    pub w_bound: i128,
    /// Safety valve on main-loop iterations.
    pub max_iters: usize,
    /// Branch-and-bound node budget per hyperplane ILP; exhausted budgets
    /// are treated as infeasible (the strategy then cuts), so pathological
    /// fusion ILPs degrade to loop distribution instead of stalling.
    pub ilp_node_budget: usize,
    /// Tableau cell-update budget per hyperplane ILP (pivots weighted by
    /// tableau area, enforced inside each LP). The node budget alone misses
    /// the pathology where a *few* nodes each pivot a huge dense Farkas
    /// tableau — exact-rational arithmetic makes those solves seconds to
    /// minutes each — so this caps total arithmetic work deterministically;
    /// exhaustion degrades to loop distribution exactly like a node-budget
    /// hit. The default sits ~4x above the heaviest catalog solve
    /// (gemsfdtd under maxfuse, ~1.1e9 cells), so only runaway inputs —
    /// fuzzer-generated or adversarial `.wfs` files — ever trip it.
    pub ilp_cell_budget: u64,
    /// Components larger than this are distributed without attempting the
    /// fusion ILP (whose exact-rational LPs grow cubically with component
    /// size). PLuTo has analogous practical limits; the paper's fusion
    /// wins all come from much smaller clusters.
    pub max_fusion_width: usize,
}

impl Default for PlutoConfig {
    fn default() -> Self {
        PlutoConfig {
            coeff_bound: 4,
            shift_bound: 10,
            u_bound: 30,
            w_bound: 30,
            max_iters: 200,
            ilp_node_budget: 400,
            ilp_cell_budget: 4_000_000_000,
            max_fusion_width: 16,
        }
    }
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The engine could not find a hyperplane nor a new cut.
    NoProgress(String),
    /// Internal legality verification failed (a bug, surfaced loudly).
    Illegal(String),
    /// The ILP budget ran out and no degradation cut applied either.
    Budget(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoProgress(s) => write!(f, "no progress: {s}"),
            SchedError::Illegal(s) => write!(f, "illegal schedule: {s}"),
            SchedError::Budget(s) => write!(f, "ilp budget exhausted: {s}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<SchedError> for wf_harness::WfError {
    fn from(e: SchedError) -> wf_harness::WfError {
        match &e {
            SchedError::Budget(_) => wf_harness::WfError::Budget {
                site: "scheduler".into(),
                detail: e.to_string(),
            },
            SchedError::NoProgress(_) | SchedError::Illegal(_) => wf_harness::WfError::Schedule {
                message: e.to_string(),
            },
        }
    }
}

/// The mutable state threaded through the search; fusion strategies receive
/// a shared reference to consult it.
pub struct SchedState<'a> {
    /// The program.
    pub scop: &'a Scop,
    /// Its dependences.
    pub ddg: &'a Ddg,
    /// SCC decomposition (canonical / topologically normalized).
    pub sccs: SccInfo,
    /// Pre-fusion schedule: `order[p]` = SCC id at position `p`.
    pub order: Vec<usize>,
    /// Inverse of `order`.
    pub pos: Vec<usize>,
    /// Cut boundaries: `b` means a cut between positions `b-1` and `b`.
    pub boundaries: BTreeSet<usize>,
    /// Per legality edge: the dimension that satisfied it, if any.
    pub sat_dim: Vec<Option<usize>>,
    /// The schedule built so far.
    pub schedule: Schedule,
    /// Has the outermost loop dimension been accepted yet? (Algorithm 2
    /// only intervenes on the first loop hyperplane.)
    pub first_loop_done: bool,
    /// Edges live (unsatisfied) when the current permutable band started;
    /// `None` when no band is active. Legality (δ ≥ 0) keeps being enforced
    /// for these at every band dimension, which is exactly what makes the
    /// band's loops permutable — and hence tileable.
    pub band_edges: Option<Vec<usize>>,
    /// Band id per schedule dimension (`None` for scalar dims).
    pub band_of_dim: Vec<Option<usize>>,
    /// Number of bands opened so far.
    pub n_bands: usize,
}

impl SchedState<'_> {
    /// Current fusion-partition index of an SCC (number of cut boundaries at
    /// or before its position).
    #[must_use]
    pub fn partition_of_scc(&self, scc: usize) -> i128 {
        self.boundaries
            .iter()
            .filter(|&&b| b <= self.pos[scc])
            .count() as i128
    }

    /// Current fusion-partition index of a statement.
    #[must_use]
    pub fn partition_of_stmt(&self, stmt: usize) -> i128 {
        self.partition_of_scc(self.sccs.scc_of[stmt])
    }

    /// Indices of legality edges not yet satisfied.
    #[must_use]
    pub fn unsatisfied(&self) -> Vec<usize> {
        (0..self.ddg.edges.len())
            .filter(|&e| self.sat_dim[e].is_none())
            .collect()
    }

    /// Minimum of `φ_dst(t) − φ_src(s)` over an edge's polyhedron for
    /// candidate per-statement rows.
    #[must_use]
    pub fn delta_min(&self, edge: &DepEdge, rows: &[StmtRow]) -> Extremum {
        edge.poly
            .min_affine(&delta_expr(edge, &rows[edge.src], &rows[edge.dst]))
    }

    /// Maximum of `φ_dst(t) − φ_src(s)` over an edge's polyhedron.
    #[must_use]
    pub fn delta_max(&self, edge: &DepEdge, rows: &[StmtRow]) -> Extremum {
        edge.poly
            .max_affine(&delta_expr(edge, &rows[edge.src], &rows[edge.dst]))
    }

    /// Statement loop depths (the per-statement dimensionalities).
    #[must_use]
    pub fn depths(&self) -> Vec<usize> {
        self.scop.statements.iter().map(|s| s.depth).collect()
    }

    /// Is statement `s` done (has a full set of independent hyperplanes)?
    #[must_use]
    pub fn stmt_done(&self, s: usize) -> bool {
        self.schedule.loop_rank(s, self.scop.statements[s].depth) == self.scop.statements[s].depth
    }

    /// Apply cut boundaries; returns true if at least one was new.
    /// Appends a scalar dimension recording the refined partition indices
    /// and marks crossing dependences satisfied.
    pub fn apply_cuts(&mut self, cuts: &[usize]) -> bool {
        let before = self.boundaries.len();
        for &b in cuts {
            if b >= 1 && b < self.sccs.len() {
                self.boundaries.insert(b);
            }
        }
        if self.boundaries.len() == before {
            return false;
        }
        obs::add("sched.cuts", (self.boundaries.len() - before) as u64);
        let rows: Vec<StmtRow> = self
            .scop
            .statements
            .iter()
            .enumerate()
            .map(|(s, st)| StmtRow::scalar(st.depth, self.partition_of_stmt(s)))
            .collect();
        self.schedule.push_dim(DimKind::Scalar, rows);
        self.band_of_dim.push(None);
        self.band_edges = None; // a cut ends the permutable band
        let dim = self.schedule.n_dims() - 1;
        for e in 0..self.ddg.edges.len() {
            if self.sat_dim[e].is_some() {
                continue;
            }
            let edge = &self.ddg.edges[e];
            let (ps, pd) = (
                self.partition_of_stmt(edge.src),
                self.partition_of_stmt(edge.dst),
            );
            assert!(
                ps <= pd,
                "cut violates precedence: edge {} -> {}",
                edge.src,
                edge.dst
            );
            if pd > ps {
                self.sat_dim[e] = Some(dim);
            }
        }
        true
    }
}

/// Affine expression of `φ_dst(t) − φ_src(s)` over the edge polyhedron's
/// variables `(s…, t…, params…, 1)`.
fn delta_expr(edge: &DepEdge, src_row: &StmtRow, dst_row: &StmtRow) -> Vec<i128> {
    let nv = edge.poly.n_vars();
    let np = nv - edge.src_depth - edge.dst_depth;
    let _ = np;
    let mut expr = vec![0i128; nv + 1];
    for k in 0..edge.src_depth {
        expr[k] -= src_row.coeffs[k];
    }
    for k in 0..edge.dst_depth {
        expr[edge.src_depth + k] += dst_row.coeffs[k];
    }
    expr[nv] = dst_row.konst - src_row.konst;
    expr
}

/// Per-edge Farkas systems, cached in the edge's *canonical* variable
/// space `[c_src(da+1) | c_dst(db+1) | u(np) | w]` (a self edge shares one
/// `c` block). The legality/bounding constraints of an edge do not change
/// across levels, so they are computed once and embedded into each
/// component's variable layout.
pub type FarkasCache = std::collections::HashMap<usize, (ConstraintSystem, ConstraintSystem)>;

fn canonical_farkas(edge: &DepEdge, np: usize) -> (ConstraintSystem, ConstraintSystem) {
    let (da, db) = (edge.src_depth, edge.dst_depth);
    let self_edge = edge.src == edge.dst;
    let nv = edge.poly.n_vars();
    // Canonical variable indices.
    let c_src = |k: usize| k;
    let c_dst = |k: usize| if self_edge { k } else { da + 1 + k };
    let n_c = if self_edge { da + 1 } else { da + 1 + db + 1 };
    let u = |j: usize| n_c + j;
    let w = n_c + np;
    let n_canon = n_c + np + 1;

    // Legality ψ = φ_dst(t) − φ_src(s).
    let mut psi_vars: Vec<LinForm> = vec![Vec::new(); nv];
    for k in 0..da {
        psi_vars[k].push((c_src(k), -1));
    }
    for k in 0..db {
        psi_vars[da + k].push((c_dst(k), 1));
    }
    let psi_const: LinForm = vec![(c_dst(db), 1), (c_src(da), -1)];
    let legality = nonneg_over(&edge.poly.cs, &psi_vars, &psi_const, n_canon);

    // Bounding ψ = u·n + w − (φ_dst(t) − φ_src(s)).
    let mut bpsi: Vec<LinForm> = vec![Vec::new(); nv];
    for k in 0..da {
        bpsi[k].push((c_src(k), 1));
    }
    for k in 0..db {
        bpsi[da + k].push((c_dst(k), -1));
    }
    for j in 0..np {
        bpsi[da + db + j].push((u(j), 1));
    }
    let bconst: LinForm = vec![(w, 1), (c_dst(db), -1), (c_src(da), 1)];
    let bounding = nonneg_over(&edge.poly.cs, &bpsi, &bconst, n_canon);
    // One-time LP pruning: every surviving row is cloned into the component
    // ILP at every level, so shrinking here pays off many times over.
    (
        wf_polyhedra::fm::remove_redundant(&legality),
        wf_polyhedra::fm::remove_redundant(&bounding),
    )
}

/// Variable map embedding an edge's canonical space into a component layout
/// where `u` sits at 0..np, `w` at np, and statement coefficient blocks at
/// `base[s]`.
fn canonical_map(edge: &DepEdge, np: usize, base: &[usize]) -> Vec<usize> {
    let (da, db) = (edge.src_depth, edge.dst_depth);
    let mut map = Vec::new();
    for k in 0..=da {
        map.push(base[edge.src] + k);
    }
    if edge.src != edge.dst {
        for k in 0..=db {
            map.push(base[edge.dst] + k);
        }
    }
    for j in 0..np {
        map.push(j);
    }
    map.push(np);
    map
}

/// The result of scheduling.
///
/// Derives `Eq` so determinism tests (and the schedule cache's
/// hit-equals-cold guarantee) can compare results structurally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transformed {
    /// The statement-wise multi-dimensional affine transform.
    pub schedule: Schedule,
    /// Per legality edge: which dimension satisfied it.
    pub sat_dim: Vec<Option<usize>>,
    /// SCC decomposition used.
    pub sccs: SccInfo,
    /// The pre-fusion schedule (SCC ids in chosen order).
    pub scc_order: Vec<usize>,
    /// Top-level fusion partition per statement.
    pub partitions: Vec<usize>,
    /// Name of the fusion strategy that produced this.
    pub strategy: String,
    /// Band id per schedule dimension (`None` for scalar dims). Consecutive
    /// dims sharing a band id are mutually permutable — and tileable.
    pub band_of_dim: Vec<Option<usize>>,
}

/// Schedule a SCoP under a fusion strategy. This is the paper's three-step
/// fusion recipe: SCCs → pre-fusion schedule → hyperplanes with cuts.
pub fn schedule_scop(
    scop: &Scop,
    ddg: &Ddg,
    strategy: &dyn FusionStrategy,
    config: &PlutoConfig,
) -> Result<Transformed, SchedError> {
    let _span = wf_harness::span!("schedule.search", "strategy" => strategy.name());
    // Tag every decision this pass records (including the strategy's
    // Algorithm 1/2 callbacks) with the strategy name, so concurrent model
    // jobs drain to a deterministic per-scope order.
    let _scope = obs::scope(strategy.name());
    // Solver cost incurred below is attributed to (benchmark, model): the
    // search runs entirely on this thread, so RAII labels suffice.
    let _bench_label = attr::label_fmt(attr::Slot::Bench, || scop.name.clone());
    let _model_label = attr::label(attr::Slot::Model, strategy.name());
    let sccs = tarjan(ddg);
    let order = strategy.pre_fusion_order(scop, ddg, &sccs);
    validate_order(&order, &sccs, ddg)?;
    let mut pos = vec![0usize; sccs.len()];
    for (p, &c) in order.iter().enumerate() {
        pos[c] = p;
    }
    let mut state = SchedState {
        scop,
        ddg,
        sccs,
        order,
        pos,
        boundaries: BTreeSet::new(),
        sat_dim: vec![None; ddg.edges.len()],
        schedule: Schedule::new(),
        first_loop_done: false,
        band_edges: None,
        band_of_dim: Vec::new(),
        n_bands: 0,
    };
    // Seed the schedule with an initial scalar dimension when the strategy
    // wants pre-emptive cuts (nofuse: everywhere; smartfuse/wisefuse:
    // dimensionality-based).
    let init = strategy.initial_cuts(&state);
    if state.apply_cuts(&init) && obs::decisions_on() {
        obs::decision(
            "cut.initial",
            format!(
                "{}: pre-emptive scalar cut(s) at SCC position(s) {init:?}",
                strategy.name()
            ),
            vec![("boundaries", format!("{init:?}"))],
        );
    }

    let mut iters = 0usize;
    let mut fcache: FarkasCache = FarkasCache::new();
    while !(0..scop.n_statements()).all(|s| state.stmt_done(s)) {
        iters += 1;
        if iters > config.max_iters {
            return Err(SchedError::NoProgress(format!(
                "{}: iteration guard tripped",
                strategy.name()
            )));
        }
        match find_level_rows(&state, config, &mut fcache) {
            Ok(rows) => {
                if !state.first_loop_done {
                    let cuts = strategy.post_loop_cuts(&state, &rows);
                    if !cuts.is_empty() && state.apply_cuts(&cuts) {
                        if obs::decisions_on() {
                            obs::decision(
                                "cut.post_loop",
                                format!(
                                    "{}: cut(s) at SCC position(s) {cuts:?} rejected the \
                                     first loop hyperplane (Algorithm 2); re-solving",
                                    strategy.name()
                                ),
                                vec![
                                    ("boundaries", format!("{cuts:?}")),
                                    ("hyperplane_before", rows_summary(&rows)),
                                ],
                            );
                        }
                        continue; // re-solve the level with the new cuts
                    }
                }
                // Band bookkeeping: a fresh band opens at this dim if none
                // is active; the legality set of the band is frozen now.
                if state.band_edges.is_none() {
                    state.band_edges = Some(state.unsatisfied());
                    state.n_bands += 1;
                }
                if obs::decisions_on() {
                    obs::decision(
                        "hyperplane",
                        format!(
                            "{}: accepted loop hyperplane at schedule dim {}",
                            strategy.name(),
                            state.schedule.n_dims()
                        ),
                        vec![("rows", rows_summary(&rows))],
                    );
                }
                state.schedule.push_dim(DimKind::Loop, rows);
                state.band_of_dim.push(Some(state.n_bands - 1));
                let dim = state.schedule.n_dims() - 1;
                state.first_loop_done = true;
                // Mark dependences now strongly satisfied.
                for e in 0..ddg.edges.len() {
                    if state.sat_dim[e].is_some() {
                        continue;
                    }
                    let edge = &ddg.edges[e];
                    if let Extremum::Value(v) = state.delta_min(edge, &state.schedule.rows[dim]) {
                        if v >= wf_linalg::Rat::ONE {
                            state.sat_dim[e] = Some(dim);
                        }
                    }
                }
            }
            Err((failed, exhausted)) => {
                // If a permutable band is active, first try closing it: the
                // extra δ ≥ 0 constraints for band-satisfied dependences may
                // be what blocks the next hyperplane.
                if state.band_edges.is_some() {
                    state.band_edges = None;
                    continue;
                }
                let cuts = if exhausted {
                    // The fusion ILP is too hard: distribute the whole
                    // component (every SCC boundary it spans) rather than
                    // paying another doomed solve per minimal cut.
                    component_boundaries(&state, &failed)
                } else {
                    strategy.cuts_on_failure(&state, &failed)
                };
                if state.apply_cuts(&cuts) {
                    if obs::decisions_on() {
                        let (kind, why) = if exhausted {
                            ("cut.budget", "fusion ILP budget exhausted")
                        } else {
                            ("cut.failure", "no legal hyperplane exists")
                        };
                        obs::decision(
                            kind,
                            format!(
                                "{}: {why} for statements {failed:?}; distributing at \
                                 SCC position(s) {cuts:?}",
                                strategy.name()
                            ),
                            vec![
                                ("statements", format!("{failed:?}")),
                                ("boundaries", format!("{cuts:?}")),
                            ],
                        );
                    }
                } else {
                    if exhausted {
                        // Distinguish "the ILP gave up" from "there is no
                        // hyperplane": the former is a budget condition the
                        // caller may degrade on, not a modelling dead end.
                        return Err(SchedError::Budget(format!(
                            "{}: fusion ILP budget exhausted for statements {:?} \
                             and no distribution cut applies",
                            strategy.name(),
                            failed
                        )));
                    }
                    return Err(SchedError::NoProgress(format!(
                        "{}: hyperplane search failed for statements {:?} and no cut applies",
                        strategy.name(),
                        failed
                    )));
                }
            }
        }
    }

    append_final_order(&mut state)?;
    verify_legality(&state)?;

    let partitions = state.schedule.top_level_partitions();
    Ok(Transformed {
        schedule: state.schedule,
        sat_dim: state.sat_dim,
        sccs: state.sccs,
        scc_order: state.order,
        partitions,
        strategy: strategy.name().to_string(),
        band_of_dim: state.band_of_dim,
    })
}

fn validate_order(order: &[usize], sccs: &SccInfo, ddg: &Ddg) -> Result<(), SchedError> {
    let mut seen = vec![false; sccs.len()];
    for &c in order {
        if c >= sccs.len() || seen[c] {
            return Err(SchedError::Illegal(
                "pre-fusion order is not a permutation".into(),
            ));
        }
        seen[c] = true;
    }
    if order.len() != sccs.len() {
        return Err(SchedError::Illegal(
            "pre-fusion order has wrong length".into(),
        ));
    }
    let mut pos = vec![0usize; sccs.len()];
    for (p, &c) in order.iter().enumerate() {
        pos[c] = p;
    }
    for e in &ddg.edges {
        let (a, b) = (sccs.scc_of[e.src], sccs.scc_of[e.dst]);
        if a != b && pos[a] > pos[b] {
            return Err(SchedError::Illegal(format!(
                "pre-fusion order violates precedence: SCC {a} -> {b}"
            )));
        }
    }
    Ok(())
}

/// Find one loop hyperplane per statement, or return the statements of a
/// failing connected component.
fn find_level_rows(
    state: &SchedState<'_>,
    config: &PlutoConfig,
    fcache: &mut FarkasCache,
) -> Result<Vec<StmtRow>, (Vec<usize>, bool)> {
    let n = state.scop.n_statements();
    // Connected components over unsatisfied edges.
    let mut comp = (0..n).collect::<Vec<usize>>();
    fn find(comp: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while comp[r] != r {
            r = comp[r];
        }
        let mut c = x;
        while comp[c] != r {
            let next = comp[c];
            comp[c] = r;
            c = next;
        }
        r
    }
    // Components must also honor band edges (their legality constraints
    // couple the endpoint statements' coefficients even when satisfied).
    let mut coupling = state.unsatisfied();
    if let Some(band) = &state.band_edges {
        coupling.extend(band.iter().copied());
    }
    coupling.sort_unstable();
    coupling.dedup();
    for &e in &coupling {
        let edge = &state.ddg.edges[e];
        let (a, b) = (find(&mut comp, edge.src), find(&mut comp, edge.dst));
        if a != b {
            comp[a] = b;
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for s in 0..n {
        let r = find(&mut comp, s);
        groups.entry(r).or_default().push(s);
    }

    let mut rows: Vec<Option<StmtRow>> = vec![None; n];
    for (_, members) in groups {
        if members.iter().all(|&s| state.stmt_done(s)) {
            for &s in &members {
                rows[s] = Some(StmtRow::zero(state.scop.statements[s].depth));
            }
            continue;
        }
        match solve_component(state, &members, config, fcache) {
            SolveOutcome::Solved(sol) => {
                for (s, r) in members.iter().zip(sol) {
                    rows[*s] = Some(r);
                }
            }
            SolveOutcome::Infeasible => return Err((members, false)),
            SolveOutcome::Exhausted => return Err((members, true)),
        }
    }
    Ok(rows
        .into_iter()
        .map(|r| r.expect("row for every statement"))
        .collect())
}

/// Outcome of one component ILP.
enum SolveOutcome {
    Solved(Vec<StmtRow>),
    Infeasible,
    /// The node budget ran out before a verdict: the fusion ILP is too hard
    /// and the component should be distributed wholesale.
    Exhausted,
}

/// Solve the per-component ILP for one hyperplane level.
fn solve_component(
    state: &SchedState<'_>,
    members: &[usize],
    config: &PlutoConfig,
    fcache: &mut FarkasCache,
) -> SolveOutcome {
    if members.len() > config.max_fusion_width {
        return SolveOutcome::Exhausted;
    }
    let scop = state.scop;
    let np = scop.n_params();
    // Variable layout: u(np), w, then per member statement (depth+1).
    let mut base = vec![0usize; scop.n_statements()];
    let mut n_sched = np + 1;
    for &s in members {
        base[s] = n_sched;
        n_sched += scop.statements[s].depth + 1;
    }
    let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();

    let mut cs = ConstraintSystem::new(n_sched);
    for j in 0..np {
        cs.add_lower_bound(j, 0);
        cs.add_upper_bound(j, config.u_bound);
    }
    cs.add_lower_bound(np, 0);
    cs.add_upper_bound(np, config.w_bound);
    for &s in members {
        let d = scop.statements[s].depth;
        for k in 0..d {
            cs.add_lower_bound(base[s] + k, 0);
            cs.add_upper_bound(base[s] + k, config.coeff_bound);
        }
        cs.add_lower_bound(base[s] + d, 0);
        cs.add_upper_bound(base[s] + d, config.shift_bound);
    }

    // Legality + bounding constraints for every unsatisfied edge inside the
    // component.
    // Legality: for every dependence live at the start of the current band
    // (keeping δ ≥ 0 for band-satisfied edges is what makes the band
    // permutable). Bounding: only for currently-unsatisfied edges.
    let unsat = state.unsatisfied();
    let legality_edges: Vec<usize> = match &state.band_edges {
        Some(band) => band.clone(),
        None => unsat.clone(),
    };
    let unsat_set: std::collections::HashSet<usize> = unsat.iter().copied().collect();
    for &e in &legality_edges {
        let edge = &state.ddg.edges[e];
        if !member_set.contains(&edge.src) || !member_set.contains(&edge.dst) {
            continue;
        }
        let (legality, bounding) = fcache
            .entry(e)
            .or_insert_with(|| canonical_farkas(edge, np));
        let map = canonical_map(edge, np, &base);
        cs.extend(&legality.embed(n_sched, &map));
        if unsat_set.contains(&e) {
            cs.extend(&bounding.embed(n_sched, &map));
        }
    }

    // Per-statement constraints: non-triviality and linear independence for
    // live statements; pin finished statements to zero rows.
    let mut kernel_vectors: Vec<(usize, Vec<i128>)> = Vec::new(); // (stmt, vector)
    for &s in members {
        let d = scop.statements[s].depth;
        if state.stmt_done(s) {
            for k in 0..=d {
                cs.add_fixed(base[s] + k, 0);
            }
            continue;
        }
        // Σ_k c_k >= 1.
        let mut row = vec![0i128; n_sched + 1];
        for k in 0..d {
            row[base[s] + k] = 1;
        }
        row[n_sched] = -1;
        cs.add_ge0(row);
        // Linear independence w.r.t. already-found hyperplanes: the new row
        // must have a non-zero component in the kernel of H.
        let h = state.schedule.loop_matrix(s);
        if !h.is_empty() {
            for vec in RatMat::from_int_rows(&h).kernel_basis() {
                kernel_vectors.push((s, vec));
            }
        }
    }

    let objectives = build_objectives(scop, members, &base, np, n_sched, config);

    // Try sign assignments for the kernel-vector constraints (PLuTo's
    // orthogonality trick, generalized: each kernel direction may point
    // either way). All-positive first; bail after a bounded number of
    // combinations.
    cs.simplify();
    // Attribute every ILP solved for this component to the fused statement
    // group and the schedule level being searched, so `wfc profile` can
    // name the exact (component, dimension) a cell blow-up came from.
    let _unit_label = attr::label_fmt(attr::Slot::Unit, || {
        let names: Vec<&str> = members
            .iter()
            .map(|&s| scop.statements[s].name.as_str())
            .collect();
        format!("comp[{}]", names.join(","))
    });
    let _dim_label = attr::label_fmt(attr::Slot::Dim, || state.schedule.n_dims().to_string());
    let mut comp_span = wf_harness::span!("schedule.component");
    attr::annotate_span(&mut comp_span);
    comp_span
        .arg("members", members.len().to_string())
        .arg("vars", n_sched.to_string())
        .arg("rows", cs.constraints.len().to_string())
        .arg("kernels", kernel_vectors.len().to_string());
    let n_k = kernel_vectors.len();
    let combos = 1usize << n_k.min(7);
    for mask in 0..combos {
        let mut sys = cs.clone();
        let mut per_stmt_sum: std::collections::HashMap<usize, Vec<i128>> = Default::default();
        for (idx, (s, vec)) in kernel_vectors.iter().enumerate() {
            let sign: i128 = if mask & (1 << idx) == 0 { 1 } else { -1 };
            let d = scop.statements[*s].depth;
            let mut row = vec![0i128; n_sched + 1];
            for k in 0..d {
                row[base[*s] + k] = sign * vec[k];
            }
            sys.add_ge0(row.clone());
            let sum = per_stmt_sum
                .entry(*s)
                .or_insert_with(|| vec![0i128; n_sched + 1]);
            for (a, b) in sum.iter_mut().zip(&row) {
                *a += *b;
            }
        }
        for (_, mut sum) in per_stmt_sum {
            sum[n_sched] -= 1; // Σ (±r)·c >= 1
            sys.add_ge0(sum);
        }
        let budget = wf_polyhedra::IlpBudget {
            max_nodes: config.ilp_node_budget,
            max_cells: config.ilp_cell_budget,
            ..wf_polyhedra::IlpBudget::default()
        };
        let solved = {
            let _span = wf_harness::span!("ilp.solve", "combo" => mask.to_string());
            wf_polyhedra::ilp::lexmin_budgeted(&sys, &objectives, &budget)
        };
        match solved {
            Err(_) => return SolveOutcome::Exhausted,
            Ok(Some((_, point))) => {
                let mut rows = Vec::with_capacity(members.len());
                for &s in members {
                    let d = scop.statements[s].depth;
                    rows.push(StmtRow {
                        coeffs: point[base[s]..base[s] + d].to_vec(),
                        konst: point[base[s] + d],
                    });
                }
                return SolveOutcome::Solved(rows);
            }
            Ok(None) => {}
        }
    }
    SolveOutcome::Infeasible
}

/// PLuTo's lexicographic cost `(Σu, w, Σ loop coeffs, Σ shifts,
/// iterator-weighted tie-break)`, folded into a single integer objective:
/// every variable is explicitly bounded, so cascading weights larger than
/// the downstream terms' ranges make one ILP solve equivalent to the
/// five-stage lexicographic minimization (and five times cheaper).
fn build_objectives(
    scop: &Scop,
    members: &[usize],
    base: &[usize],
    np: usize,
    n_sched: usize,
    config: &PlutoConfig,
) -> Vec<Vec<i128>> {
    let sum_depth: i128 = members
        .iter()
        .map(|&s| scop.statements[s].depth as i128)
        .sum();
    let max_depth: i128 = members
        .iter()
        .map(|&s| scop.statements[s].depth as i128)
        .max()
        .unwrap_or(0);
    // Range bounds of each lexicographic component.
    let b5 = config.coeff_bound * sum_depth * max_depth; // tie-break
    let b4 = config.shift_bound * members.len() as i128; // Σ shifts
    let b3 = config.coeff_bound * sum_depth; // Σ loop coeffs
    let b2 = config.w_bound; // w
    let m4 = b5 + 1;
    let m3 = m4 * (b4 + 1);
    let m2 = m3 * (b3 + 1);
    let m1 = m2 * (b2 + 1);
    let mut obj = vec![0i128; n_sched];
    for j in 0..np {
        obj[j] = m1;
    }
    obj[np] = m2;
    for &s in members {
        let d = scop.statements[s].depth;
        for k in 0..d {
            obj[base[s] + k] = m3 + (k + 1) as i128;
        }
        obj[base[s] + d] = m4;
    }
    vec![obj]
}

/// Append the final static-order scalar dimension: a topological order of
/// the statements under the remaining (zero-distance) dependences,
/// tie-broken by original program order.
fn append_final_order(state: &mut SchedState<'_>) -> Result<(), SchedError> {
    let n = state.scop.n_statements();
    let mut adj = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &e in &state.unsatisfied() {
        let edge = &state.ddg.edges[e];
        if edge.src == edge.dst {
            continue; // self edges cannot be ordered statically
        }
        adj[edge.src].push(edge.dst);
        indeg[edge.dst] += 1;
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&s| indeg[s] == 0).collect();
    let mut ordinal = vec![0i128; n];
    let mut next = 0i128;
    while let Some(&s) = ready.iter().next() {
        ready.remove(&s);
        ordinal[s] = next;
        next += 1;
        for &t in &adj[s] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.insert(t);
            }
        }
    }
    if next as usize != n {
        return Err(SchedError::Illegal(
            "cyclic zero-distance dependences cannot be statically ordered".into(),
        ));
    }
    let rows: Vec<StmtRow> = state
        .scop
        .statements
        .iter()
        .enumerate()
        .map(|(s, st)| StmtRow::scalar(st.depth, ordinal[s]))
        .collect();
    state.schedule.push_dim(DimKind::Scalar, rows);
    state.band_of_dim.push(None);
    let dim = state.schedule.n_dims() - 1;
    for e in 0..state.ddg.edges.len() {
        if state.sat_dim[e].is_none() {
            let edge = &state.ddg.edges[e];
            if edge.src != edge.dst && ordinal[edge.src] < ordinal[edge.dst] {
                state.sat_dim[e] = Some(dim);
            }
        }
    }
    Ok(())
}

/// Every SCC boundary spanned by the given statements (used to distribute
/// a component whose fusion ILP exhausted its budget).
fn component_boundaries(state: &SchedState<'_>, members: &[usize]) -> Vec<usize> {
    let mut positions: Vec<usize> = members
        .iter()
        .map(|&s| state.pos[state.sccs.scc_of[s]])
        .collect();
    positions.sort_unstable();
    positions.dedup();
    positions.into_iter().skip(1).collect()
}

/// Compute, for an externally-constructed schedule, which dimension
/// satisfies each legality edge (first dimension with `min δ ≥ 1`).
/// Used by the icc-like baseline whose schedule is the original program
/// order rather than an engine product.
#[must_use]
pub fn compute_satisfaction(ddg: &Ddg, schedule: &Schedule) -> Vec<Option<usize>> {
    ddg.edges
        .iter()
        .map(|edge| {
            (0..schedule.n_dims()).find(|&d| {
                let expr = delta_expr(
                    edge,
                    &schedule.rows[d][edge.src],
                    &schedule.rows[d][edge.dst],
                );
                matches!(edge.poly.min_affine(&expr),
                    Extremum::Value(v) if v >= wf_linalg::Rat::ONE)
            })
        })
        .collect()
}

/// Exact legality verification: no dependence instance may have a
/// lexicographically negative (or, for distinct statements, all-zero in the
/// wrong static order) schedule difference. Rational emptiness makes this
/// check conservative in the safe direction.
fn verify_legality(state: &SchedState<'_>) -> Result<(), SchedError> {
    for edge in &state.ddg.edges {
        let ndims = state.schedule.n_dims();
        // Prefix system: delta_0 = 0, …, delta_{k-1} = 0, delta_k <= -1.
        let nv = edge.poly.n_vars();
        let mut prefix = edge.poly.cs.clone();
        for k in 0..ndims {
            let expr = delta_expr(
                edge,
                &state.schedule.rows[k][edge.src],
                &state.schedule.rows[k][edge.dst],
            );
            // Violation at this level?
            let mut viol = prefix.clone();
            let mut neg = expr.clone();
            for v in &mut neg {
                *v = -*v;
            }
            neg[nv] -= 1; // -delta - 1 >= 0  <=>  delta <= -1
            viol.add_ge0(neg);
            if !wf_polyhedra::Polyhedron::from(viol).is_empty_rational() {
                return Err(SchedError::Illegal(format!(
                    "dependence {} -> {} violated at dimension {k}",
                    state.scop.statements[edge.src].name, state.scop.statements[edge.dst].name,
                )));
            }
            prefix.add_eq0(expr);
        }
        // All-zero difference for distinct statements: must not happen (the
        // final static order separates them) — for identical statements it
        // would mean a self-dependence on the same instance, excluded by
        // construction.
        if edge.src != edge.dst && !wf_polyhedra::Polyhedron::from(prefix).is_empty_rational() {
            return Err(SchedError::Illegal(format!(
                "dependence {} -> {} has unordered zero-distance instances",
                state.scop.statements[edge.src].name, state.scop.statements[edge.dst].name,
            )));
        }
    }
    Ok(())
}
