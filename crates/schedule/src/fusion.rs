//! Fusion strategies: the pre-fusion schedule plus the cut policy.
//!
//! PLuTo's three models (Table 1 of the paper):
//!
//! * [`Nofuse`] — separates all SCCs into different loop nests,
//! * [`Maxfuse`] — cuts only when the ILP fails, between the SCCs carrying
//!   the violated dependence,
//! * [`Smartfuse`] — PLuTo's default: DFS-derived SCC order, pre-emptive
//!   cuts between SCCs of different dimensionality.
//!
//! The paper's contribution, wisefuse, implements the same trait in the
//! `wf-wisefuse` crate.

use crate::pluto::SchedState;
use crate::transform::StmtRow;
use wf_deps::{kosaraju_raw, Ddg, SccInfo};
use wf_scop::Scop;

/// A fusion model: decides the pre-fusion schedule and when/where to cut.
pub trait FusionStrategy {
    /// Short name for reports ("smartfuse", …).
    fn name(&self) -> &'static str;

    /// The pre-fusion schedule: a permutation of the canonical SCC ids,
    /// which must be a topological order of the SCC condensation.
    fn pre_fusion_order(&self, scop: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize>;

    /// Cut boundaries applied before any hyperplane search.
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize>;

    /// Cut boundaries when hyperplane search fails for the given statements.
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize>;

    /// Inspect a candidate (not yet accepted) outermost loop hyperplane;
    /// returning boundaries rejects it and re-solves after cutting
    /// (wisefuse's Algorithm 2). The default accepts every hyperplane.
    fn post_loop_cuts(&self, state: &SchedState<'_>, rows: &[StmtRow]) -> Vec<usize> {
        let _ = (state, rows);
        Vec::new()
    }
}

/// SCC order induced by a depth-first traversal of the DDG (raw Kosaraju
/// numbering) — what PLuTo effectively uses. Expressed as a permutation of
/// the canonical SCC ids.
#[must_use]
pub fn dfs_order(ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
    let raw = kosaraju_raw(ddg);
    let mut ids: Vec<usize> = (0..sccs.len()).collect();
    ids.sort_by_key(|&c| raw.scc_of[sccs.members[c][0]]);
    ids
}

/// SCC order by original program position (canonical ids are already
/// topological with min-member tie-break, i.e. program order).
#[must_use]
pub fn program_order(sccs: &SccInfo) -> Vec<usize> {
    (0..sccs.len()).collect()
}

/// Boundaries between adjacent SCCs (in the current order) of different
/// dimensionality — the primary cut criterion (§2.2: "any two consecutive
/// SCCs with different dimensionalities are cut first").
#[must_use]
pub fn dim_boundaries(state: &SchedState<'_>) -> Vec<usize> {
    let depths = state.depths();
    (1..state.order.len())
        .filter(|&p| {
            state.sccs.dimensionality(state.order[p - 1], &depths)
                != state.sccs.dimensionality(state.order[p], &depths)
        })
        .collect()
}

/// A minimal boundary separating the SCCs of some unsatisfied dependence
/// among the failed statements (PLuTo's `cut_between_sccs`).
#[must_use]
pub fn failure_boundary(state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
    let set: std::collections::HashSet<usize> = failed.iter().copied().collect();
    for &e in &state.unsatisfied() {
        let edge = &state.ddg.edges[e];
        if !set.contains(&edge.src) || !set.contains(&edge.dst) {
            continue;
        }
        let (ca, cb) = (state.sccs.scc_of[edge.src], state.sccs.scc_of[edge.dst]);
        if ca != cb && state.partition_of_scc(ca) == state.partition_of_scc(cb) {
            if wf_harness::obs::decisions_on() {
                wf_harness::obs::decision(
                    "cut.offender",
                    format!(
                        "dependence {} -> {} (SCC {ca} -> SCC {cb}) blocks the \
                         hyperplane; cutting before SCC position {}",
                        state.scop.statements[edge.src].name,
                        state.scop.statements[edge.dst].name,
                        state.pos[cb]
                    ),
                    vec![
                        ("edge", format!("{} -> {}", edge.src, edge.dst)),
                        ("sccs", format!("{ca} -> {cb}")),
                        ("boundary", state.pos[cb].to_string()),
                    ],
                );
            }
            // Cut immediately before the target SCC.
            return vec![state.pos[cb]];
        }
    }
    Vec::new()
}

/// Every possible boundary (PLuTo's `cut_all_sccs`).
#[must_use]
pub fn all_boundaries(state: &SchedState<'_>) -> Vec<usize> {
    (1..state.order.len()).collect()
}

/// The `nofuse` model: every SCC in its own loop nest.
#[derive(Default, Clone, Copy, Debug)]
pub struct Nofuse;

impl FusionStrategy for Nofuse {
    fn name(&self) -> &'static str {
        "nofuse"
    }
    fn pre_fusion_order(&self, _: &Scop, _: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        program_order(sccs)
    }
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        all_boundaries(state)
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        failure_boundary(state, failed)
    }
}

/// The `maxfuse` model: fuse maximally, cut only on ILP failure.
#[derive(Default, Clone, Copy, Debug)]
pub struct Maxfuse;

impl FusionStrategy for Maxfuse {
    fn name(&self) -> &'static str {
        "maxfuse"
    }
    fn pre_fusion_order(&self, _: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        dfs_order(ddg, sccs)
    }
    fn initial_cuts(&self, _: &SchedState<'_>) -> Vec<usize> {
        Vec::new()
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        let cut = failure_boundary(state, failed);
        if !cut.is_empty() {
            return cut;
        }
        // Last resort: separate by dimensionality, then fully.
        let dims = dim_boundaries(state);
        if !dims.is_empty() {
            return dims;
        }
        all_boundaries(state)
    }
}

/// The `smartfuse` model — PLuTo's default: DFS SCC order, pre-emptive cuts
/// between SCCs of different dimensionality.
#[derive(Default, Clone, Copy, Debug)]
pub struct Smartfuse;

impl FusionStrategy for Smartfuse {
    fn name(&self) -> &'static str {
        "smartfuse"
    }
    fn pre_fusion_order(&self, _: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        dfs_order(ddg, sccs)
    }
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        dim_boundaries(state)
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        let cut = failure_boundary(state, failed);
        if !cut.is_empty() {
            return cut;
        }
        let dims = dim_boundaries(state);
        if !dims.is_empty() {
            return dims;
        }
        all_boundaries(state)
    }
}
