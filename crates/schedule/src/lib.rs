//! PLuTo-style affine scheduling with pluggable fusion strategies.
//!
//! This crate rebuilds the scheduling half of PLuTo (Bondhugula's algorithm)
//! that the wisefuse paper plugs into:
//!
//! * [`farkas`] — the affine form of the Farkas lemma: converts "`ψ(x) ≥ 0`
//!   for every point of a dependence polyhedron" into linear constraints on
//!   the schedule coefficients by introducing and eliminating multipliers,
//! * [`transform`] — the statement-wise multi-dimensional affine transform
//!   (interleaved loop hyperplanes and scalar dimensions),
//! * [`pluto`] — the level-by-level hyperplane search: per connected
//!   component of unsatisfied dependences, an ILP lexicographically
//!   minimizing the Bondhugula cost bound `(Σu, w, Σc)` subject to legality,
//!   bounding, non-triviality and linear-independence constraints; *cuts*
//!   (scalar dimensions distributing SCCs into separate loop nests) are
//!   issued when the ILP fails or a fusion strategy demands them,
//! * [`fusion`] — the [`FusionStrategy`] trait plus PLuTo's three baseline
//!   models: `nofuse`, `maxfuse` and `smartfuse` (the default model the
//!   paper compares against),
//! * [`props`] — post-scheduling loop-property analysis (which loop
//!   dimensions are parallel for which fused statement groups).
//!
//! The wisefuse strategy itself (the paper's contribution) lives in the
//! `wf-wisefuse` crate and plugs in through [`FusionStrategy`].

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod farkas;
pub mod fusion;
pub mod pluto;
pub mod props;
pub mod transform;

pub use fusion::{FusionStrategy, Maxfuse, Nofuse, Smartfuse};
pub use pluto::{schedule_scop, PlutoConfig, SchedError, Transformed};
pub use transform::{DimKind, Schedule, StmtRow};
