//! The statement-wise multi-dimensional affine transform.

use wf_linalg::RatMat;

/// Kind of one dimension of the multi-dimensional affine transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DimKind {
    /// A loop hyperplane: `φ_S(i) = c·i + c0`.
    Loop,
    /// A scalar dimension: constant per statement (a fusion partition).
    Scalar,
}

/// One statement's one-dimensional affine transform `φ(i) = coeffs·i + konst`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StmtRow {
    /// Iterator coefficients (length = statement depth).
    pub coeffs: Vec<i128>,
    /// Constant (shift for loop dims, partition number for scalar dims).
    pub konst: i128,
}

impl StmtRow {
    /// The all-zero row for a statement of the given depth.
    #[must_use]
    pub fn zero(depth: usize) -> StmtRow {
        StmtRow {
            coeffs: vec![0; depth],
            konst: 0,
        }
    }

    /// A pure-constant row (scalar dimension value).
    #[must_use]
    pub fn scalar(depth: usize, value: i128) -> StmtRow {
        StmtRow {
            coeffs: vec![0; depth],
            konst: value,
        }
    }

    /// Evaluate at an iteration vector.
    #[must_use]
    pub fn eval(&self, iters: &[i128]) -> i128 {
        debug_assert_eq!(iters.len(), self.coeffs.len());
        self.coeffs
            .iter()
            .zip(iters)
            .map(|(&c, &i)| c * i)
            .sum::<i128>()
            + self.konst
    }

    /// Is this row identically zero (including the constant)?
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.konst == 0 && self.coeffs.iter().all(|&c| c == 0)
    }
}

/// A complete schedule: for every dimension, one row per statement.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    /// Dimension kinds, outermost first.
    pub dims: Vec<DimKind>,
    /// `rows[d][s]` = statement `s`'s affine function at dimension `d`.
    pub rows: Vec<Vec<StmtRow>>,
}

impl Schedule {
    /// Empty schedule for `n_stmts` statements.
    #[must_use]
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Number of dimensions.
    #[must_use]
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of statements (0 for an empty schedule).
    #[must_use]
    pub fn n_stmts(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Append a dimension.
    pub fn push_dim(&mut self, kind: DimKind, rows: Vec<StmtRow>) {
        if let Some(prev) = self.rows.first() {
            assert_eq!(prev.len(), rows.len(), "statement count mismatch");
        }
        self.dims.push(kind);
        self.rows.push(rows);
    }

    /// Remove and return the innermost dimension.
    pub fn pop_dim(&mut self) -> Option<(DimKind, Vec<StmtRow>)> {
        let kind = self.dims.pop()?;
        Some((kind, self.rows.pop().expect("dims/rows in sync")))
    }

    /// The full schedule vector of a statement instance.
    #[must_use]
    pub fn apply(&self, stmt: usize, iters: &[i128]) -> Vec<i128> {
        self.rows
            .iter()
            .map(|level| level[stmt].eval(iters))
            .collect()
    }

    /// Indices of the `Loop` dimensions, outermost first.
    #[must_use]
    pub fn loop_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter_map(|(d, &k)| (k == DimKind::Loop).then_some(d))
            .collect()
    }

    /// Rank of the loop-coefficient rows of one statement (how many linearly
    /// independent hyperplanes it already has).
    #[must_use]
    pub fn loop_rank(&self, stmt: usize, depth: usize) -> usize {
        let rows: Vec<Vec<i128>> = self
            .dims
            .iter()
            .zip(&self.rows)
            .filter(|(k, _)| **k == DimKind::Loop)
            .map(|(_, level)| level[stmt].coeffs.clone())
            .collect();
        if rows.is_empty() {
            return 0;
        }
        debug_assert!(rows.iter().all(|r| r.len() == depth));
        RatMat::from_int_rows(&rows).rank()
    }

    /// The loop-coefficient matrix of one statement (one row per loop dim).
    #[must_use]
    pub fn loop_matrix(&self, stmt: usize) -> Vec<Vec<i128>> {
        self.dims
            .iter()
            .zip(&self.rows)
            .filter(|(k, _)| **k == DimKind::Loop)
            .map(|(_, level)| level[stmt].coeffs.clone())
            .collect()
    }

    /// Top-level fusion partition of each statement: statements are in the
    /// same partition iff they agree on every scalar dimension preceding the
    /// first loop dimension. Partition ids are dense and follow schedule
    /// order.
    #[must_use]
    pub fn top_level_partitions(&self) -> Vec<usize> {
        let n = self.n_stmts();
        let first_loop = self
            .dims
            .iter()
            .position(|&k| k == DimKind::Loop)
            .unwrap_or(self.dims.len());
        let keys: Vec<Vec<i128>> = (0..n)
            .map(|s| (0..first_loop).map(|d| self.rows[d][s].konst).collect())
            .collect();
        let mut uniq: Vec<Vec<i128>> = keys.clone();
        uniq.sort();
        uniq.dedup();
        keys.iter()
            .map(|k| uniq.binary_search(k).expect("key present"))
            .collect()
    }

    /// Render the transform in the paper's `T(S) = (φ1, φ2, …)` style.
    #[must_use]
    pub fn render(&self, stmt_names: &[String]) -> String {
        let mut out = String::new();
        for (s, name) in stmt_names.iter().enumerate() {
            out.push_str(&format!("T({name}) = ("));
            for d in 0..self.n_dims() {
                if d > 0 {
                    out.push_str(", ");
                }
                let row = &self.rows[d][s];
                match self.dims[d] {
                    DimKind::Scalar => out.push_str(&row.konst.to_string()),
                    DimKind::Loop => out.push_str(&render_affine(&row.coeffs, row.konst)),
                }
            }
            out.push_str(")\n");
        }
        out
    }
}

fn render_affine(coeffs: &[i128], konst: i128) -> String {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    let mut s = String::new();
    for (k, &c) in coeffs.iter().enumerate() {
        let name = NAMES
            .get(k)
            .copied()
            .map_or_else(|| format!("i{k}"), String::from);
        match c {
            0 => {}
            1 if s.is_empty() => s.push_str(&name),
            1 => s.push_str(&format!("+{name}")),
            -1 => s.push_str(&format!("-{name}")),
            c if c > 0 && !s.is_empty() => s.push_str(&format!("+{c}{name}")),
            c => s.push_str(&format!("{c}{name}")),
        }
    }
    if konst != 0 || s.is_empty() {
        if konst >= 0 && !s.is_empty() {
            s.push('+');
        }
        s.push_str(&konst.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_schedule() -> Schedule {
        // Two statements, dims: [Scalar, Loop, Loop].
        let mut sch = Schedule::new();
        sch.push_dim(
            DimKind::Scalar,
            vec![StmtRow::scalar(2, 0), StmtRow::scalar(2, 1)],
        );
        sch.push_dim(
            DimKind::Loop,
            vec![
                StmtRow {
                    coeffs: vec![0, 1],
                    konst: 0,
                }, // j (interchanged)
                StmtRow {
                    coeffs: vec![1, 0],
                    konst: 0,
                }, // i
            ],
        );
        sch.push_dim(
            DimKind::Loop,
            vec![
                StmtRow {
                    coeffs: vec![1, 0],
                    konst: 0,
                },
                StmtRow {
                    coeffs: vec![0, 1],
                    konst: 2,
                },
            ],
        );
        sch
    }

    #[test]
    fn apply_evaluates_all_dims() {
        let sch = simple_schedule();
        assert_eq!(sch.apply(0, &[3, 5]), vec![0, 5, 3]);
        assert_eq!(sch.apply(1, &[3, 5]), vec![1, 3, 7]);
    }

    #[test]
    fn loop_rank_counts_independent_rows() {
        let sch = simple_schedule();
        assert_eq!(sch.loop_rank(0, 2), 2);
        let mut degenerate = Schedule::new();
        degenerate.push_dim(
            DimKind::Loop,
            vec![StmtRow {
                coeffs: vec![1, 1],
                konst: 0,
            }],
        );
        degenerate.push_dim(
            DimKind::Loop,
            vec![StmtRow {
                coeffs: vec![2, 2],
                konst: 1,
            }],
        );
        assert_eq!(degenerate.loop_rank(0, 2), 1);
    }

    #[test]
    fn top_level_partitions_group_by_scalar_prefix() {
        let sch = simple_schedule();
        assert_eq!(sch.top_level_partitions(), vec![0, 1]);

        let mut fused = Schedule::new();
        fused.push_dim(
            DimKind::Scalar,
            vec![
                StmtRow::scalar(1, 0),
                StmtRow::scalar(1, 0),
                StmtRow::scalar(1, 2),
            ],
        );
        fused.push_dim(
            DimKind::Loop,
            vec![
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
            ],
        );
        assert_eq!(fused.top_level_partitions(), vec![0, 0, 1]);
    }

    #[test]
    fn no_scalar_prefix_means_single_partition() {
        let mut sch = Schedule::new();
        sch.push_dim(
            DimKind::Loop,
            vec![
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
            ],
        );
        assert_eq!(sch.top_level_partitions(), vec![0, 0]);
    }

    #[test]
    fn pop_dim_roundtrip() {
        let mut sch = simple_schedule();
        let n = sch.n_dims();
        let (kind, rows) = sch.pop_dim().unwrap();
        assert_eq!(kind, DimKind::Loop);
        sch.push_dim(kind, rows);
        assert_eq!(sch.n_dims(), n);
    }

    #[test]
    fn render_shows_interchange_and_shift() {
        let sch = simple_schedule();
        let text = sch.render(&["S1".into(), "S2".into()]);
        assert!(text.contains("T(S1) = (0, j, i)"), "got {text}");
        assert!(text.contains("T(S2) = (1, i, j+2)"), "got {text}");
    }

    #[test]
    fn zero_and_scalar_rows() {
        assert!(StmtRow::zero(3).is_zero());
        assert!(!StmtRow::scalar(3, 1).is_zero());
        assert_eq!(StmtRow::scalar(2, 7).eval(&[100, 200]), 7);
    }
}
