//! The affine form of the Farkas lemma.
//!
//! An affine form `ψ(x)` is non-negative everywhere on a non-empty
//! polyhedron `P = { x | A x + b ≥ 0 }` iff it can be written as a
//! non-negative combination `ψ(x) ≡ λ₀ + λᵀ(A x + b)` with `λ ≥ 0`.
//! Equating coefficients of `x` and the constant yields equalities linking
//! the (unknown) schedule coefficients inside `ψ` to the multipliers `λ`;
//! eliminating the multipliers with Fourier–Motzkin leaves the exact set of
//! legality/bounding constraints on the schedule coefficients.

use wf_harness::obs;
use wf_polyhedra::constraint::{Constraint, ConstraintKind, ConstraintSystem};
use wf_polyhedra::fm;

/// A linear form over the schedule-coefficient variables:
/// list of `(variable index, coefficient)`.
pub type LinForm = Vec<(usize, i128)>;

/// Constraints on `n_sched` schedule variables equivalent to
/// "`ψ(x) ≥ 0` for all `x` in `poly`", where
///
/// * `poly` ranges over `nv` variables,
/// * the coefficient of `x_j` inside `ψ` is the linear form `psi_vars[j]`,
/// * the constant term of `ψ` is the linear form `psi_const` (use an entry
///   with variable index `usize::MAX` in neither — constants in ψ that do
///   not involve schedule variables can be encoded by a dedicated always-one
///   variable in the caller, but none of our ψ's need that).
///
/// The caller must ensure `poly` is non-empty (Farkas requires it); the
/// dependence analyzer only produces non-empty polyhedra.
#[must_use]
pub fn nonneg_over(
    poly: &ConstraintSystem,
    psi_vars: &[LinForm],
    psi_const: &LinForm,
    n_sched: usize,
) -> ConstraintSystem {
    let nv = poly.n_vars;
    assert_eq!(psi_vars.len(), nv, "psi coefficient arity mismatch");

    // Multipliers: inequalities get sign-constrained λ ≥ 0; equalities get a
    // *free* multiplier μ (the affine Farkas form over a polyhedron with
    // equalities). Free multipliers appear only in the coefficient-matching
    // equalities, so they are eliminated by exact Gaussian substitution
    // rather than pairwise FM — a large constant-factor saving for deep
    // dependence polyhedra.
    let rows: Vec<(&Vec<i128>, ConstraintKind)> = poly
        .constraints
        .iter()
        .map(|c| (&c.coeffs, c.kind))
        .collect();
    let m = rows.len();

    // Variable space: [sched (n_sched) | λ0 | multipliers_1..m].
    let total = n_sched + 1 + m;
    let mut sys = ConstraintSystem::new(total);

    // Coefficient matching for each x_j:  Σ_k mult_k A_kj − ψ_j(c) = 0.
    for j in 0..nv {
        let mut row = vec![0i128; total + 1];
        for (k, (r, _)) in rows.iter().enumerate() {
            row[n_sched + 1 + k] = r[j];
        }
        for &(var, coef) in &psi_vars[j] {
            row[var] -= coef;
        }
        sys.constraints.push(Constraint::eq0(row));
    }
    // Constant matching:  λ0 + Σ_k mult_k b_k − ψ_const(c) = 0.
    {
        let mut row = vec![0i128; total + 1];
        row[n_sched] = 1;
        for (k, (r, _)) in rows.iter().enumerate() {
            row[n_sched + 1 + k] = r[nv];
        }
        for &(var, coef) in psi_const {
            row[var] -= coef;
        }
        sys.constraints.push(Constraint::eq0(row));
    }
    // λ0 ≥ 0 and λ_k ≥ 0 for inequality rows only.
    sys.add_lower_bound(n_sched, 0);
    for (k, (_, kind)) in rows.iter().enumerate() {
        if *kind == ConstraintKind::Ineq {
            sys.add_lower_bound(n_sched + 1 + k, 0);
        }
    }

    // Eliminate the multipliers: free (equality) multipliers first — they
    // always substitute away — then greedy FM with LP-based redundancy
    // pruning for the sign-constrained ones.
    let mut elim: Vec<usize> = Vec::with_capacity(m + 1);
    for (k, (_, kind)) in rows.iter().enumerate() {
        if *kind == ConstraintKind::Eq {
            elim.push(n_sched + 1 + k);
        }
    }
    elim.push(n_sched);
    for (k, (_, kind)) in rows.iter().enumerate() {
        if *kind == ConstraintKind::Ineq {
            elim.push(n_sched + 1 + k);
        }
    }
    let wide = fm::eliminate_vars_greedy(&sys, &elim, 60);

    // Shrink back to the schedule variables.
    let mut out = ConstraintSystem::new(n_sched);
    let mut seen = std::collections::HashSet::new();
    for c in &wide.constraints {
        debug_assert!(c.coeffs[n_sched..total].iter().all(|&v| v == 0));
        let mut coeffs: Vec<i128> = c.coeffs[..n_sched].to_vec();
        coeffs.push(c.coeffs[total]);
        let cons = Constraint {
            coeffs,
            kind: c.kind,
        };
        if cons.is_trivial() {
            continue;
        }
        if seen.insert((cons.coeffs.clone(), cons.kind)) {
            out.constraints.push(cons);
        }
    }
    obs::add("farkas.systems", 1);
    obs::add("farkas.rows", out.constraints.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_polyhedra::{ilp_feasible, Polyhedron};

    /// ψ(x) = c0 + c1*x must be ≥ 0 on [2, 5]. Farkas should admit
    /// (c0, c1) = (0, 1) and (10, -2), and reject (0, -1) and (-1, 0).
    #[test]
    fn interval_nonnegativity() {
        let mut p = ConstraintSystem::new(1);
        p.add_lower_bound(0, 2);
        p.add_upper_bound(0, 5);
        // sched vars: c0 (idx 0), c1 (idx 1); ψ coeff of x = c1, const = c0.
        let sys = nonneg_over(&p, &[vec![(1, 1)]], &vec![(0, 1)], 2);
        let check = |c0: i128, c1: i128| {
            let mut s = sys.clone();
            s.add_fixed(0, c0);
            s.add_fixed(1, c1);
            !Polyhedron::from(s).is_empty_rational()
        };
        assert!(check(0, 1), "x >= 0 on [2,5]");
        assert!(check(10, -2), "10 - 2x >= 0 on [2,5]");
        assert!(check(-2, 1), "x - 2 >= 0 on [2,5] (tight)");
        assert!(!check(0, -1), "-x is negative on [2,5]");
        assert!(!check(-3, 1), "x - 3 < 0 at x = 2");
    }

    /// Legality constraint of a classic uniform dependence: source s,
    /// target t = s + 1 over 0 <= s <= N-2 (N >= 2 parametric).
    /// ψ = c*t - c*s = c. Farkas must force nothing (any c >= 0 works since
    /// ψ = c(t - s) = c >= 0 iff c >= 0).
    #[test]
    fn uniform_dependence_legality() {
        // Vars of poly: s, t, N.
        let mut p = ConstraintSystem::new(3);
        p.add_lower_bound(0, 0);
        p.add_ge0(vec![-1, 0, 1, -2]); // s <= N - 2
        p.add_eq0(vec![-1, 1, 0, -1]); // t = s + 1
        p.add_lower_bound(2, 2); // N >= 2
                                 // sched var: single coefficient c (idx 0).
                                 // ψ coeff: s -> -c, t -> +c, N -> 0; const -> 0.
        let sys = nonneg_over(&p, &[vec![(0, -1)], vec![(0, 1)], vec![]], &vec![], 1);
        let feas = |c: i128| {
            let mut s = sys.clone();
            s.add_fixed(0, c);
            ilp_feasible(&s).is_some()
        };
        assert!(feas(0));
        assert!(feas(1));
        assert!(feas(3));
        assert!(!feas(-1), "reversal would break the dependence");
    }

    /// Backward dependence t = s - 1: only c <= 0 keeps c(t-s) = -c >= 0,
    /// so with c required nonneg by the caller the only survivor is c = 0.
    #[test]
    fn backward_dependence_forces_zero_or_reversal() {
        let mut p = ConstraintSystem::new(3);
        p.add_lower_bound(0, 1);
        p.add_ge0(vec![-1, 0, 1, -1]); // s <= N-1
        p.add_eq0(vec![-1, 1, 0, 1]); // t = s - 1
        p.add_lower_bound(2, 2);
        let sys = nonneg_over(&p, &[vec![(0, -1)], vec![(0, 1)], vec![]], &vec![], 1);
        let feas = |c: i128| {
            let mut s = sys.clone();
            s.add_fixed(0, c);
            ilp_feasible(&s).is_some()
        };
        assert!(feas(0));
        assert!(feas(-2), "reversal is fine for ψ >= 0");
        assert!(!feas(1), "forward hyperplane violates backward dep");
    }

    /// Bounding-function use: ψ = u*N + w - (t - s) over the dependence
    /// t = s + 1: needs u*N + w >= 1, so (u,w) = (0,1) works, (0,0) fails.
    #[test]
    fn bounding_function_constraints() {
        let mut p = ConstraintSystem::new(3);
        p.add_lower_bound(0, 0);
        p.add_ge0(vec![-1, 0, 1, -2]);
        p.add_eq0(vec![-1, 1, 0, -1]);
        p.add_lower_bound(2, 2);
        // sched vars: u (0), w (1).
        // ψ coeffs: s -> +1 (constant lin form? no — +1 is a fixed number);
        // we encode fixed numbers by... the caller folds them into ψ through
        // schedule vars only, so here we test with φ fixed: δ = t - s = 1,
        // i.e. ψ = u*N + w - 1: coeff of s,t = 0, N -> u, const -> w - 1.
        // The constant -1 is folded by adding it to ψ_const via a pseudo-var
        // trick: instead express ψ const = w + (-1)*one where one == 1 is a
        // schedule var pinned to 1.
        let sys = {
            // sched vars: u(0), w(1), one(2).
            let mut s = nonneg_over(
                &p,
                &[vec![], vec![], vec![(0, 1)]],
                &vec![(1, 1), (2, -1)],
                3,
            );
            s.add_fixed(2, 1);
            s
        };
        let feas = |u: i128, w: i128| {
            let mut s = sys.clone();
            s.add_fixed(0, u);
            s.add_fixed(1, w);
            ilp_feasible(&s).is_some()
        };
        assert!(feas(0, 1));
        assert!(feas(1, 0));
        assert!(!feas(0, 0), "distance 1 is not bounded by 0");
    }
}
