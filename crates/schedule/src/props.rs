//! Post-scheduling loop-property analysis: which loop dimensions are
//! parallel for which fused statement groups.
//!
//! A loop dimension `d` is **parallel** for a group of statements fused at
//! `d` (i.e. agreeing on every scalar dimension before `d`) iff no
//! dependence between group members that is still unsatisfied before `d`
//! is carried by `d` — that is, `φ_dst(t) − φ_src(s) ≡ 0` on the dependence
//! polyhedron. If some dependence has a positive difference at `d`, the
//! loop is a *forward-dependence* (pipelined) loop: legal but serial at the
//! outer level, the situation wisefuse's Algorithm 2 exists to avoid.

use crate::pluto::Transformed;
use crate::transform::DimKind;
use wf_deps::Ddg;
use wf_linalg::Rat;
use wf_polyhedra::poly::Extremum;
use wf_scop::Scop;

/// Parallelism classification of one loop dimension for one statement group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopProp {
    /// No dependence carried: outer-parallel (communication-free).
    Parallel,
    /// Some dependence carried with non-negative distance: pipelined.
    Forward,
}

/// Per-dimension, per-statement loop properties.
///
/// `props[d][s]` is `None` for scalar dimensions (and for statements whose
/// row at `d` is irrelevant); `Some(prop)` classifies the loop that
/// statement `s` shares with its group at dimension `d`.
#[must_use]
pub fn analyze(scop: &Scop, ddg: &Ddg, t: &Transformed) -> Vec<Vec<Option<LoopProp>>> {
    let n = scop.n_statements();
    let ndims = t.schedule.n_dims();
    let mut props: Vec<Vec<Option<LoopProp>>> = vec![vec![None; n]; ndims];
    for d in 0..ndims {
        if t.schedule.dims[d] != DimKind::Loop {
            continue;
        }
        // Group statements by the scalar values of all scalar dims before d.
        let key = |s: usize| -> Vec<i128> {
            (0..d)
                .filter(|&k| t.schedule.dims[k] == DimKind::Scalar)
                .map(|k| t.schedule.rows[k][s].konst)
                .collect::<Vec<_>>()
        };
        let mut groups: std::collections::BTreeMap<Vec<i128>, Vec<usize>> = Default::default();
        for s in 0..n {
            groups.entry(key(s)).or_default().push(s);
        }
        for (_, members) in groups {
            let set: std::collections::HashSet<usize> = members.iter().copied().collect();
            let mut prop = LoopProp::Parallel;
            for (e, edge) in ddg.edges.iter().enumerate() {
                if !set.contains(&edge.src) || !set.contains(&edge.dst) {
                    continue;
                }
                // Satisfied strictly before d (by an earlier dim)?
                if matches!(t.sat_dim[e], Some(sd) if sd < d) {
                    continue;
                }
                // Carried here (or live through here)?
                let nv = edge.poly.n_vars();
                let mut expr = vec![0i128; nv + 1];
                let (sr, dr) = (&t.schedule.rows[d][edge.src], &t.schedule.rows[d][edge.dst]);
                for k in 0..edge.src_depth {
                    expr[k] -= sr.coeffs[k];
                }
                for k in 0..edge.dst_depth {
                    expr[edge.src_depth + k] += dr.coeffs[k];
                }
                expr[nv] = dr.konst - sr.konst;
                match edge.poly.max_affine(&expr) {
                    Extremum::Value(v) if v <= Rat::ZERO => {}
                    Extremum::Empty => {}
                    _ => {
                        prop = LoopProp::Forward;
                        break;
                    }
                }
            }
            for &s in &members {
                props[d][s] = Some(prop);
            }
        }
    }
    props
}

/// Convenience: is the outermost loop dimension parallel for every
/// statement? (The paper's "coarse-grained parallelism preserved" check.)
#[must_use]
pub fn outer_parallel(props: &[Vec<Option<LoopProp>>], schedule: &crate::Schedule) -> bool {
    let Some(first_loop) = schedule.dims.iter().position(|&k| k == DimKind::Loop) else {
        return true;
    };
    props[first_loop]
        .iter()
        .all(|p| matches!(p, Some(LoopProp::Parallel) | None))
}
