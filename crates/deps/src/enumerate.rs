//! Fusion-partitioning search-space combinatorics.
//!
//! Section 1 of the paper motivates the need for a cost model by counting the
//! legal fusion partitionings: `L * 2^(k-1)` where `L` is the number of legal
//! orderings (linear extensions of the precedence partial order among `k`
//! units) and every ordering admits `2^(k-1)` cut placements. For swim's
//! S1–S3 that is `3! * 4 = 24`; for S13–S18 (three 2-chains) it is
//! `90 * 32 = 2880`. These counts are reproduced as tests.

/// Count linear extensions of the partial order given by `edges` (u must
/// come before v) over `n` elements, via bitmask DP. Practical for `n <= 20`.
#[must_use]
pub fn count_linear_extensions(n: usize, edges: &[(usize, usize)]) -> u128 {
    assert!(n <= 24, "linear-extension DP limited to 24 elements");
    // preds[v] = bitmask of elements that must precede v.
    let mut preds = vec![0u32; n];
    for &(u, v) in edges {
        assert!(u < n && v < n);
        preds[v] |= 1 << u;
    }
    let full = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut dp = vec![0u128; (full as usize) + 1];
    dp[0] = 1;
    for mask in 0..=full {
        let ways = dp[mask as usize];
        if ways == 0 {
            continue;
        }
        for v in 0..n {
            let bit = 1u32 << v;
            if mask & bit == 0 && (preds[v] & !mask) == 0 {
                dp[(mask | bit) as usize] += ways;
            }
        }
    }
    dp[full as usize]
}

/// Enumerate all linear extensions (legal orderings) of the partial order,
/// up to `limit` (panics beyond it — this is the iterative-search
/// comparison's tool, meant for tiny programs only).
#[must_use]
pub fn linear_extensions(n: usize, edges: &[(usize, usize)], limit: usize) -> Vec<Vec<usize>> {
    let mut preds = vec![0u32; n];
    for &(u, v) in edges {
        preds[v] |= 1 << u;
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(n);
    fn rec(
        n: usize,
        preds: &[u32],
        placed: u32,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        limit: usize,
    ) {
        if cur.len() == n {
            assert!(out.len() < limit, "more than {limit} linear extensions");
            out.push(cur.clone());
            return;
        }
        for v in 0..n {
            let bit = 1u32 << v;
            if placed & bit == 0 && (preds[v] & !placed) == 0 {
                cur.push(v);
                rec(n, preds, placed | bit, cur, out, limit);
                cur.pop();
            }
        }
    }
    rec(n, &preds, 0, &mut cur, &mut out, limit);
    out
}

/// Total number of fusion partitionings: legal orderings times `2^(n-1)`
/// cut placements (each adjacent pair fused or cut).
#[must_use]
pub fn count_fusion_partitionings(n: usize, edges: &[(usize, usize)]) -> u128 {
    if n == 0 {
        return 0;
    }
    count_linear_extensions(n, edges) * (1u128 << (n - 1))
}

/// Natural log of `n!` by direct summation (exact enough for display;
/// `n` here is a statement count, well under 10^3).
fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Count linear extensions of partial orders too large for the bitmask DP,
/// returning the *natural log* of the count and whether it is exact.
/// Decomposes the precedence DAG into weakly connected components, counts
/// each component exactly with the DP, and combines with the multinomial
/// interleaving factor `n! / Π nᵢ!` — exact whenever every component has
/// ≤ 24 elements. Components beyond the DP limit contribute the
/// topological-layering lower bound `Π |levelⱼ|!` (any order that emits
/// the layers in sequence, freely permuted within each layer, is a valid
/// extension), and the result is flagged as a lower bound.
#[must_use]
pub fn ln_count_linear_extensions(n: usize, edges: &[(usize, usize)]) -> (f64, bool) {
    if n == 0 {
        return (0.0, true);
    }
    // Union-find over weakly connected components.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            parent[r] = parent[parent[r]];
            r = parent[r];
        }
        r
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    let mut members: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for v in 0..n {
        let r = find(&mut parent, v);
        members.entry(r).or_default().push(v);
    }
    // ln(n!/Π nᵢ!) + Σ ln ext(component i).
    let mut ln_total = ln_factorial(n);
    let mut exact = true;
    for comp in members.values() {
        ln_total -= ln_factorial(comp.len());
        // Relabel the component's edges into 0..len.
        let index: std::collections::HashMap<usize, usize> =
            comp.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let local: Vec<(usize, usize)> = edges
            .iter()
            .filter(|(u, v)| index.contains_key(u) && index.contains_key(v))
            .map(|(u, v)| (index[u], index[v]))
            .collect();
        if comp.len() <= 24 {
            ln_total += (count_linear_extensions(comp.len(), &local) as f64).ln();
        } else {
            // Lower bound: longest-path layering; layers emitted in
            // sequence, freely permuted within each layer.
            let m = comp.len();
            let mut level = vec![0usize; m];
            // local edges form a DAG; relax levels to a fixpoint (≤ m passes).
            for _ in 0..m {
                let mut changed = false;
                for &(u, v) in &local {
                    if level[v] < level[u] + 1 {
                        level[v] = level[u] + 1;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut layer_sizes = std::collections::HashMap::new();
            for &l in &level {
                *layer_sizes.entry(l).or_insert(0usize) += 1;
            }
            ln_total += layer_sizes.values().map(|&s| ln_factorial(s)).sum::<f64>();
            exact = false;
        }
    }
    (ln_total, exact)
}

/// [`count_fusion_partitionings`] for large programs: natural log of
/// (linear extensions × 2^(n-1)) plus an exactness flag. Exact when every
/// weakly connected component of the precedence DAG has ≤ 24 elements, a
/// lower bound otherwise.
#[must_use]
pub fn ln_count_fusion_partitionings(n: usize, edges: &[(usize, usize)]) -> (f64, bool) {
    if n == 0 {
        return (f64::NEG_INFINITY, true);
    }
    let (ln, exact) = ln_count_linear_extensions(n, edges);
    (ln + (n as f64 - 1.0) * std::f64::consts::LN_2, exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_factorial() {
        assert_eq!(count_linear_extensions(3, &[]), 6);
        assert_eq!(count_linear_extensions(4, &[]), 24);
        assert_eq!(count_linear_extensions(0, &[]), 1);
        assert_eq!(count_linear_extensions(1, &[]), 1);
    }

    #[test]
    fn total_order_is_one() {
        assert_eq!(count_linear_extensions(4, &[(0, 1), (1, 2), (2, 3)]), 1);
    }

    #[test]
    fn paper_swim_s1_s3_count_is_24() {
        // Three independent statements: 3! orderings x 2^2 partitions = 24.
        assert_eq!(count_fusion_partitionings(3, &[]), 24);
    }

    #[test]
    fn paper_swim_s13_s18_count_is_2880() {
        // S13->S16, S14->S17, S15->S18: three disjoint 2-chains.
        // Linear extensions: 6! / 2^3 = 90; times 2^5 = 2880.
        let edges = [(0, 3), (1, 4), (2, 5)];
        assert_eq!(count_linear_extensions(6, &edges), 90);
        assert_eq!(count_fusion_partitionings(6, &edges), 2880);
    }

    #[test]
    fn diamond_partial_order() {
        // 0 < {1,2} < 3: extensions = 2.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        assert_eq!(count_linear_extensions(4, &edges), 2);
    }

    #[test]
    fn zero_statements_have_no_partitionings() {
        assert_eq!(count_fusion_partitionings(0, &[]), 0);
    }

    #[test]
    fn enumeration_matches_count() {
        let edges = [(0usize, 3usize), (1, 4), (2, 5)];
        let exts = linear_extensions(6, &edges, 1000);
        assert_eq!(exts.len() as u128, count_linear_extensions(6, &edges));
        // Every extension respects the order.
        for e in &exts {
            let pos = |v: usize| e.iter().position(|&x| x == v).unwrap();
            for &(u, v) in &edges {
                assert!(pos(u) < pos(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn enumeration_limit_trips() {
        let _ = linear_extensions(6, &[], 10);
    }

    #[test]
    fn ln_count_matches_exact_on_small_orders() {
        for (n, edges) in [
            (3usize, vec![]),
            (6, vec![(0usize, 3usize), (1, 4), (2, 5)]),
            (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            (5, vec![(0, 1), (1, 2)]),
        ] {
            let exact = count_linear_extensions(n, &edges) as f64;
            let (ln, is_exact) = ln_count_linear_extensions(n, &edges);
            assert!(is_exact, "n={n}: small orders must be counted exactly");
            assert!(
                (ln - exact.ln()).abs() < 1e-9,
                "n={n}: ln {} vs exact ln {}",
                ln,
                exact.ln()
            );
            let (lnp, _) = ln_count_fusion_partitionings(n, &edges);
            let exactp = count_fusion_partitionings(n, &edges) as f64;
            assert!((lnp - exactp.ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn ln_count_handles_36_element_order() {
        // 12 disjoint 3-chains (a swim-like pass structure): extensions =
        // 36! / 6^12; the DP cannot touch the whole order, the component
        // decomposition can — and every component is tiny, so it's exact.
        let edges: Vec<(usize, usize)> = (0..12)
            .flat_map(|c| [(3 * c, 3 * c + 1), (3 * c + 1, 3 * c + 2)])
            .collect();
        let expect = ln_factorial(36) - 12.0 * 6f64.ln();
        let (got, exact) = ln_count_linear_extensions(36, &edges);
        assert!(exact);
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn ln_count_large_component_lower_bound() {
        // One 30-element component: 15 independent 2-chains all joined
        // through a common sink, exceeding the DP limit. The layering
        // bound must be positive (layers of 15, 14 and 1) and flagged
        // inexact.
        let mut edges: Vec<(usize, usize)> = (0..14).map(|c| (2 * c, 2 * c + 1)).collect();
        for v in 0..28 {
            edges.push((v, 29)); // common sink joins everything
        }
        edges.push((28, 29));
        let (ln, exact) = ln_count_linear_extensions(30, &edges);
        assert!(!exact, "30-element component exceeds the DP limit");
        // Layers: level0 = {0,2,..,28} (15 sources), level1 = {1,3,..,27}
        // (14 mid), level2 = {29}: bound = 15! * 14!.
        let expect = ln_factorial(15) + ln_factorial(14);
        assert!((ln - expect).abs() < 1e-6, "{ln} vs {expect}");
    }

    #[test]
    fn ln_count_empty_program() {
        assert_eq!(ln_count_linear_extensions(0, &[]), (0.0, true));
        let (ln, exact) = ln_count_fusion_partitionings(0, &[]);
        assert_eq!(ln, f64::NEG_INFINITY);
        assert!(exact);
    }
}
