//! Exact polyhedral dependence analysis (the Candl stand-in).
//!
//! For every ordered pair of statements and every pair of conflicting
//! accesses we build *dependence polyhedra*: systems over
//! `(source iters…, target iters…, params…)` conjoining both iteration
//! domains, subscript equality, and the original-schedule precedence
//! condition — one polyhedron per precedence disjunct (carried at loop
//! level ℓ, or loop-independent). Emptiness is decided exactly.
//!
//! The resulting [`Ddg`] carries
//! * **legality edges** (flow / anti / output) — these constrain scheduling,
//! * **input (read-after-read) edges** — these carry no legality constraint
//!   but represent data reuse; wisefuse's Algorithm 1 consumes them, which
//!   is one of the paper's key points (PLuTo's DDG traversal cannot see
//!   them).
//!
//! SCCs of the legality subgraph are computed with both Tarjan's and
//! Kosaraju's algorithms (the paper cites Kosaraju via Sharir; Tarjan is the
//! default here, Kosaraju kept as a cross-check).

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod analyze;
pub mod ddg;
pub mod enumerate;
pub mod scc;

pub use analyze::{analyze, try_analyze};
pub use ddg::{Ddg, DepEdge, DepKind, DepLevel};
pub use scc::{kosaraju, kosaraju_raw, tarjan, SccInfo};
