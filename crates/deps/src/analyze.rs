//! Dependence polyhedron construction.

use crate::ddg::{Ddg, DepEdge, DepKind, DepLevel};
use wf_harness::{pool, WfError};
use wf_polyhedra::{ConstraintSystem, Polyhedron};
use wf_scop::{AccessKind, Scop};

/// Analyze all dependences of a SCoP.
///
/// Dependences are *memory-based* (every pair of accesses to a common
/// location in original execution order), exactly what PLuTo consumes from
/// Candl. Emptiness of each candidate polyhedron is decided by exact
/// rational LP: a rationally-empty system has no integer points either, and
/// the rare rationally-nonempty/integrally-empty candidate only yields a
/// conservative extra edge (never an illegal transform).
#[must_use]
pub fn analyze(scop: &Scop) -> Ddg {
    let mut span = wf_harness::span!("deps.analyze", "scop" => scop.name.clone());
    let n = scop.n_statements();
    let mut ddg = Ddg {
        n,
        edges: Vec::new(),
        rar: Vec::new(),
    };
    for src in 0..n {
        for dst in 0..n {
            let (edges, rar) = collect_pair(scop, src, dst);
            ddg.edges.extend(edges);
            ddg.rar.extend(rar);
        }
    }
    span.arg("edges", ddg.edges.len().to_string());
    wf_harness::obs::add("deps.analyses", 1);
    ddg
}

/// [`analyze`] with the pairwise `(src, dst)` statement tests forked
/// across up to `threads` workers of the shared
/// [`pool::global`](wf_harness::pool::global) thread pool.
///
/// Each of the `n²` ordered statement pairs is an independent job
/// ([`collect_pair`] is a pure function of the SCoP), and the per-pair
/// edge lists are merged in pair-index order — the same `src`-major
/// order the serial loop visits — so the resulting [`Ddg`] is
/// **byte-identical** to [`analyze`] at every worker count. `threads <= 1`
/// (or a single-statement SCoP) short-circuits to the serial path
/// inline on the calling thread.
///
/// # Errors
/// [`WfError::JobPanic`] when a worker job panics; the panic is contained
/// per-slot by [`ThreadPool::try_scope`](wf_harness::ThreadPool::try_scope)
/// and surfaced here as the typed error instead of poisoning the pool.
pub fn try_analyze(scop: &Scop, threads: usize) -> Result<Ddg, WfError> {
    let n = scop.n_statements();
    if threads <= 1 || n <= 1 {
        return Ok(analyze(scop));
    }
    let mut span = wf_harness::span!("deps.analyze_parallel", "scop" => scop.name.clone());
    let slots = pool::global().try_scope(threads, n * n, |i| collect_pair(scop, i / n, i % n));
    let mut ddg = Ddg {
        n,
        edges: Vec::new(),
        rar: Vec::new(),
    };
    for slot in slots {
        let (edges, rar) = slot.map_err(WfError::from)?;
        ddg.edges.extend(edges);
        ddg.rar.extend(rar);
    }
    span.arg("edges", ddg.edges.len().to_string());
    wf_harness::obs::add("deps.analyses", 1);
    Ok(ddg)
}

/// All dependence edges of one ordered statement pair, split into
/// constraining edges and read-after-read reuse edges. Pure in
/// `(scop, src, dst)`, which is what makes the pairwise fork of
/// [`try_analyze`] deterministic.
fn collect_pair(scop: &Scop, src: usize, dst: usize) -> (Vec<DepEdge>, Vec<DepEdge>) {
    // Labels live on the worker thread running this job, so any LP the
    // pair test triggers is attributed to the pair itself. The span makes
    // dependence analysis a first-class cost center in `wfc profile`.
    let _bench_label =
        wf_harness::attr::label_fmt(wf_harness::attr::Slot::Bench, || scop.name.clone());
    let _unit_label = wf_harness::attr::label_fmt(wf_harness::attr::Slot::Unit, || {
        format!(
            "pair({},{})",
            scop.statements[src].name, scop.statements[dst].name
        )
    });
    let mut pair_span = wf_harness::span!("deps.pair");
    pair_span
        .arg("src", scop.statements[src].name.as_str())
        .arg("dst", scop.statements[dst].name.as_str());
    let mut edges = Vec::new();
    let mut rar = Vec::new();
    let a = &scop.statements[src];
    let b = &scop.statements[dst];
    let common = scop.common_loops(src, dst);
    // Precedence disjuncts this ordered pair can realize.
    let mut levels: Vec<DepLevel> = (0..common).map(DepLevel::Carried).collect();
    if src != dst && scop.precedes_at(src, dst, common) {
        levels.push(DepLevel::Independent);
    }
    if levels.is_empty() {
        return (edges, rar);
    }
    for (ka, acc_a) in a.accesses() {
        for (kb, acc_b) in b.accesses() {
            if acc_a.array != acc_b.array {
                continue;
            }
            let kind = match (ka, kb) {
                (AccessKind::Write, AccessKind::Read) => DepKind::Flow,
                (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
                (AccessKind::Write, AccessKind::Write) => DepKind::Output,
                (AccessKind::Read, AccessKind::Read) => DepKind::Input,
            };
            // Self input-dependences are uninteresting for fusion decisions.
            if kind == DepKind::Input && src == dst {
                continue;
            }
            for &level in &levels {
                let mut cs = dependence_system(scop, src, dst, &acc_a.map, &acc_b.map, level);
                let poly = Polyhedron::from(cs.clone());
                if poly.is_empty_rational() {
                    continue;
                }
                // Shrink the polyhedron once here: every redundant row later
                // becomes a Farkas multiplier the scheduler must eliminate.
                cs.simplify();
                let cs = wf_polyhedra::fm::remove_redundant(&cs);
                let poly = Polyhedron::from(cs);
                let edge = DepEdge {
                    src,
                    dst,
                    kind,
                    level,
                    poly,
                    src_depth: a.depth,
                    dst_depth: b.depth,
                    array: acc_a.array,
                };
                if kind.constrains() {
                    edges.push(edge);
                } else {
                    rar.push(edge);
                }
            }
        }
    }
    (edges, rar)
}

/// Build the dependence constraint system over
/// `(src iters…, dst iters…, params…)` for one precedence disjunct.
#[must_use]
pub fn dependence_system(
    scop: &Scop,
    src: usize,
    dst: usize,
    map_a: &[Vec<i128>],
    map_b: &[Vec<i128>],
    level: DepLevel,
) -> ConstraintSystem {
    let a = &scop.statements[src];
    let b = &scop.statements[dst];
    let (da, db, np) = (a.depth, b.depth, scop.n_params());
    let nv = da + db + np;
    let mut cs = ConstraintSystem::new(nv);

    // Source domain: iters at [0, da), params at [da+db, da+db+np).
    let a_map: Vec<usize> = (0..da).chain(da + db..nv).collect();
    cs.extend(&a.domain.embed(nv, &a_map));
    // Target domain: iters at [da, da+db).
    let b_map: Vec<usize> = (da..da + db).chain(da + db..nv).collect();
    cs.extend(&b.domain.embed(nv, &b_map));
    // Parameter context.
    let p_map: Vec<usize> = (da + db..nv).collect();
    cs.extend(&scop.context.embed(nv, &p_map));

    // Subscript equality per array dimension: f_a(s, p) == f_b(t, p).
    debug_assert_eq!(map_a.len(), map_b.len(), "access dimensionality mismatch");
    for (ra, rb) in map_a.iter().zip(map_b) {
        let mut row = vec![0i128; nv + 1];
        for k in 0..da {
            row[k] += ra[k];
        }
        for j in 0..np {
            row[da + db + j] += ra[da + j];
        }
        row[nv] += ra[da + np];
        for k in 0..db {
            row[da + k] -= rb[k];
        }
        for j in 0..np {
            row[da + db + j] -= rb[db + j];
        }
        row[nv] -= rb[db + np];
        cs.add_eq0(row);
    }

    // Precedence.
    match level {
        DepLevel::Carried(l) => {
            for k in 0..l {
                let mut row = vec![0i128; nv + 1];
                row[k] = 1;
                row[da + k] = -1;
                cs.add_eq0(row);
            }
            // t_l - s_l - 1 >= 0
            let mut row = vec![0i128; nv + 1];
            row[l] = -1;
            row[da + l] = 1;
            row[nv] = -1;
            cs.add_ge0(row);
        }
        DepLevel::Independent => {
            let common = scop.common_loops(src, dst);
            for k in 0..common {
                let mut row = vec![0i128; nv + 1];
                row[k] = 1;
                row[da + k] = -1;
                cs.add_eq0(row);
            }
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    /// for i: A[i] = 1;          S0
    /// for i: B[i] = A[i-1];     S1   (flow, loop-independent across nests)
    fn producer_consumer() -> Scop {
        let mut b = ScopBuilder::new("pc", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .write(bb, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) - 1])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    #[test]
    fn cross_nest_flow_dependence() {
        let scop = producer_consumer();
        let ddg = analyze(&scop);
        let flows: Vec<_> = ddg
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow)
            .collect();
        assert_eq!(flows.len(), 1);
        let e = flows[0];
        assert_eq!((e.src, e.dst), (0, 1));
        // Different nests share 0 loops -> loop-independent disjunct.
        assert_eq!(e.level, DepLevel::Independent);
        // Witness: (s=3, t=4, N=10) is in the polyhedron (A[3] written, read
        // by t=4 which reads A[3]).
        assert!(e.poly.contains(&[3, 4, 10]));
        assert!(!e.poly.contains(&[3, 5, 10]));
    }

    #[test]
    fn no_spurious_backward_edges() {
        let scop = producer_consumer();
        let ddg = analyze(&scop);
        assert!(ddg.edges.iter().all(|e| e.src == 0 && e.dst == 1));
    }

    /// for i: { A[i] = A[i-1]; }   carried self flow dependence at level 0.
    #[test]
    fn self_carried_dependence() {
        let mut b = ScopBuilder::new("chain", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) - 1])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let carried: Vec<_> = ddg
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow && e.level == DepLevel::Carried(0))
            .collect();
        assert_eq!(carried.len(), 1);
        // Distance exactly 1: (s, t) = (1, 2) in, (1, 3) out.
        assert!(carried[0].poly.contains(&[1, 2, 10]));
        assert!(!carried[0].poly.contains(&[1, 3, 10]));
        // No anti dependence: the read at iteration s touches A[s-1], which
        // is only written at iteration s-1 < s, never after the read.
        assert!(ddg.edges.iter().all(|e| e.kind != DepKind::Anti));
    }

    /// Two statements in one loop reading the same array: an input edge and
    /// no legality edge.
    #[test]
    fn input_dependences_are_separate() {
        let mut b = ScopBuilder::new("rar", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let x = b.array("X", &[Aff::param(0)]);
        let y = b.array("Y", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(x, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(y, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        assert!(
            ddg.edges.is_empty(),
            "no legality deps expected: {:?}",
            ddg.edges
        );
        assert!(!ddg.rar.is_empty(), "input dep expected");
        assert!(ddg.has_reuse(0, 1));
        assert!(ddg.rar_adjacency()[1][0], "reuse adjacency is symmetric");
    }

    /// Disjoint arrays -> no dependences at all.
    #[test]
    fn independent_statements() {
        let mut b = ScopBuilder::new("indep", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let x = b.array("X", &[Aff::param(0)]);
        let y = b.array("Y", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(x, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(y, &[Aff::iter(0)])
            .rhs(Expr::Const(2.0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        assert!(ddg.edges.is_empty());
        assert!(ddg.rar.is_empty());
        assert!(!ddg.has_reuse(0, 1));
    }

    /// gemver's S1/S2 situation (Figure 1): same-nest dependence where the
    /// conflicting subscripts are transposed. S1 writes A[i][j], S2 reads
    /// A[j][i] in a following nest.
    #[test]
    fn transposed_access_dependence() {
        let mut b = ScopBuilder::new("gv", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let x = b.array("X", &[Aff::param(0)]);
        b.stmt("S1", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S2", 2, &[1, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(x, &[Aff::iter(0)])
            .read(a, &[Aff::iter(1), Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let flow: Vec<_> = ddg
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow)
            .collect();
        assert_eq!(flow.len(), 1);
        // Witness (i=2, j=5) writes A[2][5]; read by S2 at (i=5, j=2).
        assert!(flow[0].poly.contains(&[2, 5, 5, 2, 10]));
        assert!(!flow[0].poly.contains(&[2, 5, 2, 5, 10]));
    }

    /// A statement pair with *no* instance conflict because domains don't
    /// overlap on the subscript: S0 writes A[0..N/2), S1 reads A[N/2..N)
    /// modelled with constant split at 5, N = 10 fixed by context.
    #[test]
    fn disjoint_ranges_no_dependence() {
        let mut b = ScopBuilder::new("split", &["N"]);
        // Fix N = 10 exactly.
        b.context_ge(Aff::param(0) - 10);
        b.context_ge(Aff::konst(10) - Aff::param(0));
        let a = b.array("A", &[Aff::param(0)]);
        let y = b.array("Y", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::konst(4))
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::konst(5), Aff::konst(9))
            .write(y, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        assert!(ddg.edges.is_empty(), "{:?}", ddg.edges);
    }

    /// Backward cross-statement dependence inside one loop: S1 reads A[i+1]
    /// which S0 writes at iteration i+1 -> anti dependence S1 -> S0 carried
    /// at level 0 (the "advect" pattern that forces shifting or cutting).
    #[test]
    fn backward_dependence_within_nest() {
        let mut b = ScopBuilder::new("bk", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let y = b.array("Y", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[0, 1])
            .bounds(0, Aff::zero(), Aff::param(0) - 2)
            .write(y, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) + 1])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        // Anti dependence S1 -> S0 carried at level 0 (read before write).
        assert!(
            ddg.edges.iter().any(|e| e.kind == DepKind::Anti
                && e.src == 1
                && e.dst == 0
                && e.level == DepLevel::Carried(0)),
            "expected carried anti dep S1->S0, got {:?}",
            ddg.edges
                .iter()
                .map(|e| (e.src, e.dst, e.kind, e.level))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn common_loop_carried_levels_counted() {
        // Two statements fused in a 2-deep nest, dependence distance (1, 0):
        // carried at level 0 only.
        let mut b = ScopBuilder::new("2d", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let y = b.array("Y", &[Aff::param(0), Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 2, &[0, 0, 1])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(y, &[Aff::iter(0), Aff::iter(1)])
            .read(a, &[Aff::iter(0) - 1, Aff::iter(1)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let flow_levels: Vec<_> = ddg
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow)
            .map(|e| e.level)
            .collect();
        assert_eq!(flow_levels, vec![DepLevel::Carried(0)]);
    }
}
