//! The data dependence graph.

use wf_polyhedra::Polyhedron;

/// Classification of a dependence by access kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// Read-after-read — no legality constraint, pure reuse information.
    Input,
}

impl DepKind {
    /// Does this dependence constrain legality (i.e. belong to the DDG
    /// proper)?
    #[must_use]
    pub fn constrains(self) -> bool {
        self != DepKind::Input
    }
}

/// Which precedence disjunct a dependence polyhedron encodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DepLevel {
    /// Carried by common loop `l` (0-based): outer iterators equal, source
    /// strictly earlier at loop `l`.
    Carried(usize),
    /// Loop-independent: all common iterators equal, source syntactically
    /// first.
    Independent,
}

/// One dependence: a non-empty polyhedron of (source, target) instance
/// pairs.
///
/// `PartialEq`/`Eq` compare every field (including the polyhedron's
/// constraint rows), which is what the parallel-analysis determinism
/// gate uses to assert serial and pooled DDGs are byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement index.
    pub src: usize,
    /// Target statement index.
    pub dst: usize,
    /// Access-kind classification.
    pub kind: DepKind,
    /// Precedence disjunct.
    pub level: DepLevel,
    /// Instance pairs over `(src iters…, dst iters…, params…)`.
    pub poly: Polyhedron,
    /// Source statement loop depth (leading variables of `poly`).
    pub src_depth: usize,
    /// Target statement loop depth (next variables of `poly`).
    pub dst_depth: usize,
    /// The array involved (index into the SCoP's array table).
    pub array: usize,
}

/// The data dependence graph of a SCoP.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ddg {
    /// Number of statements (vertices).
    pub n: usize,
    /// Legality edges (flow/anti/output), one per non-empty dependence
    /// polyhedron.
    pub edges: Vec<DepEdge>,
    /// Input (read-after-read) reuse edges.
    pub rar: Vec<DepEdge>,
}

impl Ddg {
    /// Boolean adjacency of legality edges: `adj[i][j]` iff some dependence
    /// goes `i -> j`.
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; self.n]; self.n];
        for e in &self.edges {
            adj[e.src][e.dst] = true;
        }
        adj
    }

    /// Boolean adjacency of input-dependence edges (symmetric closure: reuse
    /// has no direction for fusion purposes).
    #[must_use]
    pub fn rar_adjacency(&self) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; self.n]; self.n];
        for e in &self.rar {
            adj[e.src][e.dst] = true;
            adj[e.dst][e.src] = true;
        }
        adj
    }

    /// All legality edges between the given pair (either direction).
    pub fn edges_between(&self, a: usize, b: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges
            .iter()
            .filter(move |e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
    }

    /// Is there *any* reuse (legality or input dependence) between `a` and
    /// `b`, in either direction? This is the "data reuse" predicate of
    /// Algorithm 1 (line 17).
    #[must_use]
    pub fn has_reuse(&self, a: usize, b: usize) -> bool {
        self.edges
            .iter()
            .chain(self.rar.iter())
            .any(|e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
    }
}
