//! Strongly connected components of the legality DDG.
//!
//! The paper (following Sharir) uses Kosaraju's two-pass algorithm; we default
//! to Tarjan's single-pass algorithm and keep Kosaraju as an independent
//! implementation for cross-checking. Component ids are normalized to
//! *topological order* (every edge goes from a lower or equal id to a higher
//! or equal id), which is what the fusion machinery needs.

use crate::ddg::Ddg;

/// SCC decomposition of a DDG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccInfo {
    /// `scc_of[v]` = component id of statement `v`; ids are topologically
    /// ordered along legality edges.
    pub scc_of: Vec<usize>,
    /// Members of each component, in statement order.
    pub members: Vec<Vec<usize>>,
}

impl SccInfo {
    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when there are no statements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Maximum loop depth of the component's statements ("dimensionality of
    /// the SCC" in the paper).
    #[must_use]
    pub fn dimensionality(&self, scc: usize, depths: &[usize]) -> usize {
        self.members[scc]
            .iter()
            .map(|&v| depths[v])
            .max()
            .unwrap_or(0)
    }
}

fn adjacency_lists(ddg: &Ddg) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); ddg.n];
    for e in &ddg.edges {
        if !adj[e.src].contains(&e.dst) {
            adj[e.src].push(e.dst);
        }
    }
    adj
}

/// Tarjan's SCC algorithm (iterative), normalized to topological ids.
#[must_use]
pub fn tarjan(ddg: &Ddg) -> SccInfo {
    let n = ddg.n;
    let adj = adjacency_lists(ddg);
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_of = vec![usize::MAX; n];
    let mut n_comps = 0usize;

    // Explicit DFS stack: (vertex, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = n_comps;
                        if w == v {
                            break;
                        }
                    }
                    n_comps += 1;
                }
                dfs.pop();
                if let Some(&mut (p, _)) = dfs.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    normalize(comp_of, n_comps, ddg)
}

/// Kosaraju's two-pass SCC algorithm, normalized identically to
/// [`tarjan`]; kept as an independent implementation for cross-checks.
#[must_use]
pub fn kosaraju(ddg: &Ddg) -> SccInfo {
    let n = ddg.n;
    let adj = adjacency_lists(ddg);
    let mut radj = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    // Pass 1: finish order on the forward graph.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let mut dfs = vec![(root, 0usize)];
        visited[root] = true;
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if !visited[w] {
                    visited[w] = true;
                    dfs.push((w, 0));
                }
            } else {
                order.push(v);
                dfs.pop();
            }
        }
    }
    // Pass 2: reverse graph in reverse finish order.
    let mut comp_of = vec![usize::MAX; n];
    let mut n_comps = 0usize;
    for &root in order.iter().rev() {
        if comp_of[root] != usize::MAX {
            continue;
        }
        let mut dfs = vec![root];
        comp_of[root] = n_comps;
        while let Some(v) = dfs.pop() {
            for &w in &radj[v] {
                if comp_of[w] == usize::MAX {
                    comp_of[w] = n_comps;
                    dfs.push(w);
                }
            }
        }
        n_comps += 1;
    }
    normalize(comp_of, n_comps, ddg)
}

/// Kosaraju's algorithm with **raw** component numbering: ids are assigned
/// in reverse finish order of the first DFS pass, i.e. the order a
/// depth-first traversal *discovers* dependence chains. This is the
/// pre-fusion schedule PLuTo effectively uses (the paper's criticism: it
/// interleaves SCCs of different dimensionality and ignores input-dependence
/// reuse). Still a topological order of the condensation, hence legal.
#[must_use]
pub fn kosaraju_raw(ddg: &Ddg) -> SccInfo {
    let n = ddg.n;
    let adj = adjacency_lists(ddg);
    let mut radj = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let mut dfs = vec![(root, 0usize)];
        visited[root] = true;
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if !visited[w] {
                    visited[w] = true;
                    dfs.push((w, 0));
                }
            } else {
                order.push(v);
                dfs.pop();
            }
        }
    }
    let mut comp_of = vec![usize::MAX; n];
    let mut n_comps = 0usize;
    for &root in order.iter().rev() {
        if comp_of[root] != usize::MAX {
            continue;
        }
        let mut dfs = vec![root];
        comp_of[root] = n_comps;
        while let Some(v) = dfs.pop() {
            for &w in &radj[v] {
                if comp_of[w] == usize::MAX {
                    comp_of[w] = n_comps;
                    dfs.push(w);
                }
            }
        }
        n_comps += 1;
    }
    let mut members = vec![Vec::new(); n_comps];
    for (v, &c) in comp_of.iter().enumerate() {
        members[c].push(v);
    }
    SccInfo {
        scc_of: comp_of,
        members,
    }
}

/// Renumber component ids into a topological order of the condensation,
/// breaking ties by smallest member statement (stable, deterministic).
fn normalize(comp_of: Vec<usize>, n_comps: usize, ddg: &Ddg) -> SccInfo {
    // Build condensation edges.
    let mut cadj = vec![std::collections::BTreeSet::new(); n_comps];
    for e in &ddg.edges {
        let (a, b) = (comp_of[e.src], comp_of[e.dst]);
        if a != b {
            cadj[a].insert(b);
        }
    }
    // Kahn topological sort with min-member tie-break.
    let mut min_member = vec![usize::MAX; n_comps];
    for (v, &c) in comp_of.iter().enumerate() {
        min_member[c] = min_member[c].min(v);
    }
    let mut indeg = vec![0usize; n_comps];
    for outs in &cadj {
        for &b in outs {
            indeg[b] += 1;
        }
    }
    let mut ready: std::collections::BTreeSet<(usize, usize)> = (0..n_comps)
        .filter(|&c| indeg[c] == 0)
        .map(|c| (min_member[c], c))
        .collect();
    let mut new_id = vec![usize::MAX; n_comps];
    let mut next = 0usize;
    while let Some(&(mm, c)) = ready.iter().next() {
        ready.remove(&(mm, c));
        new_id[c] = next;
        next += 1;
        for &b in &cadj[c] {
            indeg[b] -= 1;
            if indeg[b] == 0 {
                ready.insert((min_member[b], b));
            }
        }
    }
    debug_assert_eq!(next, n_comps, "condensation must be acyclic");
    let scc_of: Vec<usize> = comp_of.iter().map(|&c| new_id[c]).collect();
    let mut members = vec![Vec::new(); n_comps];
    for (v, &c) in scc_of.iter().enumerate() {
        members[c].push(v);
    }
    SccInfo { scc_of, members }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use crate::ddg::{Ddg, DepEdge, DepKind, DepLevel};
    use wf_polyhedra::Polyhedron;

    pub(crate) fn edge(src: usize, dst: usize) -> DepEdge {
        DepEdge {
            src,
            dst,
            kind: DepKind::Flow,
            level: DepLevel::Independent,
            poly: Polyhedron::universe(0),
            src_depth: 1,
            dst_depth: 1,
            array: 0,
        }
    }

    pub(crate) fn graph(n: usize, edges: &[(usize, usize)]) -> Ddg {
        Ddg {
            n,
            edges: edges.iter().map(|&(a, b)| edge(a, b)).collect(),
            rar: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::graph;
    use super::*;

    #[test]
    fn singleton_components_topo_ordered() {
        let g = graph(3, &[(2, 1), (1, 0)]);
        let info = tarjan(&g);
        assert_eq!(info.len(), 3);
        // Topological: 2 before 1 before 0.
        assert!(info.scc_of[2] < info.scc_of[1]);
        assert!(info.scc_of[1] < info.scc_of[0]);
    }

    #[test]
    fn cycle_collapses() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let info = tarjan(&g);
        assert_eq!(info.len(), 2);
        assert_eq!(info.scc_of[0], info.scc_of[1]);
        assert_eq!(info.scc_of[1], info.scc_of[2]);
        assert!(info.scc_of[0] < info.scc_of[3]);
        assert_eq!(info.members[info.scc_of[0]], vec![0, 1, 2]);
    }

    #[test]
    fn disconnected_vertices_ordered_by_member() {
        let g = graph(3, &[]);
        let info = tarjan(&g);
        assert_eq!(info.scc_of, vec![0, 1, 2]);
    }

    #[test]
    fn tarjan_matches_kosaraju_on_fixed_graphs() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (1, vec![]),
            (2, vec![(0, 1), (1, 0)]),
            (5, vec![(0, 1), (1, 2), (2, 1), (3, 4)]),
            (6, vec![(0, 2), (2, 4), (4, 0), (1, 3), (3, 5), (5, 1)]),
        ];
        for (n, edges) in cases {
            let g = graph(n, &edges);
            assert_eq!(tarjan(&g), kosaraju(&g), "graph {edges:?}");
        }
    }

    #[test]
    fn topological_property_holds() {
        let g = graph(6, &[(5, 0), (0, 3), (3, 1), (1, 3), (2, 4)]);
        for info in [tarjan(&g), kosaraju(&g)] {
            for e in &g.edges {
                assert!(
                    info.scc_of[e.src] <= info.scc_of[e.dst],
                    "edge {} -> {} violates topo ids",
                    e.src,
                    e.dst
                );
            }
        }
    }

    #[test]
    fn dimensionality_is_max_member_depth() {
        let g = graph(3, &[(0, 1), (1, 0)]);
        let info = tarjan(&g);
        let depths = vec![2, 3, 1];
        assert_eq!(info.dimensionality(info.scc_of[0], &depths), 3);
        assert_eq!(info.dimensionality(info.scc_of[2], &depths), 1);
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        let info = tarjan(&g);
        assert!(info.is_empty());
        assert_eq!(kosaraju(&g).len(), 0);
    }
}

#[cfg(test)]
mod raw_tests {
    use super::tests_support::graph;
    use super::*;

    #[test]
    fn raw_kosaraju_is_topological() {
        let g = graph(6, &[(0, 3), (3, 5), (1, 4), (2, 4)]);
        let info = kosaraju_raw(&g);
        for e in &g.edges {
            assert!(info.scc_of[e.src] <= info.scc_of[e.dst]);
        }
    }

    #[test]
    fn raw_kosaraju_follows_chains() {
        // 0 -> 2, 1 independent: the dependence chain 0,2 is numbered
        // consecutively, while the unrelated statement 1 lands outside the
        // chain (here even before it — reverse finish order starts from the
        // last-finished root). That interleaving away from program order is
        // exactly the behaviour the paper criticizes.
        let g = graph(3, &[(0, 2)]);
        let info = kosaraju_raw(&g);
        assert_eq!(info.scc_of[2], info.scc_of[0] + 1, "chain consecutive");
        assert_ne!(info.scc_of[1], info.scc_of[0]);
        // Program order is NOT preserved: statement 1 is displaced.
        assert!(
            info.scc_of[1] != 1,
            "raw order displaces the interloper: {:?}",
            info.scc_of
        );
    }
}
