//! Pseudo-C pretty printing of the *original* (untransformed) program, used
//! by the figure harnesses to show source kernels the way the paper does.

use crate::scop::{Scop, Statement};
use crate::Expr;

/// Render the SCoP as indented pseudo-C in original program order.
///
/// Loop structure is reconstructed from the beta vectors: statements sharing
/// a beta prefix share the corresponding loops.
#[must_use]
pub fn render_original(scop: &Scop) -> String {
    let mut out = String::new();
    let mut open: Vec<usize> = Vec::new(); // open loop levels' beta prefix
    for s in &scop.statements {
        let shared = shared_prefix(&open, &s.beta, s.depth);
        while open.len() > shared {
            open.pop();
            indent(&mut out, open.len());
            out.push_str("}\n");
        }
        while open.len() < s.depth {
            let lvl = open.len();
            indent(&mut out, lvl);
            out.push_str(&format!("for ({}) {{\n", iter_name(lvl)));
            open.push(s.beta[lvl]);
        }
        indent(&mut out, s.depth);
        out.push_str(&format!("{}: {}\n", s.name, render_stmt(scop, s)));
        // Record current beta prefix for sharing checks.
        open.clear();
        open.extend_from_slice(&s.beta[..s.depth]);
    }
    for lvl in (0..open.len()).rev() {
        indent(&mut out, lvl);
        out.push_str("}\n");
    }
    out
}

fn shared_prefix(open: &[usize], beta: &[usize], depth: usize) -> usize {
    let mut k = 0;
    while k < open.len() && k < depth && open[k] == beta[k] {
        k += 1;
    }
    k
}

fn indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn iter_name(lvl: usize) -> String {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    NAMES
        .get(lvl)
        .map_or_else(|| format!("i{lvl}"), |s| (*s).to_string())
}

/// Render `A[i][j] = rhs;` for one statement.
#[must_use]
pub fn render_stmt(scop: &Scop, s: &Statement) -> String {
    let lhs = render_access(scop, s, s.write.array, &s.write.map);
    format!("{lhs} = {};", render_expr(scop, s, &s.rhs))
}

fn render_access(scop: &Scop, s: &Statement, array: usize, map: &[Vec<i128>]) -> String {
    let mut out = scop.arrays[array].name.clone();
    for row in map {
        out.push('[');
        out.push_str(&render_affine_row(scop, s, row));
        out.push(']');
    }
    out
}

fn render_affine_row(scop: &Scop, s: &Statement, row: &[i128]) -> String {
    let mut terms = Vec::new();
    for (k, &c) in row[..s.depth].iter().enumerate() {
        push_term(&mut terms, c, &iter_name(k));
    }
    for (j, &c) in row[s.depth..s.depth + scop.n_params()].iter().enumerate() {
        push_term(&mut terms, c, &scop.params[j]);
    }
    let konst = row[s.depth + scop.n_params()];
    if konst != 0 || terms.is_empty() {
        terms.push(if terms.is_empty() || konst < 0 {
            format!("{konst}")
        } else {
            format!("+{konst}")
        });
    }
    terms.join("")
}

fn push_term(terms: &mut Vec<String>, c: i128, name: &str) {
    match c {
        0 => {}
        1 => terms.push(if terms.is_empty() {
            name.to_string()
        } else {
            format!("+{name}")
        }),
        -1 => terms.push(format!("-{name}")),
        c if c > 0 && !terms.is_empty() => terms.push(format!("+{c}*{name}")),
        c => terms.push(format!("{c}*{name}")),
    }
}

fn render_expr(scop: &Scop, s: &Statement, e: &Expr) -> String {
    match e {
        Expr::Load(k) => {
            let a = &s.reads[*k];
            render_access(scop, s, a.array, &a.map)
        }
        Expr::Const(c) => format!("{c}"),
        Expr::Iter(k) => iter_name(*k),
        Expr::Param(j) => scop.params[*j].clone(),
        Expr::Add(a, b) => format!(
            "({} + {})",
            render_expr(scop, s, a),
            render_expr(scop, s, b)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            render_expr(scop, s, a),
            render_expr(scop, s, b)
        ),
        Expr::Mul(a, b) => format!("{}*{}", render_expr(scop, s, a), render_expr(scop, s, b)),
        Expr::Div(a, b) => format!("{}/{}", render_expr(scop, s, a), render_expr(scop, s, b)),
        Expr::Neg(a) => format!("-{}", render_expr(scop, s, a)),
        Expr::Sqrt(a) => format!("sqrt({})", render_expr(scop, s, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aff, ScopBuilder};

    #[test]
    fn renders_two_nests() {
        let mut b = ScopBuilder::new("t", &["N"]);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0) + 1])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let s = b.build();
        let text = render_original(&s);
        assert!(text.contains("S0: A[i] = 1;"), "got:\n{text}");
        assert!(text.contains("S1: B[i+1] = A[i];"), "got:\n{text}");
        // Two separate loops -> two closing braces.
        assert_eq!(text.matches("for (i)").count(), 2);
    }

    #[test]
    fn renders_fused_statements_in_one_loop() {
        let mut b = ScopBuilder::new("t", &["N"]);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[0, 1])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .rhs(Expr::Const(2.0))
            .done();
        let s = b.build();
        let text = render_original(&s);
        assert_eq!(text.matches("for (i)").count(), 1, "got:\n{text}");
    }

    #[test]
    fn affine_row_rendering() {
        let mut b = ScopBuilder::new("t", &["N"]);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0) * 2 - 1, Aff::param(0) - Aff::iter(1)])
            .rhs(Expr::Const(0.0))
            .done();
        let s = b.build();
        let text = render_stmt(&s, &s.statements[0]);
        assert!(text.contains("A[2*i-1][-j+N]"), "got: {text}");
    }
}
