//! Affine expression builder.
//!
//! An [`Aff`] is an affine function of a statement's iterators and the SCoP
//! parameters: `Σ a_k·i_k + Σ b_j·p_j + c`. The builder overloads `+`, `-`
//! and integer scaling so kernels read naturally:
//!
//! ```
//! use wf_scop::Aff;
//! // i + j - N + 1   (for a statement with 2 iterators, 1 parameter)
//! let e = Aff::iter(0) + Aff::iter(1) - Aff::param(0) + Aff::konst(1);
//! assert_eq!(e.row(2, 1), vec![1, 1, -1, 1]);
//! ```

use std::collections::BTreeMap;
use std::ops::{Add, Mul, Neg, Sub};

/// A sparse affine expression over iterators and parameters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Aff {
    iters: BTreeMap<usize, i128>,
    params: BTreeMap<usize, i128>,
    konst: i128,
}

impl Aff {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> Aff {
        Aff::default()
    }

    /// The iterator variable `i_k` (0-based).
    #[must_use]
    pub fn iter(k: usize) -> Aff {
        let mut a = Aff::default();
        a.iters.insert(k, 1);
        a
    }

    /// The parameter `p_j` (0-based).
    #[must_use]
    pub fn param(j: usize) -> Aff {
        let mut a = Aff::default();
        a.params.insert(j, 1);
        a
    }

    /// The constant `c`.
    #[must_use]
    pub fn konst(c: i128) -> Aff {
        Aff {
            konst: c,
            ..Aff::default()
        }
    }

    /// Coefficient of iterator `k`.
    #[must_use]
    pub fn iter_coeff(&self, k: usize) -> i128 {
        self.iters.get(&k).copied().unwrap_or(0)
    }

    /// Coefficient of parameter `j`.
    #[must_use]
    pub fn param_coeff(&self, j: usize) -> i128 {
        self.params.get(&j).copied().unwrap_or(0)
    }

    /// The constant term.
    #[must_use]
    pub fn constant(&self) -> i128 {
        self.konst
    }

    /// Highest iterator index mentioned (for arity checks).
    #[must_use]
    pub fn max_iter(&self) -> Option<usize> {
        self.iters
            .iter()
            .rev()
            .find(|(_, &c)| c != 0)
            .map(|(&k, _)| k)
    }

    /// Highest parameter index mentioned.
    #[must_use]
    pub fn max_param(&self) -> Option<usize> {
        self.params
            .iter()
            .rev()
            .find(|(_, &c)| c != 0)
            .map(|(&k, _)| k)
    }

    /// Dense row `(iter coeffs…, param coeffs…, constant)` for a statement
    /// with `depth` iterators and `n_params` parameters.
    ///
    /// # Panics
    /// Panics if the expression mentions an out-of-range iterator/parameter.
    #[must_use]
    pub fn row(&self, depth: usize, n_params: usize) -> Vec<i128> {
        let mut row = vec![0i128; depth + n_params + 1];
        for (&k, &c) in &self.iters {
            assert!(
                k < depth,
                "Aff::row: iterator i{k} out of range (depth {depth})"
            );
            row[k] = c;
        }
        for (&j, &c) in &self.params {
            assert!(
                j < n_params,
                "Aff::row: parameter p{j} out of range ({n_params} params)"
            );
            row[depth + j] = c;
        }
        row[depth + n_params] = self.konst;
        row
    }

    /// Evaluate at concrete iterator and parameter values.
    #[must_use]
    pub fn eval(&self, iters: &[i128], params: &[i128]) -> i128 {
        let mut v = self.konst;
        for (&k, &c) in &self.iters {
            v += c * iters[k];
        }
        for (&j, &c) in &self.params {
            v += c * params[j];
        }
        v
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(mut self, rhs: Aff) -> Aff {
        for (k, c) in rhs.iters {
            *self.iters.entry(k).or_insert(0) += c;
        }
        for (j, c) in rhs.params {
            *self.params.entry(j).or_insert(0) += c;
        }
        self.konst += rhs.konst;
        self
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(mut self) -> Aff {
        for c in self.iters.values_mut() {
            *c = -*c;
        }
        for c in self.params.values_mut() {
            *c = -*c;
        }
        self.konst = -self.konst;
        self
    }
}

impl Mul<i128> for Aff {
    type Output = Aff;
    fn mul(mut self, s: i128) -> Aff {
        for c in self.iters.values_mut() {
            *c *= s;
        }
        for c in self.params.values_mut() {
            *c *= s;
        }
        self.konst *= s;
        self
    }
}

impl Add<i128> for Aff {
    type Output = Aff;
    fn add(self, c: i128) -> Aff {
        self + Aff::konst(c)
    }
}

impl Sub<i128> for Aff {
    type Output = Aff;
    fn sub(self, c: i128) -> Aff {
        self - Aff::konst(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_row() {
        let e = Aff::iter(0) * 2 - Aff::iter(1) + Aff::param(0) - 3;
        assert_eq!(e.row(2, 1), vec![2, -1, 1, -3]);
    }

    #[test]
    fn eval_matches_row_dot() {
        let e = Aff::iter(1) + Aff::param(0) * 4 + 7;
        assert_eq!(e.eval(&[10, 20], &[5]), 20 + 20 + 7);
    }

    #[test]
    fn algebra() {
        let a = Aff::iter(0) + 1;
        let b = Aff::iter(0) - 1;
        assert_eq!((a.clone() + b.clone()).row(1, 0), vec![2, 0]);
        assert_eq!((a - b).row(1, 0), vec![0, 2]);
        assert_eq!((-Aff::iter(0)).row(1, 0), vec![-1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_checks_arity() {
        let _ = Aff::iter(3).row(2, 0);
    }

    #[test]
    fn max_indices() {
        let e = Aff::iter(2) + Aff::param(1);
        assert_eq!(e.max_iter(), Some(2));
        assert_eq!(e.max_param(), Some(1));
        assert_eq!(Aff::konst(5).max_iter(), None);
        // Cancelled coefficients don't count.
        let z = Aff::iter(4) - Aff::iter(4);
        assert_eq!(z.max_iter(), None);
    }
}
