//! The kernel builder DSL.
//!
//! Benchmarks encode their loop nests with this builder rather than a C
//! parser. Example — a 1-D relaxation statement:
//!
//! ```
//! use wf_scop::{Aff, Expr, ScopBuilder};
//! let mut b = ScopBuilder::new("relax", &["N"]);
//! b.context_ge(Aff::param(0) - 4);                    // N >= 4
//! let a = b.array("A", &[Aff::param(0)]);
//! let out = b.array("B", &[Aff::param(0)]);
//! b.stmt("S0", 1, &[0, 0])
//!     .bounds(0, Aff::konst(1), Aff::param(0) - 2)    // 1 <= i <= N-2
//!     .write(out, &[Aff::iter(0)])
//!     .read(a, &[Aff::iter(0) - 1])
//!     .read(a, &[Aff::iter(0) + 1])
//!     .rhs(Expr::mul(Expr::Const(0.5),
//!          Expr::add(Expr::Load(0), Expr::Load(1))))
//!     .done();
//! let scop = b.build();
//! assert_eq!(scop.n_statements(), 1);
//! ```

use crate::aff::Aff;
use crate::expr::Expr;
use crate::scop::{Access, ArrayDecl, Scop, Statement};
use wf_polyhedra::ConstraintSystem;

/// Incrementally builds a [`Scop`].
pub struct ScopBuilder {
    name: String,
    params: Vec<String>,
    context: ConstraintSystem,
    arrays: Vec<ArrayDecl>,
    statements: Vec<Statement>,
}

impl ScopBuilder {
    /// Start a SCoP with the given parameter names.
    #[must_use]
    pub fn new(name: &str, params: &[&str]) -> ScopBuilder {
        ScopBuilder {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            context: ConstraintSystem::new(params.len()),
            arrays: Vec::new(),
            statements: Vec::new(),
        }
    }

    /// Add a parameter-context constraint `aff >= 0` (aff over params only).
    pub fn context_ge(&mut self, aff: Aff) -> &mut Self {
        assert!(
            aff.max_iter().is_none(),
            "context constraints cannot use iterators"
        );
        self.context.add_ge0(aff.row(0, self.params.len()));
        self
    }

    /// Declare an array with the given per-dimension extents (affine in the
    /// parameters). Returns its index for use in accesses.
    pub fn array(&mut self, name: &str, dims: &[Aff]) -> usize {
        assert!(
            self.arrays.iter().all(|a| a.name != name),
            "duplicate array {name}"
        );
        let np = self.params.len();
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims: dims.iter().map(|a| a.row(0, np)).collect(),
        });
        self.arrays.len() - 1
    }

    /// Declare a scalar (0-dimensional array).
    pub fn scalar(&mut self, name: &str) -> usize {
        self.array(name, &[])
    }

    /// Begin a statement with `depth` enclosing loops at syntactic position
    /// `beta` (length `depth + 1`).
    pub fn stmt(&mut self, name: &str, depth: usize, beta: &[usize]) -> StmtBuilder<'_> {
        assert_eq!(beta.len(), depth + 1, "beta must have depth+1 entries");
        let np = self.params.len();
        StmtBuilder {
            parent: self,
            stmt: Statement {
                name: name.to_string(),
                depth,
                domain: ConstraintSystem::new(depth + np),
                beta: beta.to_vec(),
                write: Access {
                    array: usize::MAX,
                    map: Vec::new(),
                },
                reads: Vec::new(),
                rhs: Expr::Const(0.0),
            },
        }
    }

    /// Finish, validate and return the SCoP.
    ///
    /// # Panics
    /// Panics with a diagnostic list if validation fails — kernels are
    /// compiled-in test fixtures, so failing loudly is right.
    #[must_use]
    pub fn build(self) -> Scop {
        let scop = Scop {
            name: self.name,
            params: self.params,
            context: self.context,
            arrays: self.arrays,
            statements: self.statements,
        };
        let errs = scop.validate();
        assert!(errs.is_empty(), "invalid SCoP {}: {:#?}", scop.name, errs);
        scop
    }
}

/// Builds one [`Statement`]; created by [`ScopBuilder::stmt`].
pub struct StmtBuilder<'a> {
    parent: &'a mut ScopBuilder,
    stmt: Statement,
}

impl StmtBuilder<'_> {
    /// Constrain iterator `k` to `lo <= i_k <= hi`.
    #[must_use]
    pub fn bounds(mut self, k: usize, lo: Aff, hi: Aff) -> Self {
        let np = self.parent.params.len();
        let d = self.stmt.depth;
        self.stmt.domain.add_ge0((Aff::iter(k) - lo).row(d, np));
        self.stmt.domain.add_ge0((hi - Aff::iter(k)).row(d, np));
        self
    }

    /// Add an arbitrary domain constraint `aff >= 0`.
    #[must_use]
    pub fn domain_ge(mut self, aff: Aff) -> Self {
        let np = self.parent.params.len();
        self.stmt.domain.add_ge0(aff.row(self.stmt.depth, np));
        self
    }

    /// Set the write access (exactly one per statement).
    #[must_use]
    pub fn write(mut self, array: usize, subs: &[Aff]) -> Self {
        assert_eq!(self.stmt.write.array, usize::MAX, "write set twice");
        self.stmt.write = self.access(array, subs);
        self
    }

    /// Append a read access; the `k`-th call corresponds to `Expr::Load(k)`.
    #[must_use]
    pub fn read(mut self, array: usize, subs: &[Aff]) -> Self {
        let acc = self.access(array, subs);
        self.stmt.reads.push(acc);
        self
    }

    /// Set the right-hand-side expression.
    #[must_use]
    pub fn rhs(mut self, e: Expr) -> Self {
        self.stmt.rhs = e;
        self
    }

    /// Finish the statement and hand control back to the SCoP builder.
    pub fn done(self) {
        assert_ne!(
            self.stmt.write.array,
            usize::MAX,
            "{}: no write access",
            self.stmt.name
        );
        self.parent.statements.push(self.stmt);
    }

    fn access(&self, array: usize, subs: &[Aff]) -> Access {
        let np = self.parent.params.len();
        Access {
            array,
            map: subs.iter().map(|a| a.row(self.stmt.depth, np)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_scop() {
        let mut b = ScopBuilder::new("k", &["N", "M"]);
        b.context_ge(Aff::param(0) - 2);
        b.context_ge(Aff::param(1) - 2);
        let a = b.array("A", &[Aff::param(0), Aff::param(1)]);
        let c = b.array("C", &[Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(1) - 1)
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0), Aff::zero()])
            .rhs(Expr::Load(0))
            .done();
        let s = b.build();
        assert_eq!(s.n_statements(), 2);
        assert_eq!(s.statements[0].depth, 2);
        assert_eq!(s.arrays.len(), 2);
        assert_eq!(s.common_loops(0, 1), 0);
    }

    #[test]
    fn domain_membership_matches_bounds() {
        let mut b = ScopBuilder::new("k", &["N"]);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::konst(2), Aff::param(0) - 3)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(0.0))
            .done();
        let s = b.build();
        let d = &s.statements[0].domain;
        // (i, N)
        assert!(d.contains(&[2, 10]));
        assert!(d.contains(&[7, 10]));
        assert!(!d.contains(&[1, 10]));
        assert!(!d.contains(&[8, 10]));
    }

    #[test]
    #[should_panic(expected = "no write access")]
    fn missing_write_panics() {
        let mut b = ScopBuilder::new("k", &[]);
        b.stmt("S0", 0, &[0]).rhs(Expr::Const(0.0)).done();
    }

    #[test]
    #[should_panic(expected = "duplicate array")]
    fn duplicate_array_panics() {
        let mut b = ScopBuilder::new("k", &[]);
        let _ = b.array("A", &[]);
        let _ = b.array("A", &[]);
    }

    #[test]
    fn scalar_declaration() {
        let mut b = ScopBuilder::new("k", &[]);
        let s = b.scalar("t");
        b.stmt("S0", 0, &[0])
            .write(s, &[])
            .rhs(Expr::Const(3.0))
            .done();
        let scop = b.build();
        assert!(scop.arrays[0].dims.is_empty());
    }
}
