//! The statement-centric SCoP representation.

use crate::expr::Expr;
use wf_polyhedra::ConstraintSystem;

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessKind {
    /// The access reads memory.
    Read,
    /// The access writes memory.
    Write,
}

/// An affine array access `A[f_1(i,p), …, f_r(i,p)]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Access {
    /// Index into [`Scop::arrays`].
    pub array: usize,
    /// One row per array dimension; each row is a dense affine function over
    /// `(iters…, params…, 1)` like [`crate::Aff::row`] produces.
    pub map: Vec<Vec<i128>>,
}

impl Access {
    /// Evaluate the subscript functions at concrete iterators/parameters.
    #[must_use]
    pub fn eval(&self, iters: &[i128], params: &[i128]) -> Vec<i128> {
        self.map
            .iter()
            .map(|row| {
                let mut v = *row.last().unwrap();
                let (icoefs, rest) = row.split_at(iters.len());
                for (c, x) in icoefs.iter().zip(iters) {
                    v += c * x;
                }
                for (c, x) in rest[..params.len()].iter().zip(params) {
                    v += c * x;
                }
                v
            })
            .collect()
    }
}

/// An array (or scalar, with zero dimensions) declared by the SCoP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    /// Array name (unique within the SCoP).
    pub name: String,
    /// Extent per dimension as an affine function of the parameters
    /// (`n_params + 1` coefficients each). A scalar has no dimensions.
    pub dims: Vec<Vec<i128>>,
}

impl ArrayDecl {
    /// Concrete extents for given parameter values.
    #[must_use]
    pub fn extents(&self, params: &[i128]) -> Vec<usize> {
        self.dims
            .iter()
            .map(|row| {
                let mut v = *row.last().unwrap();
                for (c, p) in row[..params.len()].iter().zip(params) {
                    v += c * p;
                }
                usize::try_from(v).expect("negative array extent")
            })
            .collect()
    }
}

/// One program statement.
#[derive(Clone, PartialEq, Debug)]
pub struct Statement {
    /// Display name, e.g. `"S1"`.
    pub name: String,
    /// Number of enclosing loops (the statement's *dimensionality* in the
    /// paper's terminology).
    pub depth: usize,
    /// Iteration domain over `(iters…, params…)`.
    pub domain: ConstraintSystem,
    /// Syntactic position vector of length `depth + 1` (2d+1 encoding);
    /// `beta[k]` is the statement's position among siblings at loop level
    /// `k`. Betas define the original program order.
    pub beta: Vec<usize>,
    /// The single write access (left-hand side).
    pub write: Access,
    /// Read accesses; `Expr::Load(k)` refers to `reads[k]`.
    pub reads: Vec<Access>,
    /// Right-hand-side expression.
    pub rhs: Expr,
}

impl Statement {
    /// All accesses: the write first, then the reads.
    pub fn accesses(&self) -> impl Iterator<Item = (AccessKind, &Access)> {
        std::iter::once((AccessKind::Write, &self.write))
            .chain(self.reads.iter().map(|a| (AccessKind::Read, a)))
    }
}

/// A Static Control Part: the unit on which the polyhedral framework works.
#[derive(Clone, PartialEq, Debug)]
pub struct Scop {
    /// Program name (used in reports).
    pub name: String,
    /// Parameter names, e.g. `["N"]`.
    pub params: Vec<String>,
    /// Constraints over the parameters alone (e.g. `N >= 4`), with columns
    /// `(params…, 1)`.
    pub context: ConstraintSystem,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// The statements in original program order.
    pub statements: Vec<Statement>,
}

impl Scop {
    /// Number of parameters.
    #[must_use]
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Number of statements.
    #[must_use]
    pub fn n_statements(&self) -> usize {
        self.statements.len()
    }

    /// Number of loops shared by statements `a` and `b` in the original
    /// program: the length of the common beta prefix (capped at both
    /// depths).
    #[must_use]
    pub fn common_loops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return self.statements[a].depth;
        }
        let (sa, sb) = (&self.statements[a], &self.statements[b]);
        let max = sa.depth.min(sb.depth);
        for k in 0..=max {
            if sa.beta.get(k) != sb.beta.get(k) {
                return k;
            }
        }
        max
    }

    /// Does statement `a` lexically precede statement `b` at nesting level
    /// `level` (i.e. when the first `level` shared iterators are equal)?
    /// Assumes `level <= common_loops(a, b)`.
    #[must_use]
    pub fn precedes_at(&self, a: usize, b: usize, level: usize) -> bool {
        let (sa, sb) = (&self.statements[a], &self.statements[b]);
        sa.beta[level] < sb.beta[level]
            || (sa.beta[level] == sb.beta[level] && {
                // Identical betas up to min depth: deeper comparison or tie
                // broken by statement order (should not happen for distinct
                // statements with valid betas).
                a < b
            })
    }

    /// Exhaustively validate internal consistency; returns a list of
    /// human-readable problems (empty when valid).
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let np = self.n_params();
        if self.context.n_vars != np {
            errs.push(format!(
                "context ranges over {} vars, expected {np}",
                self.context.n_vars
            ));
        }
        let mut beta_seen = std::collections::HashSet::new();
        let mut prev_beta: Option<Vec<usize>> = None;
        for (idx, s) in self.statements.iter().enumerate() {
            let want = s.depth + np;
            if s.domain.n_vars != want {
                errs.push(format!(
                    "{}: domain over {} vars, expected {want}",
                    s.name, s.domain.n_vars
                ));
            }
            if s.beta.len() != s.depth + 1 {
                errs.push(format!(
                    "{}: beta length {} != depth+1 {}",
                    s.name,
                    s.beta.len(),
                    s.depth + 1
                ));
            }
            if !beta_seen.insert(s.beta.clone()) {
                errs.push(format!("{}: duplicate beta {:?}", s.name, s.beta));
            }
            if let Some(p) = &prev_beta {
                // Program order must be beta-lexicographic.
                if p.as_slice() >= s.beta.as_slice()
                    && !is_prefix(p, &s.beta)
                    && !is_prefix(&s.beta, p)
                {
                    errs.push(format!(
                        "{}: beta {:?} not increasing after {:?}",
                        s.name, s.beta, p
                    ));
                }
            }
            prev_beta = Some(s.beta.clone());
            for (kind, acc) in s.accesses() {
                let Some(arr) = self.arrays.get(acc.array) else {
                    errs.push(format!(
                        "{}: access to undeclared array #{}",
                        s.name, acc.array
                    ));
                    continue;
                };
                if acc.map.len() != arr.dims.len() {
                    errs.push(format!(
                        "{}: {:?} access to {} has {} subscripts, array has {} dims",
                        s.name,
                        kind,
                        arr.name,
                        acc.map.len(),
                        arr.dims.len()
                    ));
                }
                for row in &acc.map {
                    if row.len() != want + 1 {
                        errs.push(format!(
                            "{}: access row arity {} != {}",
                            s.name,
                            row.len(),
                            want + 1
                        ));
                    }
                }
            }
            if let Some(ml) = s.rhs.max_load() {
                if ml >= s.reads.len() {
                    errs.push(format!(
                        "{}: rhs loads read #{ml} but only {} reads declared",
                        s.name,
                        s.reads.len()
                    ));
                }
            }
            let _ = idx;
        }
        errs
    }

    /// Look up an array index by name.
    #[must_use]
    pub fn array_index(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.name == name)
    }
}

fn is_prefix(a: &[usize], b: &[usize]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScopBuilder;
    use crate::Aff;

    fn two_nests() -> Scop {
        // for i: A[i] = i        (S0, beta [0,0])
        // for i: B[i] = A[i]     (S1, beta [1,0])
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 4); // N >= 4
        let a = b.array("A", &[Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(bb, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    #[test]
    fn common_loops_distinct_nests() {
        let s = two_nests();
        assert_eq!(s.common_loops(0, 1), 0);
        assert_eq!(s.common_loops(0, 0), 1);
    }

    #[test]
    fn precedence() {
        let s = two_nests();
        assert!(s.precedes_at(0, 1, 0));
        assert!(!s.precedes_at(1, 0, 0));
    }

    #[test]
    fn validate_clean() {
        let s = two_nests();
        assert_eq!(s.validate(), Vec::<String>::new());
    }

    #[test]
    fn access_eval() {
        let acc = Access {
            array: 0,
            map: vec![vec![1, 0, -1], vec![0, 2, 3]],
        };
        // iters = [i], params = [N]; subscripts (i - 1, 2N + 3)
        assert_eq!(acc.eval(&[10], &[5]), vec![9, 13]);
    }

    #[test]
    fn array_extents() {
        let a = ArrayDecl {
            name: "A".into(),
            dims: vec![vec![1, 2], vec![0, 7]],
        };
        assert_eq!(a.extents(&[10]), vec![12, 7]);
    }

    #[test]
    fn validate_catches_bad_beta() {
        let mut s = two_nests();
        s.statements[1].beta = vec![0, 0]; // duplicate of S0's
        assert!(!s.validate().is_empty());
    }

    #[test]
    fn validate_catches_bad_load() {
        let mut s = two_nests();
        s.statements[0].rhs = Expr::Load(3);
        assert!(s.validate().iter().any(|e| e.contains("loads read")));
    }
}
