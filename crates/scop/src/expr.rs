//! Statement right-hand-side expression trees.
//!
//! Bodies are kept deliberately small: enough arithmetic to express the
//! paper's kernels (stencils, BLAS-like updates, boundary copies) while
//! staying trivially interpretable by the runtime.

/// A scalar expression evaluated by the executor for each statement instance.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Value of the statement's `k`-th **read** access.
    Load(usize),
    /// A floating-point literal.
    Const(f64),
    /// Current value of iterator `k` (as f64) — used by init statements.
    Iter(usize),
    /// Value of parameter `j` (as f64).
    Param(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Square root (used by a few scientific kernels).
    Sqrt(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // constructors, not operator impls
impl Expr {
    /// `a + b`
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`
    #[must_use]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`
    #[must_use]
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `-a`
    #[must_use]
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// Sum of several terms (empty sum is 0.0).
    #[must_use]
    pub fn sum(terms: Vec<Expr>) -> Expr {
        terms
            .into_iter()
            .reduce(Expr::add)
            .unwrap_or(Expr::Const(0.0))
    }

    /// Largest `Load` index mentioned, for validation against the statement's
    /// read-access list.
    #[must_use]
    pub fn max_load(&self) -> Option<usize> {
        match self {
            Expr::Load(k) => Some(*k),
            Expr::Const(_) | Expr::Iter(_) | Expr::Param(_) => None,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                match (a.max_load(), b.max_load()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Expr::Neg(a) | Expr::Sqrt(a) => a.max_load(),
        }
    }

    /// Evaluate given the loaded read values, iterator values and parameters.
    #[must_use]
    pub fn eval(&self, loads: &[f64], iters: &[i128], params: &[i128]) -> f64 {
        match self {
            Expr::Load(k) => loads[*k],
            Expr::Const(c) => *c,
            Expr::Iter(k) => iters[*k] as f64,
            Expr::Param(j) => params[*j] as f64,
            Expr::Add(a, b) => a.eval(loads, iters, params) + b.eval(loads, iters, params),
            Expr::Sub(a, b) => a.eval(loads, iters, params) - b.eval(loads, iters, params),
            Expr::Mul(a, b) => a.eval(loads, iters, params) * b.eval(loads, iters, params),
            Expr::Div(a, b) => a.eval(loads, iters, params) / b.eval(loads, iters, params),
            Expr::Neg(a) => -a.eval(loads, iters, params),
            Expr::Sqrt(a) => a.eval(loads, iters, params).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        // (l0 + 2) * l1 - i0
        let e = Expr::sub(
            Expr::mul(Expr::add(Expr::Load(0), Expr::Const(2.0)), Expr::Load(1)),
            Expr::Iter(0),
        );
        assert_eq!(e.eval(&[3.0, 4.0], &[5], &[]), 15.0);
    }

    #[test]
    fn eval_params_and_funcs() {
        let e = Expr::Sqrt(Box::new(Expr::Param(0)));
        assert_eq!(e.eval(&[], &[], &[16]), 4.0);
        let d = Expr::div(Expr::Const(1.0), Expr::Const(4.0));
        assert_eq!(d.eval(&[], &[], &[]), 0.25);
        let n = Expr::neg(Expr::Const(2.0));
        assert_eq!(n.eval(&[], &[], &[]), -2.0);
    }

    #[test]
    fn sum_helper() {
        let e = Expr::sum(vec![Expr::Const(1.0), Expr::Const(2.0), Expr::Const(3.0)]);
        assert_eq!(e.eval(&[], &[], &[]), 6.0);
        assert_eq!(Expr::sum(vec![]).eval(&[], &[], &[]), 0.0);
    }

    #[test]
    fn max_load_scan() {
        let e = Expr::mul(Expr::Load(2), Expr::add(Expr::Load(0), Expr::Const(1.0)));
        assert_eq!(e.max_load(), Some(2));
        assert_eq!(Expr::Const(0.0).max_load(), None);
    }
}
