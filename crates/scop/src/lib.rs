//! Static Control Part (SCoP) intermediate representation.
//!
//! The polyhedral framework operates on SCoPs: maximal program regions whose
//! loop bounds, conditionals and array subscripts are affine functions of the
//! surrounding loop iterators and runtime parameters. This crate provides
//!
//! * [`Aff`] — a small algebra for building affine expressions over a
//!   statement's iterators, the SCoP parameters and a constant,
//! * [`Expr`] — statement right-hand-side expression trees (what the
//!   interpreting executor evaluates),
//! * [`Statement`], [`Access`], [`Scop`] — the statement-centric program
//!   representation with exact iteration domains and affine access functions,
//! * [`builder::ScopBuilder`] — the DSL with which the benchmark suite
//!   encodes its kernels (we deliberately do not parse C/Fortran: the paper's
//!   frontend, ROSE/PolyOpt, is orthogonal to the fusion contribution).
//!
//! ## Variable-space convention
//!
//! Every per-statement [`wf_polyhedra::ConstraintSystem`] (domain) ranges
//! over `depth` iterator variables followed by `n_params` parameter
//! variables, i.e. columns are `(i_1 … i_d, p_1 … p_m, 1)`.
//!
//! ## Original schedule
//!
//! Each statement carries a *beta* vector of `depth + 1` syntactic positions
//! (the classic 2d+1 representation): `beta[k]` is the statement's position
//! among its siblings under loop level `k`. Two statements share their
//! outermost `c` loops exactly when their betas agree on the first `c`
//! entries.

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod aff;
pub mod builder;
pub mod expr;
pub mod pretty;
pub mod scop;
pub mod text;

pub use aff::Aff;
pub use builder::{ScopBuilder, StmtBuilder};
pub use expr::Expr;
pub use scop::{Access, AccessKind, ArrayDecl, Scop, Statement};
