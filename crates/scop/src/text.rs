//! A textual SCoP format (`.wfs`), in the spirit of OpenScop: author
//! kernels as text instead of Rust builder calls. The grammar is small and
//! line-oriented:
//!
//! ```text
//! scop gemver_core
//! params N
//! context N - 4 >= 0
//! array A[N][N]
//! array x[N]
//! array y[N]
//!
//! stmt S1 beta [0,0,0] {
//!   domain 0 <= i <= N - 1
//!   domain 0 <= j <= N - 1
//!   write A[i][j]
//!   read r0 = A[i][j]
//!   body r0 + 1.5
//! }
//!
//! stmt S2 beta [1,0,0] {
//!   domain 0 <= i <= N - 1
//!   domain 0 <= j <= N - 1
//!   write x[i]
//!   read r0 = x[i]
//!   read r1 = A[j][i]
//!   read r2 = y[j]
//!   body r0 + r1 * r2
//! }
//! ```
//!
//! * iterators are named `i, j, k, l, m, n` (by nesting level; depth =
//!   `beta` length − 1);
//! * affine expressions admit `+ - *` with integer literals, iterators and
//!   parameters; `domain` lines accept chains `a <= expr <= b` and the
//!   relations `<=`, `>=`, `<`, `>`, `==`;
//! * `body` is a float expression over the named reads, float literals,
//!   iterators (as values), `+ - * /`, unary `-` and `sqrt(...)`;
//! * `#` starts a comment.
//!
//! [`parse`] and [`to_text`] round-trip ([`to_text`] regenerates any SCoP,
//! including the built-in benchmark catalog, so `wfc export` works).

use crate::aff::Aff;
use crate::builder::ScopBuilder;
use crate::expr::Expr;
use crate::scop::Scop;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the failure was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for wf_harness::WfError {
    fn from(e: ParseError) -> wf_harness::WfError {
        wf_harness::WfError::Parse {
            line: e.line,
            message: e.message,
        }
    }
}

const ITER_NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];

fn iter_index(name: &str) -> Option<usize> {
    ITER_NAMES.iter().position(|&x| x == name)
}

/// Parse a `.wfs` document into a validated [`Scop`].
pub fn parse(input: &str) -> Result<Scop, ParseError> {
    let _span = wf_harness::span!("scop.parse");
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(k, l)| (k + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty())
        .peekable();

    let err = |line: usize, msg: &str| ParseError {
        line,
        message: msg.to_string(),
    };

    // Header: scop <name>
    let (ln, first) = lines.next().ok_or_else(|| err(0, "empty document"))?;
    let name = first
        .strip_prefix("scop ")
        .ok_or_else(|| err(ln, "expected `scop <name>`"))?
        .trim()
        .to_string();

    // params line (optional).
    let mut params: Vec<String> = Vec::new();
    if let Some((_, l)) = lines.peek() {
        if let Some(rest) = l.strip_prefix("params") {
            params = rest.split_whitespace().map(str::to_string).collect();
            lines.next();
        }
    }
    let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
    let mut b = ScopBuilder::new(&name, &param_refs);
    let pidx = |nm: &str| params.iter().position(|p| p == nm);

    let mut arrays: Vec<(String, usize)> = Vec::new(); // name -> id

    while let Some((ln, line)) = lines.next() {
        if let Some(rest) = line.strip_prefix("context ") {
            let (aff, _) = parse_relation_ge(rest, 0, &pidx).map_err(|m| err(ln, &m))?;
            b.context_ge(aff);
        } else if let Some(rest) = line.strip_prefix("array ") {
            let (arr_name, dims) = parse_array_decl(rest, &pidx).map_err(|m| err(ln, &m))?;
            let id = b.array(&arr_name, &dims);
            arrays.push((arr_name, id));
        } else if let Some(rest) = line.strip_prefix("stmt ") {
            let (sname, beta) = parse_stmt_header(rest).map_err(|m| err(ln, &m))?;
            let depth = beta.len() - 1;
            let mut sb = b.stmt(&sname, depth, &beta);
            let mut read_names: Vec<String> = Vec::new();
            let mut body: Option<Expr> = None;
            loop {
                let (ln2, l2) = lines
                    .next()
                    .ok_or_else(|| err(ln, "unterminated stmt block"))?;
                if l2 == "}" {
                    break;
                }
                if let Some(rest) = l2.strip_prefix("domain ") {
                    for aff in parse_domain_line(rest, depth, &pidx).map_err(|m| err(ln2, &m))? {
                        sb = sb.domain_ge(aff);
                    }
                } else if let Some(rest) = l2.strip_prefix("write ") {
                    let (arr, subs) =
                        parse_access(rest, depth, &pidx, &arrays).map_err(|m| err(ln2, &m))?;
                    sb = sb.write(arr, &subs);
                } else if let Some(rest) = l2.strip_prefix("read ") {
                    let (nm, tail) = rest
                        .split_once('=')
                        .ok_or_else(|| err(ln2, "expected `read <name> = A[...]`"))?;
                    let (arr, subs) = parse_access(tail.trim(), depth, &pidx, &arrays)
                        .map_err(|m| err(ln2, &m))?;
                    read_names.push(nm.trim().to_string());
                    sb = sb.read(arr, &subs);
                } else if let Some(rest) = l2.strip_prefix("body ") {
                    let mut p = BodyParser {
                        toks: tokenize(rest),
                        pos: 0,
                        reads: &read_names,
                    };
                    let e = p.expr().map_err(|m| err(ln2, &m))?;
                    if p.pos != p.toks.len() {
                        return Err(err(ln2, "trailing tokens after body expression"));
                    }
                    body = Some(e);
                } else {
                    return Err(err(ln2, &format!("unexpected line in stmt block: `{l2}`")));
                }
            }
            let body = body.ok_or_else(|| err(ln, "stmt block missing `body`"))?;
            sb.rhs(body).done();
        } else {
            return Err(err(ln, &format!("unexpected line: `{line}`")));
        }
    }
    Ok(b.build())
}

fn parse_stmt_header(rest: &str) -> Result<(String, Vec<usize>), String> {
    // `<name> beta [a,b,c] {`
    let rest = rest.trim();
    let (name, tail) = rest
        .split_once(' ')
        .ok_or("expected `stmt <name> beta [..] {`")?;
    let tail = tail.trim();
    let tail = tail
        .strip_prefix("beta")
        .ok_or("expected `beta [..]`")?
        .trim();
    let tail = tail
        .strip_suffix('{')
        .ok_or("stmt header must end with `{`")?
        .trim();
    let inner = tail
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or("beta must be `[a,b,...]`")?;
    let beta: Vec<usize> = inner
        .split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| format!("bad beta entry `{x}`"))
        })
        .collect::<Result<_, _>>()?;
    if beta.is_empty() {
        return Err("beta must be non-empty".into());
    }
    Ok((name.to_string(), beta))
}

fn parse_array_decl(
    rest: &str,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<(String, Vec<Aff>), String> {
    let rest = rest.trim();
    let Some(bracket) = rest.find('[') else {
        // Scalar.
        return Ok((rest.to_string(), Vec::new()));
    };
    let name = rest[..bracket].trim().to_string();
    let mut dims = Vec::new();
    let mut s = &rest[bracket..];
    while let Some(t) = s.strip_prefix('[') {
        let close = t.find(']').ok_or("unclosed `[` in array declaration")?;
        dims.push(parse_affine(&t[..close], usize::MAX, pidx)?);
        s = &t[close + 1..];
    }
    if !s.trim().is_empty() {
        return Err(format!(
            "trailing characters after array declaration: `{s}`"
        ));
    }
    Ok((name, dims))
}

fn parse_access(
    rest: &str,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
    arrays: &[(String, usize)],
) -> Result<(usize, Vec<Aff>), String> {
    let rest = rest.trim();
    let bracket = rest.find('[').unwrap_or(rest.len());
    let name = rest[..bracket].trim();
    let arr = arrays
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, id)| *id)
        .ok_or_else(|| format!("unknown array `{name}`"))?;
    let mut subs = Vec::new();
    let mut s = &rest[bracket..];
    while let Some(t) = s.strip_prefix('[') {
        let close = t.find(']').ok_or("unclosed `[` in access")?;
        subs.push(parse_affine(&t[..close], depth, pidx)?);
        s = &t[close + 1..];
    }
    if !s.trim().is_empty() {
        return Err(format!("trailing characters after access: `{s}`"));
    }
    Ok((arr, subs))
}

/// Parse a `domain` line: a chain `e0 REL e1 [REL e2]` producing one or two
/// `>= 0` affine constraints.
fn parse_domain_line(
    rest: &str,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<Vec<Aff>, String> {
    // Split on relations, keeping them.
    let mut parts: Vec<(String, String)> = Vec::new(); // (expr, following rel)
    let mut cur = String::new();
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '<' | '>' | '=' => {
                let mut rel = c.to_string();
                if chars.peek() == Some(&'=') {
                    rel.push('=');
                    chars.next();
                }
                parts.push((cur.trim().to_string(), rel));
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim().to_string();
    if parts.is_empty() {
        return Err("domain line needs a relation".into());
    }
    let mut exprs: Vec<Aff> = Vec::new();
    let mut rels: Vec<String> = Vec::new();
    for (e, r) in &parts {
        exprs.push(parse_affine(e, depth, pidx)?);
        rels.push(r.clone());
    }
    exprs.push(parse_affine(&last, depth, pidx)?);
    let mut out = Vec::new();
    for (k, rel) in rels.iter().enumerate() {
        let (a, bb) = (exprs[k].clone(), exprs[k + 1].clone());
        match rel.as_str() {
            "<=" => out.push(bb - a),
            ">=" => out.push(a - bb),
            "<" => out.push(bb - a - 1),
            ">" => out.push(a - bb - 1),
            "==" => {
                out.push(bb.clone() - a.clone());
                out.push(a - bb);
            }
            other => return Err(format!("unknown relation `{other}`")),
        }
    }
    Ok(out)
}

/// `expr >= 0` for context lines (single relation against an expression).
fn parse_relation_ge(
    rest: &str,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<(Aff, ()), String> {
    let affs = parse_domain_line(rest, depth, pidx)?;
    let mut it = affs.into_iter();
    let first = it.next().ok_or("empty context constraint")?;
    // Additional conjuncts (from == or chains) are rare in contexts; fold
    // them by returning only the first and requiring single relations.
    if it.next().is_some() {
        return Err("context lines take a single `>=`/`<=` relation".into());
    }
    Ok((first, ()))
}

/// Parse an affine expression of iterators, params and integers.
fn parse_affine(
    text: &str,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<Aff, String> {
    let toks = tokenize(text);
    let mut pos = 0usize;
    let out = affine_sum(&toks, &mut pos, depth, pidx)?;
    if pos != toks.len() {
        return Err(format!("trailing tokens in affine expression `{text}`"));
    }
    Ok(out)
}

fn affine_sum(
    toks: &[Tok],
    pos: &mut usize,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<Aff, String> {
    let mut acc = affine_term(toks, pos, depth, pidx)?;
    while let Some(t) = toks.get(*pos) {
        match t {
            Tok::Plus => {
                *pos += 1;
                acc = acc + affine_term(toks, pos, depth, pidx)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc = acc - affine_term(toks, pos, depth, pidx)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn affine_term(
    toks: &[Tok],
    pos: &mut usize,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<Aff, String> {
    // [int *] atom  |  int  |  - term
    match toks.get(*pos) {
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-affine_term(toks, pos, depth, pidx)?)
        }
        Some(Tok::Int(v)) => {
            let v = *v;
            *pos += 1;
            if toks.get(*pos) == Some(&Tok::Star) {
                *pos += 1;
                Ok(affine_atom(toks, pos, depth, pidx)? * v)
            } else {
                Ok(Aff::konst(v))
            }
        }
        _ => affine_atom(toks, pos, depth, pidx),
    }
}

fn affine_atom(
    toks: &[Tok],
    pos: &mut usize,
    depth: usize,
    pidx: &dyn Fn(&str) -> Option<usize>,
) -> Result<Aff, String> {
    match toks.get(*pos) {
        Some(Tok::Ident(nm)) => {
            *pos += 1;
            if let Some(k) = iter_index(nm) {
                if k >= depth {
                    return Err(format!("iterator `{nm}` out of range for depth {depth}"));
                }
                Ok(Aff::iter(k))
            } else if let Some(j) = pidx(nm) {
                Ok(Aff::param(j))
            } else {
                Err(format!("unknown identifier `{nm}` in affine expression"))
            }
        }
        Some(Tok::Int(v)) => {
            let v = *v;
            *pos += 1;
            Ok(Aff::konst(v))
        }
        other => Err(format!("unexpected token {other:?} in affine expression")),
    }
}

/// Body-expression tokens (shared with affine parsing).
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i128),
    Float(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(text: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '+' => {
                out.push(Tok::Plus);
                chars.next();
            }
            '-' => {
                out.push(Tok::Minus);
                chars.next();
            }
            '*' => {
                out.push(Tok::Star);
                chars.next();
            }
            '/' => {
                out.push(Tok::Slash);
                chars.next();
            }
            '(' => {
                out.push(Tok::LParen);
                chars.next();
            }
            ')' => {
                out.push(Tok::RParen);
                chars.next();
            }
            '0'..='9' | '.' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.contains('.') {
                    out.push(Tok::Float(s.parse().unwrap_or(f64::NAN)));
                } else {
                    out.push(Tok::Int(s.parse().unwrap_or(0)));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            _ => {
                chars.next(); // skip unknown characters; parsers will complain
            }
        }
    }
    out
}

struct BodyParser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    reads: &'a [String],
}

impl BodyParser<'_> {
    fn expr(&mut self) -> Result<Expr, String> {
        let mut acc = self.term()?;
        while let Some(t) = self.toks.get(self.pos) {
            match t {
                Tok::Plus => {
                    self.pos += 1;
                    acc = Expr::add(acc, self.term()?);
                }
                Tok::Minus => {
                    self.pos += 1;
                    acc = Expr::sub(acc, self.term()?);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut acc = self.factor()?;
        while let Some(t) = self.toks.get(self.pos) {
            match t {
                Tok::Star => {
                    self.pos += 1;
                    acc = Expr::mul(acc, self.factor()?);
                }
                Tok::Slash => {
                    self.pos += 1;
                    acc = Expr::div(acc, self.factor()?);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Expr, String> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::neg(self.factor()?))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                if self.toks.get(self.pos) != Some(&Tok::RParen) {
                    return Err("missing `)`".into());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Const(v))
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Const(v as f64))
            }
            Some(Tok::Ident(nm)) => {
                self.pos += 1;
                if nm == "sqrt" {
                    if self.toks.get(self.pos) != Some(&Tok::LParen) {
                        return Err("sqrt needs `(`".into());
                    }
                    self.pos += 1;
                    let e = self.expr()?;
                    if self.toks.get(self.pos) != Some(&Tok::RParen) {
                        return Err("missing `)` after sqrt".into());
                    }
                    self.pos += 1;
                    return Ok(Expr::Sqrt(Box::new(e)));
                }
                if let Some(k) = self.reads.iter().position(|r| r == &nm) {
                    return Ok(Expr::Load(k));
                }
                if let Some(k) = iter_index(&nm) {
                    return Ok(Expr::Iter(k));
                }
                Err(format!("unknown name `{nm}` in body"))
            }
            other => Err(format!("unexpected token {other:?} in body")),
        }
    }
}

/// Render any SCoP in the textual format (round-trips through [`parse`]).
#[must_use]
pub fn to_text(scop: &Scop) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scop {}", scop.name);
    if !scop.params.is_empty() {
        let _ = writeln!(out, "params {}", scop.params.join(" "));
    }
    for c in &scop.context.constraints {
        let _ = writeln!(
            out,
            "context {} >= 0",
            affine_text(&c.coeffs, 0, &scop.params)
        );
    }
    for a in &scop.arrays {
        let mut line = format!("array {}", a.name);
        for d in &a.dims {
            let _ = write!(line, "[{}]", affine_text(d, 0, &scop.params));
        }
        let _ = writeln!(out, "{line}");
    }
    for s in &scop.statements {
        let beta: Vec<String> = s.beta.iter().map(usize::to_string).collect();
        let _ = writeln!(out, "\nstmt {} beta [{}] {{", s.name, beta.join(","));
        for c in &s.domain.constraints {
            let rel = match c.kind {
                wf_polyhedra::ConstraintKind::Ineq => ">=",
                wf_polyhedra::ConstraintKind::Eq => "==",
            };
            let _ = writeln!(
                out,
                "  domain {} {rel} 0",
                affine_text(&c.coeffs, s.depth, &scop.params)
            );
        }
        let _ = writeln!(
            out,
            "  write {}",
            access_text(scop, s.write.array, &s.write.map, s.depth)
        );
        for (k, r) in s.reads.iter().enumerate() {
            let _ = writeln!(
                out,
                "  read r{k} = {}",
                access_text(scop, r.array, &r.map, s.depth)
            );
        }
        let _ = writeln!(out, "  body {}", body_text(&s.rhs));
        let _ = writeln!(out, "}}");
    }
    out
}

fn affine_text(row: &[i128], depth: usize, params: &[String]) -> String {
    let mut terms: Vec<String> = Vec::new();
    let push = |terms: &mut Vec<String>, v: i128, nm: &str| match v {
        0 => {}
        1 if terms.is_empty() => terms.push(nm.to_string()),
        1 => terms.push(format!("+ {nm}")),
        -1 => terms.push(format!("- {nm}")),
        v if v > 0 && !terms.is_empty() => terms.push(format!("+ {v}*{nm}")),
        v => terms.push(format!("{v}*{nm}")),
    };
    for k in 0..depth {
        push(
            &mut terms,
            row[k],
            ITER_NAMES.get(k).copied().unwrap_or("i"),
        );
    }
    for (j, p) in params.iter().enumerate() {
        push(&mut terms, row[depth + j], p);
    }
    let konst = row[row.len() - 1];
    if konst != 0 || terms.is_empty() {
        terms.push(if konst >= 0 && !terms.is_empty() {
            format!("+ {konst}")
        } else {
            format!("{konst}")
        });
    }
    terms.join(" ")
}

fn access_text(scop: &Scop, array: usize, map: &[Vec<i128>], depth: usize) -> String {
    let mut out = scop.arrays[array].name.clone();
    for row in map {
        out.push('[');
        out.push_str(&affine_text(row, depth, &scop.params));
        out.push(']');
    }
    out
}

fn body_text(e: &Expr) -> String {
    match e {
        Expr::Load(k) => format!("r{k}"),
        Expr::Const(v) => {
            let s = format!("{v:?}");
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Iter(k) => ITER_NAMES.get(*k).copied().unwrap_or("i").to_string(),
        Expr::Param(_) => "0.0".to_string(), // params-in-body unsupported in text
        Expr::Add(a, b) => format!("({} + {})", body_text(a), body_text(b)),
        Expr::Sub(a, b) => format!("({} - {})", body_text(a), body_text(b)),
        Expr::Mul(a, b) => format!("({} * {})", body_text(a), body_text(b)),
        Expr::Div(a, b) => format!("({} / {})", body_text(a), body_text(b)),
        Expr::Neg(a) => format!("(- {})", body_text(a)),
        Expr::Sqrt(a) => format!("sqrt({})", body_text(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMVER_CORE: &str = r"
scop gemver_core
params N
context N - 4 >= 0
array A[N][N]
array x[N]
array y[N]

stmt S1 beta [0,0,0] {
  domain 0 <= i <= N - 1
  domain 0 <= j <= N - 1
  write A[i][j]
  read r0 = A[i][j]
  body r0 + 1.5
}

stmt S2 beta [1,0,0] {
  domain 0 <= i <= N - 1
  domain 0 <= j <= N - 1
  write x[i]
  read r0 = x[i]
  read r1 = A[j][i]
  read r2 = y[j]
  body r0 + r1 * r2
}
";

    #[test]
    fn parses_gemver_core() {
        let scop = parse(GEMVER_CORE).expect("parses");
        assert_eq!(scop.name, "gemver_core");
        assert_eq!(scop.n_statements(), 2);
        assert_eq!(scop.statements[0].depth, 2);
        assert_eq!(scop.statements[1].reads.len(), 3);
        // S2 reads A transposed.
        assert_eq!(
            scop.statements[1].reads[1].map,
            vec![vec![0, 1, 0, 0], vec![1, 0, 0, 0]]
        );
        assert!(scop.validate().is_empty());
    }

    #[test]
    fn chained_domain_relations() {
        let src = "
scop t
params N
array A[N]
stmt S0 beta [0,0] {
  domain 1 <= i < N - 1
  write A[i]
  body 2.0
}
";
        let scop = parse(src).expect("parses");
        let d = &scop.statements[0].domain;
        assert!(d.contains(&[1, 10]));
        assert!(d.contains(&[8, 10]));
        assert!(!d.contains(&[9, 10]), "strict < N-1");
        assert!(!d.contains(&[0, 10]));
    }

    #[test]
    fn body_grammar() {
        let src = "
scop t
params N
array A[N]
array B[N]
stmt S0 beta [0,0] {
  domain 0 <= i <= N - 1
  write B[i]
  read r0 = A[i]
  body sqrt(r0) * -2.0 + (r0 / 4.0) - i
}
";
        let scop = parse(src).expect("parses");
        let e = &scop.statements[0].rhs;
        // Evaluate at r0 = 16, i = 3: sqrt(16)*-2 + 16/4 - 3 = -8 + 4 - 3.
        assert_eq!(e.eval(&[16.0], &[3], &[10]), -7.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "scop t\nparams N\narray A[N]\nstmt S0 beta [0,0] {\n  domain 0 <= q <= N\n  write A[i]\n  body 1.0\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("unknown identifier `q`"), "{err}");
    }

    #[test]
    fn unknown_array_is_reported() {
        let src = "scop t\nparams N\nstmt S0 beta [0,0] {\n  domain 0 <= i <= N - 1\n  write A[i]\n  body 1.0\n}\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown array"), "{err}");
    }

    #[test]
    fn roundtrip_through_text() {
        let scop = parse(GEMVER_CORE).expect("parses");
        let text = to_text(&scop);
        let again = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(scop.n_statements(), again.n_statements());
        for (a, b) in scop.statements.iter().zip(&again.statements) {
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.write, b.write);
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.beta, b.beta);
            // Domains may be row-reordered but must contain the same points.
            for p in [[0i128, 0, 8], [7, 7, 8], [8, 0, 8], [0, 8, 8]] {
                assert_eq!(a.domain.contains(&p), b.domain.contains(&p));
            }
        }
    }

    #[test]
    fn catalog_kernels_export_and_reparse() {
        // to_text must round-trip arbitrary builder-made SCoPs.
        use crate::{Aff, ScopBuilder};
        let mut b = ScopBuilder::new("exp", &["N", "M"]);
        b.context_ge(Aff::param(0) - 4);
        b.context_ge(Aff::param(1) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(1) + 2]);
        let s = b.scalar("acc");
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .bounds(1, Aff::iter(0), Aff::param(1) - 1)
            .write(a, &[Aff::iter(0) * 2 - 1, Aff::iter(1)])
            .rhs(Expr::mul(Expr::Iter(0), Expr::Const(0.5)))
            .done();
        b.stmt("S1", 0, &[1])
            .write(s, &[])
            .read(a, &[Aff::konst(1), Aff::konst(1)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let text = to_text(&scop);
        let again = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(again.n_statements(), 2);
        assert_eq!(again.statements[0].write.map, scop.statements[0].write.map);
        assert_eq!(again.arrays.len(), 2);
    }
}
