//! Code generation from affine schedules (the CLooG stand-in).
//!
//! Given a SCoP and a statement-wise multi-dimensional affine transform,
//! this crate produces an [`ExecPlan`]: for every statement,
//!
//! * per-dimension **affine loop bounds** in schedule space, obtained by
//!   Fourier–Motzkin projection of the transformed domain
//!   `{ (z, i) | z = T_S(i), i ∈ D_S }` onto each loop-prefix,
//! * an exact **inverse map** from schedule coordinates back to the original
//!   iterators (rational inverse of a full-rank subset of the loop rows,
//!   stored as an integer adjugate plus denominator),
//! * **guards**: full membership validation (integrality, all schedule
//!   equalities, domain membership) — this makes execution exact even
//!   though FM projection is only rational.
//!
//! The runtime walks the plan dimension by dimension, taking the union of
//! member bounds and guarding each statement — exactly how CLooG-generated
//! code with per-statement guards behaves.
//!
//! [`render::render_plan`] pretty-prints the transformed program the way the
//! paper's figures do.

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod cemit;
pub mod plan;
pub mod render;
pub mod tiling;

pub use cemit::emit_c;
pub use plan::{
    build_plan, build_plan_with_layout, ExecPlan, InverseMap, LevelBounds, StmtPlan, ZDim,
};
pub use render::render_plan;
pub use tiling::{bands, build_tiled_plan, default_tiles, TileSpec};

// NOTE: `plan_from_optimized` (plan construction straight from a pipeline
// result) lives in `wf_wisefuse` now — this crate deliberately knows
// nothing about the optimizer so that `wf_wisefuse` can sit *above* codegen
// and runtime and offer the whole-pipeline `Optimizer` facade and prelude.
