//! Code generation from affine schedules (the CLooG stand-in).
//!
//! Given a SCoP and a statement-wise multi-dimensional affine transform,
//! this crate produces an [`ExecPlan`]: for every statement,
//!
//! * per-dimension **affine loop bounds** in schedule space, obtained by
//!   Fourier–Motzkin projection of the transformed domain
//!   `{ (z, i) | z = T_S(i), i ∈ D_S }` onto each loop-prefix,
//! * an exact **inverse map** from schedule coordinates back to the original
//!   iterators (rational inverse of a full-rank subset of the loop rows,
//!   stored as an integer adjugate plus denominator),
//! * **guards**: full membership validation (integrality, all schedule
//!   equalities, domain membership) — this makes execution exact even
//!   though FM projection is only rational.
//!
//! The runtime walks the plan dimension by dimension, taking the union of
//! member bounds and guarding each statement — exactly how CLooG-generated
//! code with per-statement guards behaves.
//!
//! [`render::render_plan`] pretty-prints the transformed program the way the
//! paper's figures do.

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod cemit;
pub mod plan;
pub mod render;
pub mod tiling;

pub use plan::{build_plan, build_plan_with_layout, ExecPlan, InverseMap, LevelBounds, StmtPlan, ZDim};
pub use tiling::{bands, build_tiled_plan, default_tiles, TileSpec};
pub use cemit::emit_c;
pub use render::render_plan;

use wf_schedule::props::LoopProp;
use wf_wisefuse::Optimized;

/// Build the execution plan straight from a pipeline result, translating
/// the loop-property analysis into per-dimension parallel flags.
#[must_use]
pub fn plan_from_optimized(scop: &wf_scop::Scop, opt: &Optimized) -> ExecPlan {
    let parallel: Vec<Vec<bool>> = opt
        .props
        .iter()
        .map(|row| row.iter().map(|p| matches!(p, Some(LoopProp::Parallel))).collect())
        .collect();
    plan::build_plan(scop, &opt.transformed, parallel)
}
