//! Execution-plan construction.

use wf_linalg::{lcm, RatMat};
use wf_polyhedra::{fm, ConstraintSystem};
use wf_schedule::pluto::Transformed;
use wf_schedule::transform::DimKind;
use wf_scop::Scop;

/// Per-level affine bounds of one statement's schedule dimension.
///
/// Each bound row ranges over `(z_0 … z_{D-1}, params, 1)` with a zero
/// coefficient on `z_d` itself and on every `z_{>d}`; the represented
/// constraint is `a_d · z_d + row ≥ 0` with `a_d` stored separately.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelBounds {
    /// `(coef, row)` pairs with `coef > 0`: `z_d >= ceil(-row / coef)`.
    pub lowers: Vec<(i128, Vec<i128>)>,
    /// `(coef, row)` pairs with `coef > 0`: `z_d <= floor(row / coef)`.
    pub uppers: Vec<(i128, Vec<i128>)>,
}

impl LevelBounds {
    /// Evaluate the tightest lower bound at a partial schedule point.
    #[must_use]
    pub fn lower(&self, z: &[i128], params: &[i128]) -> Option<i128> {
        self.lowers
            .iter()
            .map(|(c, row)| {
                let r = eval_row(row, z, params);
                // z_d >= -r / c  (c > 0)
                ceil_div(-r, *c)
            })
            .max()
    }

    /// Evaluate the tightest upper bound at a partial schedule point.
    #[must_use]
    pub fn upper(&self, z: &[i128], params: &[i128]) -> Option<i128> {
        self.uppers
            .iter()
            .map(|(c, row)| {
                let r = eval_row(row, z, params);
                floor_div(r, *c)
            })
            .min()
    }
}

fn eval_row(row: &[i128], z: &[i128], params: &[i128]) -> i128 {
    let d = row.len() - 1 - params.len();
    let mut v = row[row.len() - 1];
    for (k, &zv) in z.iter().enumerate().take(d) {
        v += row[k] * zv;
    }
    for (j, &p) in params.iter().enumerate() {
        v += row[d + j] * p;
    }
    v
}

fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

fn floor_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Exact integer inverse map: `i = (mat · (z_sel − shift)) / den`.
#[derive(Clone, Debug, PartialEq)]
pub struct InverseMap {
    /// Which schedule dimensions are selected (one per original iterator).
    pub sel_dims: Vec<usize>,
    /// Integer matrix (depth × depth).
    pub mat: Vec<Vec<i128>>,
    /// Constant shifts of the selected rows.
    pub shift: Vec<i128>,
    /// Common denominator (> 0).
    pub den: i128,
}

impl InverseMap {
    /// Recover the original iteration vector from a full schedule point,
    /// or `None` if it is not an integer preimage.
    #[must_use]
    pub fn invert(&self, z: &[i128]) -> Option<Vec<i128>> {
        let depth = self.sel_dims.len();
        let mut out = Vec::with_capacity(depth);
        for r in 0..depth {
            let mut acc = 0i128;
            for (c, &dim) in self.sel_dims.iter().enumerate() {
                acc += self.mat[r][c] * (z[dim] - self.shift[c]);
            }
            if acc % self.den != 0 {
                return None;
            }
            out.push(acc / self.den);
        }
        Some(out)
    }
}

/// Everything the runtime needs to execute one statement.
#[derive(Clone, Debug)]
pub struct StmtPlan {
    /// Statement index in the SCoP.
    pub stmt: usize,
    /// Bounds per schedule dimension (scalar dims have exact-value bounds).
    pub bounds: Vec<LevelBounds>,
    /// Exact inverse map back to original iterators.
    pub inverse: InverseMap,
}

/// One execution dimension of a (possibly tiled) plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZDim {
    /// An original schedule dimension.
    Orig(usize),
    /// A tile loop enumerating blocks of an original dimension:
    /// `size·zt <= z_orig <= size·zt + size - 1`.
    Tile {
        /// The original schedule dimension being strip-mined.
        orig: usize,
        /// Tile size (> 1).
        size: i128,
    },
}

/// The executable plan for a whole transformed SCoP.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    /// Dimension kinds, one per execution dimension (tile loops are
    /// `Loop`s).
    pub dims: Vec<DimKind>,
    /// What each execution dimension is (original or tile loop).
    pub layout: Vec<ZDim>,
    /// One plan per statement (same order as the SCoP).
    pub stmts: Vec<StmtPlan>,
    /// `parallel[d][s]`: may dimension `d` be run in parallel for statement
    /// `s`'s fused group? (False for scalar dims.)
    pub parallel: Vec<Vec<bool>>,
}

/// Build the (untiled) execution plan for a transformed SCoP.
///
/// `parallel` comes from `wf_schedule::props::analyze`, mapped to booleans
/// by the caller (true ⇔ `LoopProp::Parallel`).
#[must_use]
pub fn build_plan(scop: &Scop, t: &Transformed, parallel: Vec<Vec<bool>>) -> ExecPlan {
    let layout: Vec<ZDim> = (0..t.schedule.n_dims()).map(ZDim::Orig).collect();
    build_plan_with_layout(scop, t, parallel, &layout)
}

/// Build an execution plan under an explicit dimension layout — the general
/// entry point used by the tiling pass ([`crate::tiling`]).
///
/// Every original schedule dimension must appear exactly once as
/// `ZDim::Orig`; `ZDim::Tile` entries may be inserted anywhere *before*
/// their original dimension.
#[must_use]
pub fn build_plan_with_layout(
    scop: &Scop,
    t: &Transformed,
    parallel: Vec<Vec<bool>>,
    layout: &[ZDim],
) -> ExecPlan {
    let _span = wf_harness::span!("codegen.plan", "strategy" => t.strategy.clone());
    wf_harness::obs::add("codegen.plans", 1);
    let np = scop.n_params();
    let ndims = t.schedule.n_dims();
    let nl = layout.len();
    // Position of each original dim in the layout.
    let mut pos_of_orig = vec![usize::MAX; ndims];
    for (p, zd) in layout.iter().enumerate() {
        if let ZDim::Orig(d) = zd {
            assert_eq!(pos_of_orig[*d], usize::MAX, "dim {d} appears twice");
            pos_of_orig[*d] = p;
        }
    }
    assert!(
        pos_of_orig.iter().all(|&p| p != usize::MAX),
        "layout must cover all dims"
    );
    for (p, zd) in layout.iter().enumerate() {
        if let ZDim::Tile { orig, size } = zd {
            assert!(*size > 1, "tile size must exceed 1");
            assert!(p < pos_of_orig[*orig], "tile loop must precede its dim");
        }
    }

    let stmts = scop
        .statements
        .iter()
        .enumerate()
        .map(|(s, st)| {
            let depth = st.depth;
            // Transformed domain over (z_0..z_{D-1}, i_0..i_{d-1}, params).
            let nv = ndims + depth + np;
            let mut cs = ConstraintSystem::new(nv);
            // Schedule equalities: z_d - T_d(i) = 0.
            for d in 0..ndims {
                let row_s = &t.schedule.rows[d][s];
                let mut row = vec![0i128; nv + 1];
                row[d] = 1;
                for k in 0..depth {
                    row[ndims + k] = -row_s.coeffs[k];
                }
                row[nv] = -row_s.konst;
                cs.add_eq0(row);
            }
            // Domain over (i, params).
            let map: Vec<usize> = (ndims..ndims + depth).chain(ndims + depth..nv).collect();
            cs.extend(&st.domain.embed(nv, &map));
            // Context over params.
            let pmap: Vec<usize> = (ndims + depth..nv).collect();
            cs.extend(&scop.context.embed(nv, &pmap));

            // Project away the original iterators.
            let ivars: Vec<usize> = (ndims..ndims + depth).collect();
            let mut zsys = fm::eliminate_vars_greedy(&cs, &ivars, 80);
            // Shrink to (z, params).
            zsys = shrink(&zsys, ndims, depth, np);

            // Re-embed into the layout space (nl z-vars + params) and add
            // the tile constraints size·zt <= z <= size·zt + size - 1.
            let lw = nl + np;
            let mut zmap: Vec<usize> = pos_of_orig.clone();
            zmap.extend(nl..lw); // params
            let mut lsys = zsys.embed(lw, &zmap);
            for (p, zd) in layout.iter().enumerate() {
                if let ZDim::Tile { orig, size } = zd {
                    let zo = pos_of_orig[*orig];
                    let mut lo = vec![0i128; lw + 1];
                    lo[zo] = 1;
                    lo[p] = -size;
                    lsys.add_ge0(lo); // z - size*zt >= 0
                    let mut hi = vec![0i128; lw + 1];
                    hi[zo] = -1;
                    hi[p] = *size;
                    hi[lw] = size - 1;
                    lsys.add_ge0(hi); // size*zt + size-1 - z >= 0
                }
            }

            // Per-level bounds, innermost first.
            let mut bounds = vec![
                LevelBounds {
                    lowers: Vec::new(),
                    uppers: Vec::new()
                };
                nl
            ];
            let mut cur = lsys;
            for d in (0..nl).rev() {
                for c in &cur.constraints {
                    let a = c.coeffs[d];
                    if a == 0 {
                        continue;
                    }
                    let mut row = c.coeffs.clone();
                    row[d] = 0;
                    match c.kind {
                        wf_polyhedra::ConstraintKind::Ineq => {
                            if a > 0 {
                                bounds[d].lowers.push((a, row));
                            } else {
                                // a z + row >= 0, a < 0: z <= row / (-a)
                                bounds[d].uppers.push((-a, row));
                            }
                        }
                        wf_polyhedra::ConstraintKind::Eq => {
                            if a > 0 {
                                bounds[d].lowers.push((a, row.clone()));
                                let mut neg: Vec<i128> = row.iter().map(|&v| -v).collect();
                                neg[d] = 0;
                                bounds[d].uppers.push((a, neg));
                            } else {
                                let pos: Vec<i128> = row.iter().map(|&v| -v).collect();
                                bounds[d].lowers.push((-a, pos));
                                bounds[d].uppers.push((-a, row));
                            }
                        }
                    }
                }
                assert!(
                    !bounds[d].lowers.is_empty() && !bounds[d].uppers.is_empty(),
                    "{}: unbounded execution dimension {d}",
                    st.name
                );
                cur = fm::eliminate_var(&cur, d);
            }

            let mut inverse = build_inverse(t, s, depth);
            // Re-point the selected dims into layout positions.
            inverse.sel_dims = inverse.sel_dims.iter().map(|&d| pos_of_orig[d]).collect();
            StmtPlan {
                stmt: s,
                bounds,
                inverse,
            }
        })
        .collect();

    let dims: Vec<DimKind> = layout
        .iter()
        .map(|zd| match zd {
            ZDim::Orig(d) => t.schedule.dims[*d],
            ZDim::Tile { .. } => DimKind::Loop,
        })
        .collect();
    let par: Vec<Vec<bool>> = layout
        .iter()
        .map(|zd| {
            let d = match zd {
                ZDim::Orig(d) | ZDim::Tile { orig: d, .. } => *d,
            };
            parallel[d].clone()
        })
        .collect();
    ExecPlan {
        dims,
        layout: layout.to_vec(),
        stmts,
        parallel: par,
    }
}

fn shrink(cs: &ConstraintSystem, ndims: usize, depth: usize, np: usize) -> ConstraintSystem {
    let keep = ndims + np;
    let mut out = ConstraintSystem::new(keep);
    for c in &cs.constraints {
        debug_assert!(c.coeffs[ndims..ndims + depth].iter().all(|&v| v == 0));
        let mut row = Vec::with_capacity(keep + 1);
        row.extend_from_slice(&c.coeffs[..ndims]);
        row.extend_from_slice(&c.coeffs[ndims + depth..]);
        if row.iter().all(|&v| v == 0) {
            continue;
        }
        out.constraints.push(wf_polyhedra::Constraint {
            coeffs: row,
            kind: c.kind,
        });
    }
    out
}

fn build_inverse(t: &Transformed, s: usize, depth: usize) -> InverseMap {
    // Select `depth` linearly independent loop rows.
    let mut sel_dims = Vec::new();
    let mut rows: Vec<Vec<i128>> = Vec::new();
    for (d, kind) in t.schedule.dims.iter().enumerate() {
        if *kind != DimKind::Loop || rows.len() == depth {
            continue;
        }
        let cand = t.schedule.rows[d][s].coeffs.clone();
        let mut trial = rows.clone();
        trial.push(cand.clone());
        if RatMat::from_int_rows(&trial).rank() == trial.len() {
            rows.push(cand);
            sel_dims.push(d);
        }
    }
    assert_eq!(
        rows.len(),
        depth,
        "statement {s}: schedule is rank-deficient"
    );
    if depth == 0 {
        return InverseMap {
            sel_dims,
            mat: Vec::new(),
            shift: Vec::new(),
            den: 1,
        };
    }
    let m = RatMat::from_int_rows(&rows);
    let inv = m.inverse().expect("full-rank by construction");
    // Common denominator.
    let mut den = 1i128;
    for r in 0..depth {
        for c in 0..depth {
            den = lcm(den, inv[(r, c)].den());
        }
    }
    let mat: Vec<Vec<i128>> = (0..depth)
        .map(|r| {
            (0..depth)
                .map(|c| inv[(r, c)].num() * (den / inv[(r, c)].den()))
                .collect()
        })
        .collect();
    let shift: Vec<i128> = sel_dims
        .iter()
        .map(|&d| t.schedule.rows[d][s].konst)
        .collect();
    InverseMap {
        sel_dims,
        mat,
        shift,
        den,
    }
}

/// Validate a candidate execution point against one statement: recover the
/// iterators, check every schedule dimension (and tile consistency) and the
/// domain. Returns the iteration vector when the point is genuine.
#[must_use]
pub fn guard(
    scop: &Scop,
    t: &Transformed,
    layout: &[ZDim],
    sp: &StmtPlan,
    z: &[i128],
    params: &[i128],
) -> Option<Vec<i128>> {
    let iters = sp.inverse.invert(z)?;
    // Every execution dimension must match: original dims must equal the
    // schedule value, tile dims must be the enclosing block.
    let full = t.schedule.apply(sp.stmt, &iters);
    for (p, zd) in layout.iter().enumerate() {
        let want = match zd {
            ZDim::Orig(d) => full[*d],
            ZDim::Tile { orig, size } => full[*orig].div_euclid(*size),
        };
        if z[p] != want {
            return None;
        }
    }
    // Domain membership.
    let st = &scop.statements[sp.stmt];
    let mut point = iters.clone();
    point.extend_from_slice(params);
    st.domain.contains(&point).then_some(iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_deps::analyze;
    use wf_schedule::{schedule_scop, Maxfuse, Nofuse, PlutoConfig};
    use wf_scop::{Aff, Expr, Scop, ScopBuilder};

    fn producer_consumer() -> Scop {
        let mut b = ScopBuilder::new("pc", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(bb, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    fn plan_for(scop: &Scop, strat: &dyn wf_schedule::FusionStrategy) -> (Transformed, ExecPlan) {
        let ddg = analyze(scop);
        let t = schedule_scop(scop, &ddg, strat, &PlutoConfig::default()).unwrap();
        let ndims = t.schedule.n_dims();
        let parallel = vec![vec![false; scop.n_statements()]; ndims];
        let plan = build_plan(scop, &t, parallel);
        (t, plan)
    }

    #[test]
    fn bounds_cover_exactly_the_domain() {
        let scop = producer_consumer();
        let (t, plan) = plan_for(&scop, &Maxfuse);
        let params = [6i128];
        // Walk the plan manually for statement 0 and count guarded points.
        for sp in &plan.stmts {
            let mut count = 0;
            walk(&scop, &t, sp, &mut vec![], &params, &mut count);
            assert_eq!(count, 6, "stmt {} executes N times", sp.stmt);
        }
    }

    fn walk(
        scop: &Scop,
        t: &Transformed,
        sp: &StmtPlan,
        z: &mut Vec<i128>,
        params: &[i128],
        count: &mut usize,
    ) {
        if z.len() == sp.bounds.len() {
            let layout: Vec<ZDim> = (0..sp.bounds.len()).map(ZDim::Orig).collect();
            if guard(scop, t, &layout, sp, z, params).is_some() {
                *count += 1;
            }
            return;
        }
        let d = z.len();
        let (Some(lo), Some(hi)) = (sp.bounds[d].lower(z, params), sp.bounds[d].upper(z, params))
        else {
            panic!("unbounded dim {d}");
        };
        for v in lo..=hi {
            z.push(v);
            walk(scop, t, sp, z, params, count);
            z.pop();
        }
    }

    #[test]
    fn inverse_roundtrip_identity() {
        let scop = producer_consumer();
        let (t, plan) = plan_for(&scop, &Nofuse);
        for sp in &plan.stmts {
            for i in 0..6i128 {
                let z = t.schedule.apply(sp.stmt, &[i]);
                let back = guard(&scop, &t, &plan.layout, sp, &z, &[6]).expect("point in domain");
                assert_eq!(back, vec![i]);
            }
        }
    }

    #[test]
    fn guard_rejects_foreign_points() {
        let scop = producer_consumer();
        let (t, plan) = plan_for(&scop, &Nofuse);
        // A point from statement 1's partition must not validate for
        // statement 0 (scalar dim differs).
        let z1 = t.schedule.apply(1, &[3]);
        assert!(guard(&scop, &t, &plan.layout, &plan.stmts[0], &z1, &[6]).is_none());
        // Out-of-domain point.
        let z_oob = t.schedule.apply(0, &[17]);
        assert!(guard(&scop, &t, &plan.layout, &plan.stmts[0], &z_oob, &[6]).is_none());
    }

    #[test]
    fn interchange_inverse() {
        // 2-D statement scheduled with interchanged loops: inverse must
        // recover (i, j) from (j, i).
        let mut b = ScopBuilder::new("ic", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let x = b.array("X", &[Aff::param(0)]);
        b.stmt("S1", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S2", 2, &[1, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(x, &[Aff::iter(0)])
            .read(a, &[Aff::iter(1), Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let (t, plan) = plan_for(&scop, &Maxfuse);
        let params = [5i128];
        for sp in &plan.stmts {
            let mut count = 0;
            walk(&scop, &t, sp, &mut vec![], &params, &mut count);
            assert_eq!(count, 25, "stmt {} full 2-D domain", sp.stmt);
        }
    }

    #[test]
    fn triangular_domain_counts() {
        // for i in 0..N, j in 0..=i: exactly N(N+1)/2 points survive.
        let mut b = ScopBuilder::new("tri", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::iter(0))
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        let scop = b.build();
        let (t, plan) = plan_for(&scop, &Nofuse);
        let mut count = 0;
        walk(&scop, &t, &plan.stmts[0], &mut vec![], &[6], &mut count);
        assert_eq!(count, 21);
    }

    #[test]
    fn ceil_floor_div() {
        assert_eq!(super::ceil_div(7, 2), 4);
        assert_eq!(super::ceil_div(-7, 2), -3);
        assert_eq!(super::floor_div(7, 2), 3);
        assert_eq!(super::floor_div(-7, 2), -4);
    }
}
