//! Rectangular tiling of permutable bands.
//!
//! PLuTo's flagship transformation: once the scheduler has produced bands of
//! mutually permutable loop hyperplanes (every dependence live at band start
//! has a non-negative component on every band dimension), each band can be
//! rectangularly tiled — the tile loops are legal in any interleaving with
//! each other, and fusion composes with tiling for free. Tiling is expressed
//! purely in the execution-plan layout: each tiled dimension `z` gains a
//! preceding tile loop `zt` with `size·zt ≤ z ≤ size·zt + size − 1`, and the
//! FM-based bounds generation handles the rest.

use crate::plan::{build_plan_with_layout, ExecPlan, ZDim};
use wf_schedule::pluto::Transformed;
use wf_scop::Scop;

/// One band to tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileSpec {
    /// Schedule dimensions of the band (must share a band id).
    pub dims: Vec<usize>,
    /// Tile size per band dimension (same length as `dims`, each > 1).
    pub sizes: Vec<i128>,
}

/// The permutable bands of a transform: maximal runs of consecutive loop
/// dimensions sharing a band id, returned as dimension-index lists.
#[must_use]
pub fn bands(t: &Transformed) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut cur_id: Option<usize> = None;
    for (d, &id) in t.band_of_dim.iter().enumerate() {
        match (id, cur_id) {
            (Some(b), Some(cb)) if b == cb => cur.push(d),
            (Some(b), _) => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                cur.push(d);
                cur_id = Some(b);
            }
            (None, _) => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                cur_id = None;
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Default tiling: every permutable band of two or more loops is tiled with
/// a uniform size.
#[must_use]
pub fn default_tiles(t: &Transformed, size: i128) -> Vec<TileSpec> {
    bands(t)
        .into_iter()
        .filter(|b| b.len() >= 2)
        .map(|dims| {
            let sizes = vec![size; dims.len()];
            TileSpec { dims, sizes }
        })
        .collect()
}

/// Build a tiled execution plan: tile loops are placed, in band order,
/// immediately before each band's first dimension.
///
/// # Panics
/// Panics if a spec names dimensions outside one permutable band, or sizes
/// don't match.
#[must_use]
pub fn build_tiled_plan(
    scop: &Scop,
    t: &Transformed,
    parallel: Vec<Vec<bool>>,
    tiles: &[TileSpec],
) -> ExecPlan {
    // Validate the specs against the band structure.
    for spec in tiles {
        assert_eq!(spec.dims.len(), spec.sizes.len(), "sizes/dims mismatch");
        assert!(!spec.dims.is_empty());
        let b0 = t.band_of_dim[spec.dims[0]];
        assert!(b0.is_some(), "cannot tile a scalar dimension");
        for &d in &spec.dims {
            assert_eq!(
                t.band_of_dim[d], b0,
                "tile spec crosses band boundaries (dims {:?})",
                spec.dims
            );
        }
    }
    // Build the layout: at each band's first dim, emit the tile loops.
    let mut layout: Vec<ZDim> = Vec::new();
    for d in 0..t.schedule.n_dims() {
        for spec in tiles {
            if spec.dims.first() == Some(&d) {
                for (&orig, &size) in spec.dims.iter().zip(&spec.sizes) {
                    layout.push(ZDim::Tile { orig, size });
                }
            }
        }
        layout.push(ZDim::Orig(d));
    }
    build_plan_with_layout(scop, t, parallel, &layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::guard;
    use wf_deps::analyze;
    use wf_schedule::{schedule_scop, Maxfuse, PlutoConfig};
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn matmul_update() -> wf_scop::Scop {
        // C[i][j] += A[i][k] * B[k][j] over a full 3-D nest (one statement,
        // fully permutable band of 3 after scheduling).
        let mut b = ScopBuilder::new("mm", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0), Aff::param(0)]);
        let c = b.array("C", &[Aff::param(0), Aff::param(0)]);
        b.stmt("S0", 3, &[0, 0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .bounds(2, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0), Aff::iter(1)])
            .read(c, &[Aff::iter(0), Aff::iter(1)])
            .read(a, &[Aff::iter(0), Aff::iter(2)])
            .read(bb, &[Aff::iter(1), Aff::iter(2)])
            .rhs(Expr::add(
                Expr::Load(0),
                Expr::mul(Expr::Load(1), Expr::Load(2)),
            ))
            .done();
        b.build()
    }

    #[test]
    fn matmul_has_a_permutable_band() {
        let scop = matmul_update();
        let ddg = analyze(&scop);
        let t = schedule_scop(&scop, &ddg, &Maxfuse, &PlutoConfig::default()).unwrap();
        let bs = bands(&t);
        assert!(
            bs.iter().any(|b| b.len() >= 2),
            "matmul should expose a multi-loop permutable band, got {bs:?}"
        );
    }

    #[test]
    fn tiled_plan_enumerates_exactly_the_domain() {
        let scop = matmul_update();
        let ddg = analyze(&scop);
        let t = schedule_scop(&scop, &ddg, &Maxfuse, &PlutoConfig::default()).unwrap();
        let tiles = default_tiles(&t, 3);
        assert!(!tiles.is_empty());
        let parallel = vec![vec![false; 1]; t.schedule.n_dims()];
        let plan = build_tiled_plan(&scop, &t, parallel, &tiles);
        // Walk the tiled plan: every original instance appears exactly once.
        let params = [7i128];
        let sp = &plan.stmts[0];
        let mut seen = std::collections::HashSet::new();
        let mut z: Vec<i128> = Vec::new();
        walk(&scop, &t, &plan, sp, &mut z, &params, &mut seen);
        assert_eq!(seen.len(), 343, "7^3 instances, each exactly once");
    }

    fn walk(
        scop: &wf_scop::Scop,
        t: &wf_schedule::pluto::Transformed,
        plan: &ExecPlan,
        sp: &crate::plan::StmtPlan,
        z: &mut Vec<i128>,
        params: &[i128],
        seen: &mut std::collections::HashSet<Vec<i128>>,
    ) {
        if z.len() == plan.layout.len() {
            if let Some(iters) = guard(scop, t, &plan.layout, sp, z, params) {
                assert!(seen.insert(iters), "duplicate instance at {z:?}");
            }
            return;
        }
        let d = z.len();
        let (Some(lo), Some(hi)) = (sp.bounds[d].lower(z, params), sp.bounds[d].upper(z, params))
        else {
            panic!("unbounded dim {d}");
        };
        for v in lo..=hi {
            z.push(v);
            walk(scop, t, plan, sp, z, params, seen);
            z.pop();
        }
    }

    #[test]
    fn band_extraction_handles_gaps() {
        use wf_schedule::pluto::Transformed;
        use wf_schedule::transform::Schedule;
        let t = Transformed {
            schedule: Schedule::new(),
            sat_dim: vec![],
            sccs: wf_deps::SccInfo {
                scc_of: vec![],
                members: vec![],
            },
            scc_order: vec![],
            partitions: vec![],
            strategy: "x".into(),
            band_of_dim: vec![None, Some(0), Some(0), None, Some(1), None],
        };
        assert_eq!(bands(&t), vec![vec![1, 2], vec![4]]);
    }

    #[test]
    fn default_tiles_only_multiloop_bands() {
        use wf_schedule::pluto::Transformed;
        use wf_schedule::transform::Schedule;
        let t = Transformed {
            schedule: Schedule::new(),
            sat_dim: vec![],
            sccs: wf_deps::SccInfo {
                scc_of: vec![],
                members: vec![],
            },
            scc_order: vec![],
            partitions: vec![],
            strategy: "x".into(),
            band_of_dim: vec![None, Some(0), Some(0), Some(1), None],
        };
        let tiles = default_tiles(&t, 32);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].dims, vec![1, 2]);
    }
}
