//! Pretty-printing of transformed programs (the paper's figure style).

use crate::plan::{ExecPlan, LevelBounds};
use wf_schedule::transform::DimKind;
use wf_scop::{pretty, Scop};

/// Render the transformed program as pseudo-C: scalar dimensions become
/// statement sequencing, loop dimensions become `for (t_d = …)` loops whose
/// bounds are the union of the member statements' bounds. Parallel loops are
/// annotated `#pragma omp parallel for`-style, matching how the paper
/// presents its transformed codes.
#[must_use]
pub fn render_plan(scop: &Scop, plan: &ExecPlan) -> String {
    let mut out = String::new();
    let stmts: Vec<usize> = (0..scop.n_statements()).collect();
    render_group(scop, plan, &stmts, 0, 0, &mut out);
    out
}

fn render_group(
    scop: &Scop,
    plan: &ExecPlan,
    group: &[usize],
    dim: usize,
    indent: usize,
    out: &mut String,
) {
    if group.is_empty() {
        return;
    }
    if dim == plan.dims.len() {
        for &s in group {
            pad(out, indent);
            out.push_str(&format!(
                "{}: {}\n",
                scop.statements[s].name,
                pretty::render_stmt(scop, &scop.statements[s])
            ));
        }
        return;
    }
    match plan.dims[dim] {
        DimKind::Scalar => {
            // Order subgroups by their scalar value at this dimension.
            let mut by_val: std::collections::BTreeMap<i128, Vec<usize>> = Default::default();
            for &s in group {
                // Scalar dims have equal lower/upper constant bounds; read
                // the exact value from the bounds at the empty prefix —
                // they are constant rows.
                let v = scalar_value(&plan.stmts[s].bounds[dim]);
                by_val.entry(v).or_default().push(s);
            }
            for (_, sub) in by_val {
                render_group(scop, plan, &sub, dim + 1, indent, out);
            }
        }
        DimKind::Loop => {
            let par = group.iter().all(|&s| plan.parallel[dim][s]);
            pad(out, indent);
            if par {
                out.push_str("#pragma parallel\n");
                pad(out, indent);
            }
            let lo = join_bounds(scop, group, plan, dim, true);
            let hi = join_bounds(scop, group, plan, dim, false);
            out.push_str(&format!(
                "for (t{dim} = {lo}; t{dim} <= {hi}; t{dim}++) {{\n"
            ));
            render_group(scop, plan, group, dim + 1, indent + 1, out);
            pad(out, indent);
            out.push_str("}\n");
        }
    }
}

fn scalar_value(b: &LevelBounds) -> i128 {
    // A scalar dimension's bounds pin z_d to a constant: take any lower
    // bound row with constant-only content.
    for (c, row) in &b.lowers {
        if row[..row.len() - 1].iter().all(|&v| v == 0) {
            return -row[row.len() - 1] / c;
        }
    }
    0
}

fn join_bounds(scop: &Scop, group: &[usize], plan: &ExecPlan, dim: usize, lower: bool) -> String {
    // Per statement: tight bound (max of lowers / min of uppers); across
    // statements: the union (min of lowers / max of uppers).
    let mut per_stmt: Vec<String> = Vec::new();
    for &s in group {
        let b = &plan.stmts[s].bounds[dim];
        let list = if lower { &b.lowers } else { &b.uppers };
        let mut exprs: Vec<String> = Vec::new();
        for (c, row) in list {
            let e = render_bound_expr(scop, row, *c, lower);
            if !exprs.contains(&e) {
                exprs.push(e);
            }
        }
        let own = match (exprs.len(), lower) {
            (1, _) => exprs.pop().unwrap(),
            (_, true) => format!("max({})", exprs.join(", ")),
            (_, false) => format!("min({})", exprs.join(", ")),
        };
        if !per_stmt.contains(&own) {
            per_stmt.push(own);
        }
    }
    match (per_stmt.len(), lower) {
        (1, _) => per_stmt.pop().unwrap(),
        (_, true) => format!("min({})", per_stmt.join(", ")),
        (_, false) => format!("max({})", per_stmt.join(", ")),
    }
}

fn render_bound_expr(scop: &Scop, row: &[i128], coef: i128, lower: bool) -> String {
    // lower: ceil(-row / coef); upper: floor(row / coef).
    let np = scop.n_params();
    let d = row.len() - 1 - np;
    let mut terms: Vec<String> = Vec::new();
    let sign = if lower { -1 } else { 1 };
    for (k, &c) in row[..d].iter().enumerate() {
        push(&mut terms, sign * c, &format!("t{k}"));
    }
    for (j, &c) in row[d..d + np].iter().enumerate() {
        push(&mut terms, sign * c, &scop.params[j]);
    }
    let konst = sign * row[row.len() - 1];
    if konst != 0 || terms.is_empty() {
        terms.push(if konst >= 0 && !terms.is_empty() {
            format!("+{konst}")
        } else {
            format!("{konst}")
        });
    }
    let body = terms.join("");
    if coef == 1 {
        body
    } else if lower {
        format!("ceil({body}, {coef})")
    } else {
        format!("floor({body}, {coef})")
    }
}

fn push(terms: &mut Vec<String>, c: i128, name: &str) {
    match c {
        0 => {}
        1 if terms.is_empty() => terms.push(name.to_string()),
        1 => terms.push(format!("+{name}")),
        -1 => terms.push(format!("-{name}")),
        c if c > 0 && !terms.is_empty() => terms.push(format!("+{c}*{name}")),
        c => terms.push(format!("{c}*{name}")),
    }
}

fn pad(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use wf_deps::analyze;
    use wf_schedule::props::{self, LoopProp};
    use wf_schedule::{schedule_scop, Maxfuse, Nofuse, PlutoConfig};
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn simple() -> wf_scop::Scop {
        let mut b = ScopBuilder::new("pc", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let bb = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(bb, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    fn rendered(strat: &dyn wf_schedule::FusionStrategy) -> String {
        let scop = simple();
        let ddg = analyze(&scop);
        let t = schedule_scop(&scop, &ddg, strat, &PlutoConfig::default()).unwrap();
        let p = props::analyze(&scop, &ddg, &t);
        let par: Vec<Vec<bool>> = p
            .iter()
            .map(|row| {
                row.iter()
                    .map(|x| matches!(x, Some(LoopProp::Parallel)))
                    .collect()
            })
            .collect();
        let plan = build_plan(&scop, &t, par);
        render_plan(&scop, &plan)
    }

    #[test]
    fn fused_render_has_one_loop() {
        let text = rendered(&Maxfuse);
        assert_eq!(text.matches("for (").count(), 1, "got:\n{text}");
        assert!(text.contains("S0:"), "got:\n{text}");
        assert!(text.contains("S1:"), "got:\n{text}");
        assert!(text.contains("#pragma parallel"), "got:\n{text}");
    }

    #[test]
    fn distributed_render_has_two_loops() {
        let text = rendered(&Nofuse);
        assert_eq!(text.matches("for (").count(), 2, "got:\n{text}");
        // S0's loop comes before S1's.
        let p0 = text.find("S0:").unwrap();
        let p1 = text.find("S1:").unwrap();
        assert!(p0 < p1);
    }
}
