//! Property gates for the legality oracle.
//!
//! Two invariants the guardrail design leans on, checked at fuzzer scale:
//!
//! 1. **The fallback is always safe.** When the oracle rejects an optimized
//!    schedule the pipeline degrades to the original-program-order (`icc`)
//!    schedule — so that schedule must pass the oracle for *every* program,
//!    or degradation could loop. 120 generated SCoPs say it does.
//! 2. **The catalog is clean.** Every benchmark × every fusion model must
//!    produce a schedule the oracle accepts: the independent checker and
//!    the optimizer's own internal legality check agree on the entire
//!    production corpus (this is the "two decision procedures, one
//!    verdict" cross-validation).
//!
//! These tests intentionally live in `wf-verify`'s integration suite and
//! pull the real optimizer in as a dev-dependency: the oracle crate itself
//! must stay independent of the machinery it judges.

use wf_verify::{check_schedule, gen_case};
use wf_wisefuse::prelude::*;

#[test]
fn fallback_schedule_is_always_legal() {
    for seed in 0..120u64 {
        let case = gen_case(seed);
        let ddg = wf_deps::analyze(&case.scop);
        let fallback = wf_wisefuse::icc_schedule(&case.scop, &ddg);
        let report = check_schedule(&case.scop, &ddg, &fallback.schedule);
        assert!(
            report.is_legal(),
            "seed {seed}: original program order rejected: {}",
            report.summary()
        );
        assert_eq!(report.checked_edges, ddg.edges.len());
    }
}

#[test]
fn catalog_schedules_pass_the_oracle() {
    for bench in wf_benchsuite::catalog() {
        let mut opt = Optimizer::new(&bench.scop).cache_off();
        for (model, result) in opt.run_all() {
            let optimized = result.unwrap_or_else(|e| {
                panic!(
                    "{}/{}: optimizer failed: {e}",
                    bench.scop.name,
                    model.name()
                )
            });
            let report =
                check_schedule(&bench.scop, &optimized.ddg, &optimized.transformed.schedule);
            assert!(
                report.is_legal(),
                "{}/{}: oracle rejected the emitted schedule: {}",
                bench.scop.name,
                model.name(),
                report.summary()
            );
        }
    }
}

#[test]
fn fuzzed_optimized_schedules_pass_the_oracle() {
    // The end-to-end property the fuzz subcommand automates, at a smaller
    // scale suitable for the test suite: generated SCoPs, all five models,
    // every successfully produced schedule accepted by the oracle.
    for seed in 0..30u64 {
        let case = gen_case(seed);
        let mut opt = Optimizer::new(&case.scop).cache_off();
        for (model, result) in opt.run_all() {
            match result {
                Ok(optimized) => {
                    let report =
                        check_schedule(&case.scop, &optimized.ddg, &optimized.transformed.schedule);
                    assert!(
                        report.is_legal(),
                        "seed {seed}/{}: {}",
                        model.name(),
                        report.summary()
                    );
                }
                Err(e) => assert!(
                    e.is_degradable(),
                    "seed {seed}/{}: non-degradable failure {e}",
                    model.name()
                ),
            }
        }
    }
}
