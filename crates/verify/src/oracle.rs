//! The independent schedule-legality oracle.
//!
//! Given a dependence graph and a produced schedule, re-derive from first
//! principles whether the schedule preserves every dependence:
//!
//! * **weak preservation at every level** — for each legality edge and
//!   each schedule dimension `k`, the system
//!   `edge ∧ δ₀ = 0 ∧ … ∧ δ_{k−1} = 0 ∧ δ_k ≤ −1` must have no integer
//!   point (no dependence instance is reordered at any level), where
//!   `δ_k = φ_dst(t) − φ_src(s)` at dimension `k`;
//! * **strict satisfaction at some level** — after equating every `δ_k`
//!   to zero the system must be empty: two dependent instances may never
//!   land on the *same* multidimensional timestamp.
//!
//! The oracle shares **no code path** with the scheduling engine's own
//! internal check: it builds its own `δ` expressions directly from
//! [`StmtRow`] coefficients (rather than the engine's `delta_expr` /
//! Farkas machinery) and decides emptiness with
//! [`Polyhedron::is_empty_integer`] — a branch-and-bound integer test —
//! where the engine uses rational relaxations. A solver bug, a memo-layer
//! collision, or a corrupt schedule-cache entry therefore has to fool two
//! independent decision procedures to slip through.
//!
//! `is_empty_integer` is conservative under budget exhaustion (it answers
//! "maybe non-empty"), so the oracle can only ever err on the side of
//! *rejecting* a legal schedule — it never certifies an illegal one.
//!
//! The `verify.legality` fault site (an [`FaultKind::Io`] fault) forces a
//! rejection so the degrade-to-fallback path can be exercised end to end.

use wf_deps::Ddg;
use wf_harness::fault::{self, FaultKind};
use wf_harness::obs;
use wf_polyhedra::Polyhedron;
use wf_schedule::transform::Schedule;
use wf_scop::Scop;

/// One legality violation the oracle found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending edge in `ddg.edges` (0 when the schedule
    /// itself is malformed or the rejection was fault-injected).
    pub edge: usize,
    /// Source statement name.
    pub src: String,
    /// Target statement name.
    pub dst: String,
    /// Schedule dimension at which the edge is reordered (`None` for
    /// never-strictly-satisfied, malformed or injected rejections).
    pub dim: Option<usize>,
    /// What went wrong: `reordered`, `unsatisfied`, `malformed-schedule`
    /// or `injected-fault`.
    pub kind: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dim {
            Some(d) => write!(
                f,
                "{} dependence {} -> {} at dimension {d}",
                self.kind, self.src, self.dst
            ),
            None => write!(f, "{} dependence {} -> {}", self.kind, self.src, self.dst),
        }
    }
}

/// The oracle's verdict over one `(DDG, schedule)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// How many legality edges were checked.
    pub checked_edges: usize,
    /// Every violation found (empty = legal).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Did the schedule pass?
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation rendered for error messages, or `"legal"`.
    #[must_use]
    pub fn summary(&self) -> String {
        self.violations
            .first()
            .map_or_else(|| "legal".to_string(), ToString::to_string)
    }
}

/// `φ_dst(t) − φ_src(s)` at one schedule dimension, as an affine expression
/// over the edge polyhedron's variables `(src iters…, dst iters…, params…, 1)`.
///
/// Deliberately re-derived here (the engine has its own version): the
/// schedule's per-statement rows carry iterator coefficients plus a
/// constant, and the edge polyhedron lays out source iterators first.
fn schedule_delta(
    schedule: &Schedule,
    dim: usize,
    src: usize,
    dst: usize,
    src_depth: usize,
    dst_depth: usize,
    n_vars: usize,
) -> Vec<i128> {
    let src_row = &schedule.rows[dim][src];
    let dst_row = &schedule.rows[dim][dst];
    let mut delta = vec![0i128; n_vars + 1];
    for (d, c) in delta.iter_mut().zip(&src_row.coeffs[..src_depth]) {
        *d -= *c;
    }
    for (d, c) in delta[src_depth..]
        .iter_mut()
        .zip(&dst_row.coeffs[..dst_depth])
    {
        *d += *c;
    }
    delta[n_vars] = dst_row.konst - src_row.konst;
    delta
}

/// Is the schedule well-formed for this SCoP (one row per statement per
/// dimension, each row's coefficient vector covering the statement's
/// depth)? A corrupt spill entry can violate this before any polyhedral
/// question even makes sense.
fn well_formed(scop: &Scop, schedule: &Schedule) -> bool {
    schedule.rows.iter().all(|dim_rows| {
        dim_rows.len() == scop.n_statements()
            && dim_rows
                .iter()
                .zip(&scop.statements)
                .all(|(row, s)| row.coeffs.len() == s.depth)
    })
}

/// Check one schedule against every legality edge of `ddg`; see the module
/// docs for the semantics. Never panics — a malformed schedule (wrong row
/// counts, truncated coefficient vectors) is reported as a violation.
#[must_use]
pub fn check_schedule(scop: &Scop, ddg: &Ddg, schedule: &Schedule) -> Report {
    let _span = wf_harness::span!("verify.legality", "scop" => scop.name.clone());
    // The oracle's emptiness tests go through the same budgeted ILP as the
    // scheduler, so label them for cost attribution: benchmark here, the
    // concrete edge and dimension inside the loop below.
    let _bench_label =
        wf_harness::attr::label_fmt(wf_harness::attr::Slot::Bench, || scop.name.clone());
    obs::add("verify.checks", 1);
    if fault::should_inject("verify.legality", FaultKind::Io) {
        obs::add("verify.rejects", 1);
        return Report {
            checked_edges: 0,
            violations: vec![Violation {
                edge: 0,
                src: String::new(),
                dst: String::new(),
                dim: None,
                kind: "injected-fault",
            }],
        };
    }
    if !well_formed(scop, schedule) {
        obs::add("verify.rejects", 1);
        return Report {
            checked_edges: 0,
            violations: vec![Violation {
                edge: 0,
                src: String::new(),
                dst: String::new(),
                dim: None,
                kind: "malformed-schedule",
            }],
        };
    }
    let mut violations = Vec::new();
    for (e, edge) in ddg.edges.iter().enumerate() {
        let nv = edge.poly.n_vars();
        let name = |s: usize| scop.statements[s].name.clone();
        let _unit_label = wf_harness::attr::label_fmt(wf_harness::attr::Slot::Unit, || {
            format!(
                "edge({}->{})",
                scop.statements[edge.src].name, scop.statements[edge.dst].name
            )
        });
        // Grow the "all earlier dimensions tie" prefix one level at a time.
        let mut prefix = edge.poly.cs.clone();
        let mut reordered = false;
        for dim in 0..schedule.n_dims() {
            let _dim_label =
                wf_harness::attr::label_fmt(wf_harness::attr::Slot::Dim, || dim.to_string());
            let delta = schedule_delta(
                schedule,
                dim,
                edge.src,
                edge.dst,
                edge.src_depth,
                edge.dst_depth,
                nv,
            );
            // Weak preservation: prefix ∧ δ ≤ −1 must hold no instance.
            let mut viol = prefix.clone();
            let mut le = delta.iter().map(|&c| -c).collect::<Vec<i128>>();
            le[nv] -= 1; // −δ − 1 ≥ 0  ⇔  δ ≤ −1
            viol.add_ge0(le);
            if !Polyhedron::from(viol).is_empty_integer() {
                violations.push(Violation {
                    edge: e,
                    src: name(edge.src),
                    dst: name(edge.dst),
                    dim: Some(dim),
                    kind: "reordered",
                });
                reordered = true;
                break;
            }
            prefix.add_eq0(delta);
        }
        // Strict satisfaction at some level: a dependence pair with a
        // fully-zero schedule distance would execute both instances at the
        // same timestamp. (Every edge relates *distinct* instances — a
        // self edge's polyhedron requires strict precedence — so ties are
        // illegal for self edges too.)
        if !reordered && !Polyhedron::from(prefix).is_empty_integer() {
            violations.push(Violation {
                edge: e,
                src: name(edge.src),
                dst: name(edge.dst),
                dim: None,
                kind: "unsatisfied",
            });
        }
    }
    if !violations.is_empty() {
        obs::add("verify.rejects", 1);
    }
    Report {
        checked_edges: ddg.edges.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_schedule::transform::{DimKind, StmtRow};
    use wf_scop::{Aff, Expr, ScopBuilder};

    // The fault switchboard is process-global and the runner is parallel:
    // the injection test below installs a rate=1000 plan for the
    // `verify.legality` site, which would fail every concurrent oracle
    // acceptance assertion — so each test in this module holds the gate.
    static FAULT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fault_gate() -> std::sync::MutexGuard<'static, ()> {
        FAULT_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// S0 writes A, S1 reads it: one loop-independent flow dependence.
    fn producer_consumer() -> Scop {
        let mut b = ScopBuilder::new("pc", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("C", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    /// The original-program-order schedule `(β₀, i)` for two depth-1
    /// statements with top-level betas `order`.
    fn beta_schedule(order: [i128; 2]) -> Schedule {
        let mut s = Schedule::new();
        s.push_dim(
            DimKind::Scalar,
            vec![StmtRow::scalar(1, order[0]), StmtRow::scalar(1, order[1])],
        );
        s.push_dim(
            DimKind::Loop,
            vec![
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
                StmtRow {
                    coeffs: vec![1],
                    konst: 0,
                },
            ],
        );
        s
    }

    #[test]
    fn accepts_program_order() {
        let _gate = fault_gate();
        let scop = producer_consumer();
        let ddg = wf_deps::analyze(&scop);
        assert!(!ddg.edges.is_empty(), "test needs a real dependence");
        let report = check_schedule(&scop, &ddg, &beta_schedule([0, 1]));
        assert!(report.is_legal(), "{:?}", report.violations);
        assert_eq!(report.checked_edges, ddg.edges.len());
    }

    #[test]
    fn refutes_reversed_order() {
        let _gate = fault_gate();
        // Consumer scheduled *before* producer: the flow dependence is
        // reordered at the leading scalar dimension and the oracle must
        // say so — this is the "can refute the optimizer" property.
        let scop = producer_consumer();
        let ddg = wf_deps::analyze(&scop);
        let report = check_schedule(&scop, &ddg, &beta_schedule([1, 0]));
        assert!(!report.is_legal());
        assert_eq!(report.violations[0].kind, "reordered");
        assert_eq!(report.violations[0].dim, Some(0));
    }

    #[test]
    fn refutes_timestamp_collision() {
        let _gate = fault_gate();
        // Both statements at beta 0 with identical loop rows: every
        // dependence pair with i_src = i_dst ties on the full timestamp.
        let scop = producer_consumer();
        let ddg = wf_deps::analyze(&scop);
        let report = check_schedule(&scop, &ddg, &beta_schedule([0, 0]));
        assert!(!report.is_legal());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "unsatisfied" && v.dim.is_none()));
    }

    #[test]
    fn flags_malformed_schedule() {
        let _gate = fault_gate();
        // A schedule with a truncated row set (what a corrupt spill entry
        // can decode into) must be rejected, not panicked on.
        let scop = producer_consumer();
        let ddg = wf_deps::analyze(&scop);
        let mut s = beta_schedule([0, 1]);
        s.rows[1].pop();
        let report = check_schedule(&scop, &ddg, &s);
        assert_eq!(report.violations[0].kind, "malformed-schedule");
    }

    #[test]
    fn injected_fault_forces_rejection() {
        let _gate = fault_gate();
        use wf_harness::fault::FaultPlan;
        let scop = producer_consumer();
        let ddg = wf_deps::analyze(&scop);
        fault::install(FaultPlan {
            site: Some("verify.legality".to_string()),
            ..FaultPlan::all(1, 1000)
        });
        let report = check_schedule(&scop, &ddg, &beta_schedule([0, 1]));
        fault::reset_to_env();
        assert!(!report.is_legal());
        assert_eq!(report.violations[0].kind, "injected-fault");
        // And with the plan gone the same schedule passes again.
        assert!(check_schedule(&scop, &ddg, &beta_schedule([0, 1])).is_legal());
    }
}
