//! Validated environment knobs for the verification layer.
//!
//! Same contract as `WF_THREADS` / `WF_CACHE_MAX_BYTES`: malformed values
//! are an *invalid request* ([`WfError::Invalid`], exit 2) detected up
//! front at CLI startup, never a silent fallback to a default mid-run —
//! a fuzz campaign that quietly ran with seed 0 because `WF_FUZZ_SEED`
//! had a typo would be worse than one that refused to start.
//!
//! * `WF_FUZZ_SEED` — base seed for `wfc fuzz` (u64; default 0). Seed `k`
//!   of an `N`-seed campaign is `base + k`, so campaigns with different
//!   bases explore disjoint-by-construction case streams.
//! * `WF_CHECK_LEGALITY` — `1`/`true` turns the independent legality
//!   oracle on for every emitted schedule (the `--check-legality` flag
//!   does the same per invocation); `0`/`false` is an explicit off.

use wf_harness::WfError;

/// Parse `WF_FUZZ_SEED` (default 0 when unset).
///
/// # Errors
/// [`WfError::Invalid`] when set to anything but a base-10 `u64`.
pub fn fuzz_seed_from_env() -> Result<u64, WfError> {
    match std::env::var("WF_FUZZ_SEED") {
        Err(_) => Ok(0),
        Ok(raw) => raw.trim().parse::<u64>().map_err(|_| {
            WfError::invalid(format!(
                "WF_FUZZ_SEED must be an unsigned 64-bit integer, got {raw:?}"
            ))
        }),
    }
}

/// Parse `WF_CHECK_LEGALITY` (`None` when unset).
///
/// # Errors
/// [`WfError::Invalid`] on anything but `0`, `1`, `true`, `false`.
pub fn check_legality_from_env() -> Result<Option<bool>, WfError> {
    match std::env::var("WF_CHECK_LEGALITY") {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim() {
            "1" | "true" => Ok(Some(true)),
            "0" | "false" => Ok(Some(false)),
            _ => Err(WfError::invalid(format!(
                "WF_CHECK_LEGALITY must be 0, 1, true or false, got {raw:?}"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The environment is process-global and the test runner is parallel:
    // serialize every mutation behind one lock and restore the prior value
    // on the way out.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_env<T>(key: &str, value: Option<&str>, f: impl FnOnce() -> T) -> T {
        let _g = ENV_LOCK.lock().unwrap();
        let saved = std::env::var(key).ok();
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        let out = f();
        match saved {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        out
    }

    #[test]
    fn seed_default_and_parse() {
        assert_eq!(with_env("WF_FUZZ_SEED", None, fuzz_seed_from_env), Ok(0));
        assert_eq!(
            with_env("WF_FUZZ_SEED", Some("2026"), fuzz_seed_from_env),
            Ok(2026)
        );
        assert!(matches!(
            with_env("WF_FUZZ_SEED", Some("-1"), fuzz_seed_from_env),
            Err(WfError::Invalid { .. })
        ));
        assert!(matches!(
            with_env("WF_FUZZ_SEED", Some("banana"), fuzz_seed_from_env),
            Err(WfError::Invalid { .. })
        ));
    }

    #[test]
    fn check_legality_values() {
        assert_eq!(
            with_env("WF_CHECK_LEGALITY", None, check_legality_from_env),
            Ok(None)
        );
        for on in ["1", "true"] {
            assert_eq!(
                with_env("WF_CHECK_LEGALITY", Some(on), check_legality_from_env),
                Ok(Some(true))
            );
        }
        for off in ["0", "false"] {
            assert_eq!(
                with_env("WF_CHECK_LEGALITY", Some(off), check_legality_from_env),
                Ok(Some(false))
            );
        }
        assert!(matches!(
            with_env("WF_CHECK_LEGALITY", Some("yes"), check_legality_from_env),
            Err(WfError::Invalid { .. })
        ));
    }
}
