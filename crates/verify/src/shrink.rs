//! Greedy reproducer minimization.
//!
//! Given a SCoP that trips some predicate (oracle rejection, executor
//! divergence, unstable round-trip), [`shrink`] repeatedly tries
//! structure-removing transformations — drop a statement, drop a read,
//! flatten a subscript offset, collapse the right-hand side, garbage-collect
//! unused arrays — keeping a candidate only when it still validates *and*
//! still fails the predicate. Passes run to a fixpoint, so the result is
//! locally minimal: no single remaining removal preserves the failure.
//!
//! The predicate is a black box (`&mut dyn FnMut`): the caller decides what
//! "still fails" means, typically by re-running the optimizer and oracle on
//! the candidate. Shrinking is worst-case quadratic in program size, which
//! is irrelevant at fuzzer scale (≤ 4 statements) but also fine for
//! hand-written reproducers an order of magnitude bigger.

use wf_scop::{Access, Expr, Scop};

/// Replace the statement's right-hand side with the plain sum of its loads
/// (or `1.0` when it has none) so read-list edits can't orphan a
/// `Load(k)`.
fn resum_rhs(n_reads: usize) -> Expr {
    Expr::sum((0..n_reads).map(Expr::Load).collect())
}

/// Candidate: remove statement `s`.
fn drop_stmt(scop: &Scop, s: usize) -> Option<Scop> {
    if scop.n_statements() < 2 {
        return None;
    }
    let mut c = scop.clone();
    c.statements.remove(s);
    Some(c)
}

/// Candidate: remove read `r` of statement `s`, rebuilding the RHS over
/// the surviving loads.
fn drop_read(scop: &Scop, s: usize, r: usize) -> Option<Scop> {
    if r >= scop.statements[s].reads.len() {
        return None;
    }
    let mut c = scop.clone();
    c.statements[s].reads.remove(r);
    c.statements[s].rhs = resum_rhs(c.statements[s].reads.len());
    Some(c)
}

/// Candidate: collapse a non-trivial RHS to the plain load sum.
fn simplify_rhs(scop: &Scop, s: usize) -> Option<Scop> {
    let plain = resum_rhs(scop.statements[s].reads.len());
    if scop.statements[s].rhs == plain {
        return None;
    }
    let mut c = scop.clone();
    c.statements[s].rhs = plain;
    Some(c)
}

/// Candidate: zero the constant term of one subscript row of one access
/// (`A[i+1]` → `A[i]`). Offsets are what turn loop-independent dependences
/// into carried ones, so this is the most effective single simplification
/// after whole-statement removal.
fn flatten_offset(scop: &Scop, s: usize, acc: usize, row: usize) -> Option<Scop> {
    let mut c = scop.clone();
    let st = &mut c.statements[s];
    let a: &mut Access = if acc == 0 {
        &mut st.write
    } else {
        &mut st.reads[acc - 1]
    };
    if row >= a.map.len() {
        return None;
    }
    let konst = a.map[row].last_mut().expect("affine rows are non-empty");
    if *konst == 0 {
        return None;
    }
    *konst = 0;
    Some(c)
}

/// Candidate: drop arrays no access mentions, remapping access indices.
fn gc_arrays(scop: &Scop) -> Option<Scop> {
    let mut used = vec![false; scop.arrays.len()];
    for st in &scop.statements {
        for (_, a) in st.accesses() {
            used[a.array] = true;
        }
    }
    if used.iter().all(|&u| u) {
        return None;
    }
    let mut remap = vec![usize::MAX; scop.arrays.len()];
    let mut next = 0usize;
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = next;
            next += 1;
        }
    }
    let mut c = scop.clone();
    c.arrays = scop
        .arrays
        .iter()
        .enumerate()
        .filter(|(i, _)| used[*i])
        .map(|(_, a)| a.clone())
        .collect();
    for st in &mut c.statements {
        st.write.array = remap[st.write.array];
        for r in &mut st.reads {
            r.array = remap[r.array];
        }
    }
    Some(c)
}

/// Greedily minimize `scop` while `still_fails` keeps returning `true`.
///
/// Candidates that no longer validate are discarded without consulting the
/// predicate, so the result is always a well-formed SCoP that the caller's
/// predicate rejected. The input itself is assumed to fail (callers check
/// before shrinking); the function returns the smallest failing program
/// found, which is the input when nothing could be removed.
pub fn shrink(scop: &Scop, still_fails: &mut dyn FnMut(&Scop) -> bool) -> Scop {
    let mut cur = scop.clone();
    let mut try_candidate = |cur: &mut Scop, cand: Option<Scop>| -> bool {
        match cand {
            Some(c) if c.validate().is_empty() && still_fails(&c) => {
                *cur = c;
                true
            }
            _ => false,
        }
    };
    loop {
        let mut progressed = false;
        // Statements, highest index first so removal doesn't shift the
        // ones we haven't tried yet.
        for s in (0..cur.n_statements()).rev() {
            let cand = drop_stmt(&cur, s);
            progressed |= try_candidate(&mut cur, cand);
        }
        for s in 0..cur.n_statements() {
            for r in (0..cur.statements[s].reads.len()).rev() {
                let cand = drop_read(&cur, s, r);
                progressed |= try_candidate(&mut cur, cand);
            }
            let cand = simplify_rhs(&cur, s);
            progressed |= try_candidate(&mut cur, cand);
            for acc in 0..=cur.statements[s].reads.len() {
                let rows = if acc == 0 {
                    cur.statements[s].write.map.len()
                } else {
                    cur.statements[s].reads[acc - 1].map.len()
                };
                for row in 0..rows {
                    let cand = flatten_offset(&cur, s, acc, row);
                    progressed |= try_candidate(&mut cur, cand);
                }
            }
        }
        let cand = gc_arrays(&cur);
        progressed |= try_candidate(&mut cur, cand);
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen_case;

    #[test]
    fn shrinks_to_predicate_minimum() {
        // Predicate "has at least 2 statements" must shrink any larger
        // case to exactly 2 statements with no reads and trivial bodies.
        for seed in 0..100u64 {
            let scop = gen_case(seed).scop;
            if scop.n_statements() < 2 {
                continue;
            }
            let small = shrink(&scop, &mut |s| s.n_statements() >= 2);
            assert_eq!(small.n_statements(), 2, "seed {seed}");
            assert!(small.statements.iter().all(|s| s.reads.is_empty()));
            assert!(small.validate().is_empty());
        }
    }

    #[test]
    fn never_returns_a_passing_program() {
        // Predicate that fails only SCoPs containing a read: the result
        // must still contain a read.
        for seed in 0..60u64 {
            let scop = gen_case(seed).scop;
            let has_read = |s: &Scop| s.statements.iter().any(|st| !st.reads.is_empty());
            if !has_read(&scop) {
                continue;
            }
            let small = shrink(&scop, &mut |s| has_read(s));
            assert!(has_read(&small), "seed {seed} shrank away the failure");
        }
    }

    #[test]
    fn fixpoint_on_already_minimal_input() {
        let scop = gen_case(7).scop;
        let keep_all = shrink(&scop, &mut |_| true);
        // With an always-failing predicate the shrinker bottoms out at one
        // trivial statement and stays there.
        assert_eq!(keep_all.n_statements(), 1);
        let again = shrink(&keep_all, &mut |_| true);
        assert_eq!(
            wf_scop::text::to_text(&again),
            wf_scop::text::to_text(&keep_all)
        );
    }
}
