//! Independent schedule-legality verification and structured fuzzing.
//!
//! The optimizer already checks its own schedules — but it checks them
//! with the same polyhedral library, the same `δ`-expression builder and
//! the same rational emptiness test it used to *construct* them, so a bug
//! in any shared layer silently certifies its own output. This crate is
//! the second opinion:
//!
//! * [`oracle`] — re-derives legality per dependence edge from first
//!   principles (own `δ` construction, integer emptiness tests), sharing
//!   no code path with the scheduling engine's ILP machinery. Wired into
//!   the pipeline as a graceful-degradation guardrail: a rejected schedule
//!   becomes `WfError::IllegalSchedule` (degradable to the
//!   original-program-order fallback, exit 9 under `--strict`).
//! * [`fuzz`] — maps SplitMix64 seeds to valid SCoPs (statement counts,
//!   nesting depths, affine access patterns and parameter ranges all
//!   drawn from the seed) for differential testing of the whole pipeline.
//! * [`shrink`] — greedy minimization of any SCoP that trips a predicate,
//!   for committing small reproducers to `tests/corpus/`.
//! * [`env`] — validated `WF_FUZZ_SEED` / `WF_CHECK_LEGALITY` parsing with
//!   the workspace's fail-fast exit-2 contract.
//!
//! The crate deliberately depends only on the representation layers
//! (`wf-scop`, `wf-deps`, `wf-schedule` types, `wf-polyhedra` emptiness):
//! it can pass judgment on anything that produces a [`Schedule`], including
//! entries deserialized from an on-disk schedule cache it has never seen
//! the producer of.
//!
//! [`Schedule`]: wf_schedule::transform::Schedule

pub mod env;
pub mod fuzz;
pub mod oracle;
pub mod shrink;

pub use env::{check_legality_from_env, fuzz_seed_from_env};
pub use fuzz::{gen_case, gen_case_with, FuzzCase, FuzzConfig};
pub use oracle::{check_schedule, Report, Violation};
pub use shrink::shrink;
