//! The structured SCoP fuzzer.
//!
//! [`gen_case`] maps a single [`SplitMix64`] seed to a *valid* SCoP: every
//! generated program passes [`Scop::validate`], has non-empty loops for
//! every parameter value the context admits, and keeps every array access
//! in bounds by construction (iterators range over `[lo, N−2]` with
//! `lo ≥ 1`, subscripts are `iterator + δ` with `δ ∈ {−1, 0, +1}`, arrays
//! have extent `N`). That lets downstream checks — schedule legality,
//! executor differential, text round-trip — attribute every failure to the
//! pipeline rather than to a malformed input.
//!
//! Determinism is the contract: the same seed yields a byte-identical SCoP
//! on every run, platform and thread count, because the only entropy
//! source is the harness's pinned [`SplitMix64`] stream. Corpus files and
//! fuzz reports can therefore be diffed across CI runs.

use wf_harness::SplitMix64;
use wf_scop::{Aff, Expr, Scop, ScopBuilder};

/// Shape knobs for the generator. The defaults are deliberately small:
/// legality is a per-edge property, so a 4-statement depth-2 SCoP already
/// exercises every interesting interleaving while keeping each seed's
/// optimizer run cheap enough for hundreds of seeds per CI campaign.
/// (Depth 3 is supported but not the default: a pair of fused depth-3
/// statements can push the scheduler's Farkas elimination into
/// minutes-per-seed territory — stress-test material, not CI material.)
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Maximum number of statements (≥ 1).
    pub max_stmts: usize,
    /// Maximum nesting depth (≥ 1; individual statements may still be
    /// depth 0 scalars with low probability).
    pub max_depth: usize,
    /// Maximum number of arrays (≥ 1).
    pub max_arrays: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            max_stmts: 4,
            max_depth: 2,
            max_arrays: 3,
        }
    }
}

/// One generated fuzz case: the SCoP plus a parameter value known to
/// satisfy its context (for executor differential runs).
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The seed this case was derived from.
    pub seed: u64,
    /// The generated program.
    pub scop: Scop,
    /// A context-satisfying value for the single parameter `N`.
    pub param_value: i128,
}

/// An in-bounds subscript for array dimension `d` of a statement with the
/// given depth: `iter + δ` with `δ ∈ {−1, 0, +1}` (depth-0 statements
/// index with the constant 1, in bounds because the context forces
/// `N ≥ 4`).
fn subscript(rng: &mut SplitMix64, d: usize, depth: usize) -> Aff {
    if depth == 0 {
        return Aff::konst(1);
    }
    let it = d.min(depth - 1);
    let delta = rng.gen_i128(-1, 2);
    Aff::iter(it) + delta
}

/// Generate the SCoP for one seed under the given shape config.
#[must_use]
pub fn gen_case_with(seed: u64, cfg: &FuzzConfig) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    let name = format!("fuzz-{seed}");
    let mut b = ScopBuilder::new(&name, &["N"]);
    // N ≥ nmin keeps every loop `[1, N−2]` non-empty and every `±1`
    // subscript inside the extent-N arrays.
    let nmin = rng.gen_i128(4, 9);
    b.context_ge(Aff::param(0) - nmin);

    let n_arrays = rng.gen_usize(1, cfg.max_arrays + 1);
    let mut arrays = Vec::with_capacity(n_arrays);
    for a in 0..n_arrays {
        let dims = rng.gen_usize(1, 3);
        let extents: Vec<Aff> = (0..dims).map(|_| Aff::param(0)).collect();
        arrays.push((b.array(&format!("A{a}"), &extents), dims));
    }

    let n_stmts = rng.gen_usize(1, cfg.max_stmts + 1);
    for s in 0..n_stmts {
        // Scalar statements are rare but legal; mostly we want loops.
        let depth = if rng.gen_below(8) == 0 {
            0
        } else {
            rng.gen_usize(1, cfg.max_depth + 1)
        };
        // `beta = [s, 0, …]`: unique, beta-lexicographically increasing.
        let mut beta = vec![0usize; depth + 1];
        beta[0] = s;
        let (wr, wr_dims) = arrays[rng.gen_usize(0, n_arrays)];
        let n_reads = rng.gen_usize(0, 3);

        let mut sb = b.stmt(&format!("S{s}"), depth, &beta);
        for k in 0..depth {
            // Occasionally triangular: `i_k ≥ i_{k−1}` instead of `≥ 1`.
            let lo = if k >= 1 && rng.gen_below(4) == 0 {
                Aff::iter(k - 1)
            } else {
                Aff::konst(1)
            };
            sb = sb.bounds(k, lo, Aff::param(0) - 2);
        }
        let wsubs: Vec<Aff> = (0..wr_dims)
            .map(|d| subscript(&mut rng, d, depth))
            .collect();
        sb = sb.write(wr, &wsubs);

        let mut loads = Vec::with_capacity(n_reads);
        for r in 0..n_reads {
            let (rd, rd_dims) = arrays[rng.gen_usize(0, n_arrays)];
            let rsubs: Vec<Aff> = (0..rd_dims)
                .map(|d| subscript(&mut rng, d, depth))
                .collect();
            sb = sb.read(rd, &rsubs);
            loads.push(Expr::Load(r));
        }
        let rhs = build_rhs(&mut rng, loads, depth);
        sb.rhs(rhs).done();
    }

    let scop = b.build();
    FuzzCase {
        seed,
        scop,
        param_value: nmin + 8,
    }
}

/// Generate the SCoP for one seed with the default shape.
#[must_use]
pub fn gen_case(seed: u64) -> FuzzCase {
    gen_case_with(seed, &FuzzConfig::default())
}

/// Fold the statement's loads into an arithmetic tree. Division and sqrt
/// are deliberately excluded: the differential check demands bit-identical
/// output, and we want every divergence to implicate the *schedule*, never
/// NaN poisoning from a generator-created `x/0`.
fn build_rhs(rng: &mut SplitMix64, loads: Vec<Expr>, depth: usize) -> Expr {
    let mut acc = match loads.first() {
        Some(_) => None,
        None if depth > 0 => Some(Expr::Iter(0)),
        None => Some(Expr::Const(1.0)),
    };
    for l in loads {
        acc = Some(match acc {
            None => l,
            Some(a) => match rng.gen_below(3) {
                0 => Expr::add(a, l),
                1 => Expr::sub(a, l),
                _ => Expr::mul(a, l),
            },
        });
    }
    let mut e = acc.expect("rhs always has a base term");
    if rng.gen_bool() {
        e = Expr::mul(e, Expr::Const(0.5));
    }
    if rng.gen_below(4) == 0 {
        e = Expr::add(e, Expr::Const(1.0));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_is_valid() {
        for seed in 0..200 {
            let case = gen_case(seed);
            let problems = case.scop.validate();
            assert!(problems.is_empty(), "seed {seed}: {problems:?}");
            assert!(
                case.scop.context.contains(&[case.param_value]),
                "seed {seed}: suggested parameter violates its own context"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(
                wf_scop::text::to_text(&a.scop),
                wf_scop::text::to_text(&b.scop),
                "seed {seed} not reproducible"
            );
        }
    }

    #[test]
    fn seeds_differ_from_each_other() {
        // Not a hard guarantee of SplitMix64, but if neighbouring seeds
        // collapsed to one program the fuzzer would be useless.
        let texts: std::collections::BTreeSet<String> = (0..50)
            .map(|s| wf_scop::text::to_text(&gen_case(s).scop))
            .collect();
        assert!(texts.len() > 40, "only {} distinct programs", texts.len());
    }

    #[test]
    fn cases_round_trip_through_text() {
        for seed in 0..50 {
            let scop = gen_case(seed).scop;
            let text = wf_scop::text::to_text(&scop);
            let back = wf_scop::text::parse(&text).expect("generated SCoP must re-parse");
            assert_eq!(
                text,
                wf_scop::text::to_text(&back),
                "seed {seed} round-trip not stable"
            );
        }
    }
}
