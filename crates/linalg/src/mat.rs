//! Dense rational matrices with exact Gaussian elimination.

use crate::rat::Rat;
use crate::{gcd_slice, lcm};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RatMat {
    /// An all-zero `rows x cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> RatMat {
        RatMat {
            rows,
            cols,
            data: vec![Rat::ZERO; rows * cols],
        }
    }

    /// The `n x n` identity.
    #[must_use]
    pub fn identity(n: usize) -> RatMat {
        let mut m = RatMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rat::ONE;
        }
        m
    }

    /// Build from integer rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_int_rows(rows: &[Vec<i128>]) -> RatMat {
        let ncols = rows.first().map_or(0, Vec::len);
        let mut m = RatMat::zeros(rows.len(), ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "RatMat: ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = Rat::int(v);
            }
        }
        m
    }

    /// Build from rational rows.
    #[must_use]
    pub fn from_rows(rows: &[Vec<Rat>]) -> RatMat {
        let ncols = rows.first().map_or(0, Vec::len);
        let mut m = RatMat::zeros(rows.len(), ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "RatMat: ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Rat] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product.
    #[must_use]
    pub fn mul_vec(&self, v: &[Rat]) -> Vec<Rat> {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Matrix-matrix product.
    #[must_use]
    pub fn mul_mat(&self, other: &RatMat) -> RatMat {
        assert_eq!(self.cols, other.rows, "mul_mat: dimension mismatch");
        let mut out = RatMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = a * other[(k, j)];
                    out[(i, j)] += prod;
                }
            }
        }
        out
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> RatMat {
        let mut t = RatMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// In-place reduction to **reduced row echelon form**; returns the list
    /// of pivot column indices (one per non-zero row, in order).
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Find a pivot in column c at or below row r.
            let Some(p) = (r..self.rows).find(|&i| !self[(i, c)].is_zero()) else {
                continue;
            };
            self.swap_rows(r, p);
            let inv = self[(r, c)].recip();
            for j in c..self.cols {
                let scaled = self[(r, j)] * inv;
                self[(r, j)] = scaled;
            }
            for i in 0..self.rows {
                if i != r && !self[(i, c)].is_zero() {
                    let f = self[(i, c)];
                    for j in c..self.cols {
                        let delta = f * self[(r, j)];
                        self[(i, j)] -= delta;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// Rank of the matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref().len()
    }

    /// Inverse of a square matrix, or `None` when singular.
    #[must_use]
    pub fn inverse(&self) -> Option<RatMat> {
        assert_eq!(self.rows, self.cols, "inverse: non-square matrix");
        let n = self.rows;
        let mut aug = RatMat::zeros(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, n + i)] = Rat::ONE;
        }
        let pivots = aug.rref();
        if pivots.len() != n || pivots.iter().enumerate().any(|(i, &p)| p != i) {
            return None;
        }
        let mut inv = RatMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                inv[(i, j)] = aug[(i, n + j)];
            }
        }
        Some(inv)
    }

    /// Solve `A x = b` for one solution, or `None` when inconsistent.
    ///
    /// When the system is under-determined, free variables are set to zero.
    #[must_use]
    pub fn solve(&self, b: &[Rat]) -> Option<Vec<Rat>> {
        assert_eq!(b.len(), self.rows, "solve: dimension mismatch");
        let mut aug = RatMat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, self.cols)] = b[i];
        }
        let pivots = aug.rref();
        // Inconsistent if any pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![Rat::ZERO; self.cols];
        for (r, &c) in pivots.iter().enumerate() {
            x[c] = aug[(r, self.cols)];
        }
        Some(x)
    }

    /// Integer-scaled basis of the null space (kernel) of the matrix.
    ///
    /// Each returned vector `v` satisfies `A v = 0`, has integer entries, and
    /// is primitive (gcd 1). The basis spans the rational kernel.
    #[must_use]
    pub fn kernel_basis(&self) -> Vec<Vec<i128>> {
        let mut m = self.clone();
        let pivots = m.rref();
        let is_pivot: Vec<bool> = {
            let mut v = vec![false; self.cols];
            for &p in &pivots {
                v[p] = true;
            }
            v
        };
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if is_pivot[free] {
                continue;
            }
            let mut v = vec![Rat::ZERO; self.cols];
            v[free] = Rat::ONE;
            for (r, &p) in pivots.iter().enumerate() {
                v[p] = -m[(r, free)];
            }
            basis.push(scale_to_integer(&v));
        }
        basis
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let tmp = self[(a, j)];
            self[(a, j)] = self[(b, j)];
            self[(b, j)] = tmp;
        }
    }
}

/// Scale a rational vector by the lcm of denominators to a primitive integer
/// vector.
#[must_use]
pub fn scale_to_integer(v: &[Rat]) -> Vec<i128> {
    let l = v.iter().fold(1i128, |acc, r| lcm(acc, r.den()));
    let mut out: Vec<i128> = v.iter().map(|r| r.num() * (l / r.den())).collect();
    let g = gcd_slice(&out);
    if g > 1 {
        for x in &mut out {
            *x /= g;
        }
    }
    out
}

impl Index<(usize, usize)> for RatMat {
    type Output = Rat;
    fn index(&self, (i, j): (usize, usize)) -> &Rat {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rat {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_harness::prelude::*;

    #[test]
    fn identity_and_mul() {
        let i3 = RatMat::identity(3);
        let a = RatMat::from_int_rows(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 10]]);
        assert_eq!(i3.mul_mat(&a), a);
        assert_eq!(a.mul_mat(&i3), a);
    }

    #[test]
    fn mul_vec_basic() {
        let a = RatMat::from_int_rows(&[vec![1, 2], vec![3, 4]]);
        let v = vec![Rat::int(5), Rat::int(6)];
        assert_eq!(a.mul_vec(&v), vec![Rat::int(17), Rat::int(39)]);
    }

    #[test]
    fn rank_detects_dependence() {
        let a = RatMat::from_int_rows(&[vec![1, 2], vec![2, 4]]);
        assert_eq!(a.rank(), 1);
        let b = RatMat::from_int_rows(&[vec![1, 0], vec![0, 1]]);
        assert_eq!(b.rank(), 2);
        let z = RatMat::zeros(3, 3);
        assert_eq!(z.rank(), 0);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = RatMat::from_int_rows(&[vec![2, 1], vec![1, 1]]);
        let inv = a.inverse().expect("invertible");
        assert_eq!(a.mul_mat(&inv), RatMat::identity(2));
        assert_eq!(inv.mul_mat(&a), RatMat::identity(2));
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let a = RatMat::from_int_rows(&[vec![1, 2], vec![2, 4]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn solve_consistent() {
        let a = RatMat::from_int_rows(&[vec![2, 0], vec![0, 4]]);
        let x = a.solve(&[Rat::int(6), Rat::int(8)]).expect("solvable");
        assert_eq!(x, vec![Rat::int(3), Rat::int(2)]);
    }

    #[test]
    fn solve_inconsistent_is_none() {
        let a = RatMat::from_int_rows(&[vec![1, 1], vec![1, 1]]);
        assert!(a.solve(&[Rat::int(1), Rat::int(2)]).is_none());
    }

    #[test]
    fn solve_underdetermined_sets_free_to_zero() {
        let a = RatMat::from_int_rows(&[vec![1, 1]]);
        let x = a.solve(&[Rat::int(5)]).expect("solvable");
        assert_eq!(a.mul_vec(&x), vec![Rat::int(5)]);
    }

    #[test]
    fn kernel_basis_spans_null_space() {
        let a = RatMat::from_int_rows(&[vec![1, 1, 0], vec![0, 0, 1]]);
        let basis = a.kernel_basis();
        assert_eq!(basis.len(), 1);
        let v: Vec<Rat> = basis[0].iter().map(|&x| Rat::int(x)).collect();
        assert_eq!(a.mul_vec(&v), vec![Rat::ZERO, Rat::ZERO]);
    }

    #[test]
    fn kernel_of_full_rank_is_empty() {
        let a = RatMat::identity(3);
        assert!(a.kernel_basis().is_empty());
    }

    #[test]
    fn scale_to_integer_primitive() {
        let v = vec![Rat::new(1, 2), Rat::new(1, 3)];
        assert_eq!(scale_to_integer(&v), vec![3, 2]);
        let w = vec![Rat::int(4), Rat::int(6)];
        assert_eq!(scale_to_integer(&w), vec![2, 3]);
    }

    #[test]
    fn transpose_involution() {
        let a = RatMat::from_int_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = RatMat> {
        collection::vec(collection::vec(-5i128..6, cols), rows)
            .prop_map(|rows| RatMat::from_int_rows(&rows))
    }

    props! {
        #[test]
        fn prop_kernel_vectors_are_in_null_space(a in arb_mat(3, 5)) {
            for v in a.kernel_basis() {
                let rv: Vec<Rat> = v.iter().map(|&x| Rat::int(x)).collect();
                let out = a.mul_vec(&rv);
                prop_assert!(out.iter().all(|r| r.is_zero()));
            }
        }

        #[test]
        fn prop_rank_nullity(a in arb_mat(4, 4)) {
            prop_assert_eq!(a.rank() + a.kernel_basis().len(), a.cols());
        }

        #[test]
        fn prop_solve_produces_solution(a in arb_mat(3, 3), xs in collection::vec(-5i128..6, 3)) {
            let x: Vec<Rat> = xs.iter().map(|&v| Rat::int(v)).collect();
            let b = a.mul_vec(&x);
            // A solution must exist (x is one); check the one returned works.
            let sol = a.solve(&b).expect("consistent by construction");
            prop_assert_eq!(a.mul_vec(&sol), b);
        }

        #[test]
        fn prop_inverse_roundtrip(a in arb_mat(3, 3)) {
            if let Some(inv) = a.inverse() {
                prop_assert_eq!(a.mul_mat(&inv), RatMat::identity(3));
            } else {
                prop_assert!(a.rank() < 3);
            }
        }
    }
}
