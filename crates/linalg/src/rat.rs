//! `i128`-backed exact rational numbers.

use crate::gcd;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) == 1`.
///
/// All arithmetic is overflow-checked; the polyhedral problems in this
/// project are small enough that `i128` never overflows in practice, and if
/// it ever does we want a loud panic, not a silently wrong loop transform.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Create `num/den`, normalizing sign and gcd.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat: zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g > 1 {
            (num / g, den / g)
        } else {
            (num, den)
        };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The integer `n` as a rational.
    #[must_use]
    pub const fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub const fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub const fn den(self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0 or 1.
    #[must_use]
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat: reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The value as an `i128`, if it is an integer.
    #[must_use]
    pub fn to_integer(self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Lossy conversion to `f64` (for reporting only — never for decisions).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_mul_i(a: i128, b: i128) -> i128 {
        a.checked_mul(b).expect("Rat: multiplication overflow")
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Rat {
        Rat::int(n as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Cross-reduce first to tame intermediate growth.
        let g = gcd(self.den, rhs.den);
        let (d1, d2) = (self.den / g, rhs.den / g);
        let num = Rat::checked_mul_i(self.num, d2)
            .checked_add(Rat::checked_mul_i(rhs.num, d1))
            .expect("Rat: addition overflow");
        let den = Rat::checked_mul_i(self.den, d2);
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-cancel before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Rat::checked_mul_i(self.num / g1, rhs.num / g2);
        let den = Rat::checked_mul_i(self.den / g2, rhs.den / g1);
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 invariant makes cross-multiplication order-preserving.
        let l = Rat::checked_mul_i(self.num, other.den);
        let r = Rat::checked_mul_i(other.num, self.den);
        l.cmp(&r)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl std::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_harness::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert!(Rat::new(-3, 2) < Rat::new(-1, 1));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
        assert_eq!(Rat::new(-1, 3).floor(), -1);
        assert_eq!(Rat::new(-1, 3).ceil(), 0);
    }

    #[test]
    fn recip_and_integrality() {
        assert_eq!(Rat::new(2, 3).recip(), Rat::new(3, 2));
        assert!(Rat::int(4).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert_eq!(Rat::new(8, 4).to_integer(), Some(2));
        assert_eq!(Rat::new(1, 2).to_integer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn sum_iterator() {
        let s: Rat = [Rat::new(1, 2), Rat::new(1, 3), Rat::new(1, 6)]
            .into_iter()
            .sum();
        assert_eq!(s, Rat::ONE);
    }

    fn arb_rat() -> impl Strategy<Value = Rat> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rat::new(n, d))
    }

    props! {
        #[test]
        fn prop_add_commutative(a in arb_rat(), b in arb_rat()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_inverse(a in arb_rat(), b in arb_rat()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_div_inverse(a in arb_rat(), b in arb_rat()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a * b / b, a);
        }

        #[test]
        fn prop_normalized(a in arb_rat()) {
            prop_assert!(a.den() > 0);
            prop_assert_eq!(crate::gcd(a.num(), a.den()), if a.is_zero() { a.den() } else { 1 });
        }

        #[test]
        fn prop_floor_ceil_bracket(a in arb_rat()) {
            prop_assert!(Rat::int(a.floor()) <= a);
            prop_assert!(a <= Rat::int(a.ceil()));
            prop_assert!(a.ceil() - a.floor() <= 1);
        }

        #[test]
        fn prop_order_total(a in arb_rat(), b in arb_rat()) {
            let by_sub = (a - b).signum();
            let by_cmp = match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            prop_assert_eq!(by_sub, by_cmp);
        }
    }
}
