//! Exact rational arithmetic and dense linear algebra.
//!
//! This crate is the numeric foundation of the wisefuse polyhedral stack.
//! Every computation in the stack — Fourier–Motzkin elimination, the simplex
//! method, Farkas-multiplier elimination, schedule inversion — must be exact:
//! floating point is never acceptable because legality of a loop transform
//! hinges on exact sign tests. We therefore provide
//!
//! * [`Rat`], an `i128`-backed rational with overflow-checked, always
//!   gcd-normalized arithmetic,
//! * integer helpers ([`gcd`], [`lcm`], [`normalize_row`]) used to keep
//!   constraint rows primitive,
//! * [`RatMat`], a dense rational matrix with Gaussian elimination, rank,
//!   reduced row echelon form, inversion, linear solving and integer-scaled
//!   kernel (null-space) bases.
//!
//! The polyhedra in this project are small (loop depths ≤ 4, dozens of
//! constraints), so `i128` headroom is ample; all arithmetic panics loudly on
//! overflow rather than silently wrapping.

#![allow(clippy::needless_range_loop)] // index-style is clearer for matrix/tableau code
#![warn(missing_docs)]

pub mod mat;
pub mod rat;

pub use mat::RatMat;
pub use rat::Rat;

/// Greatest common divisor of two integers; `gcd(0, 0) == 0`.
///
/// Always returns a non-negative value.
#[must_use]
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i128::try_from(a).expect("gcd overflow")
}

/// Least common multiple; `lcm(0, x) == 0`.
#[must_use]
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// GCD of a slice; 0 for an all-zero (or empty) slice.
#[must_use]
pub fn gcd_slice(xs: &[i128]) -> i128 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Divide a constraint row by the gcd of its entries, making it primitive.
///
/// A row of all zeros is left untouched. This keeps Fourier–Motzkin
/// coefficient growth polynomial rather than exponential in practice.
pub fn normalize_row(row: &mut [i128]) {
    let g = gcd_slice(row);
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

/// Exact dot product of two equally-long integer vectors.
///
/// # Panics
/// Panics if the lengths differ or the result overflows `i128`.
#[must_use]
pub fn dot(a: &[i128], b: &[i128]) -> i128 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc: i128 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc
            .checked_add(x.checked_mul(y).expect("dot overflow"))
            .expect("dot overflow");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(i128::MIN + 1, 1), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[6, 9, 15]), 3);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[-4, 8, 12]), 4);
    }

    #[test]
    fn normalize_row_divides_by_gcd() {
        let mut r = vec![6, -9, 15];
        normalize_row(&mut r);
        assert_eq!(r, vec![2, -3, 5]);
        let mut z = vec![0, 0];
        normalize_row(&mut z);
        assert_eq!(z, vec![0, 0]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), 32);
        assert_eq!(dot(&[], &[]), 0);
        assert_eq!(dot(&[-1, 1], &[1, 1]), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1], &[1, 2]);
    }
}
