//! The icc-like baseline model.
//!
//! The paper's base case is the Intel compiler with `-O3 -parallel`. Its
//! observed behaviour on these benchmarks (§5.3):
//!
//! * it "largely maintains the original program order and doesn't
//!   accomplish any fusion" across nests of different dimensionality
//!   (pair-wise fusion refuses dimension mismatches), and for the large
//!   codes effectively no fusion at all;
//! * it auto-parallelizes rectangular outer loops but "adopts a conservative
//!   approach" and declines non-rectangular iteration spaces (e.g. `lu`).
//!
//! We model this as: the identity (original program order) schedule, plus a
//! parallelization predicate that requires both dependence-freedom *and*
//! rectangularity.

use wf_deps::{tarjan, Ddg};
use wf_schedule::pluto::{compute_satisfaction, Transformed};
use wf_schedule::transform::{DimKind, Schedule, StmtRow};
use wf_scop::Scop;

/// Build the original-program-order schedule in 2d+1 form:
/// `(β0, i1, β1, i2, β2, …)`, padded for shallower statements.
#[must_use]
pub fn icc_schedule(scop: &Scop, ddg: &Ddg) -> Transformed {
    let max_depth = scop.statements.iter().map(|s| s.depth).max().unwrap_or(0);
    let mut schedule = Schedule::new();
    for level in 0..=max_depth {
        // Scalar dimension: beta position at this level.
        let rows: Vec<StmtRow> = scop
            .statements
            .iter()
            .map(|s| StmtRow::scalar(s.depth, *s.beta.get(level).unwrap_or(&0) as i128))
            .collect();
        schedule.push_dim(DimKind::Scalar, rows);
        if level == max_depth {
            break;
        }
        // Loop dimension: iterator `level` (identity), zero row for
        // statements that are too shallow.
        let rows: Vec<StmtRow> = scop
            .statements
            .iter()
            .map(|s| {
                let mut coeffs = vec![0i128; s.depth];
                if level < s.depth {
                    coeffs[level] = 1;
                }
                StmtRow { coeffs, konst: 0 }
            })
            .collect();
        schedule.push_dim(DimKind::Loop, rows);
    }
    let sat_dim = compute_satisfaction(ddg, &schedule);
    let sccs = tarjan(ddg);
    let scc_order = (0..sccs.len()).collect();
    let partitions = schedule.top_level_partitions();
    // Each original loop is its own (trivial) band: icc makes no
    // permutability claims.
    let mut band = 0usize;
    let band_of_dim = schedule
        .dims
        .iter()
        .map(|k| match k {
            DimKind::Loop => {
                band += 1;
                Some(band - 1)
            }
            DimKind::Scalar => None,
        })
        .collect();
    Transformed {
        schedule,
        sat_dim,
        sccs,
        scc_order,
        partitions,
        strategy: "icc".into(),
        band_of_dim,
    }
}

/// Does the icc model dare to parallelize this statement's nest?
/// Conservative rectangularity test: every domain constraint may involve at
/// most one iterator (no triangular/skewed bounds).
#[must_use]
pub fn is_rectangular(scop: &Scop, stmt: usize) -> bool {
    let s = &scop.statements[stmt];
    s.domain
        .constraints
        .iter()
        .all(|c| c.coeffs[..s.depth].iter().filter(|&&v| v != 0).count() <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_deps::analyze;
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn two_nests() -> Scop {
        let mut b = ScopBuilder::new("t", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("B", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        b.build()
    }

    #[test]
    fn icc_keeps_original_order_and_distribution() {
        let scop = two_nests();
        let ddg = analyze(&scop);
        let t = icc_schedule(&scop, &ddg);
        assert_eq!(t.partitions, vec![0, 1], "icc does not fuse");
        // Instance (i) of S0 maps to (0, i, 0); of S1 to (1, i, 0).
        assert_eq!(t.schedule.apply(0, &[5]), vec![0, 5, 0]);
        assert_eq!(t.schedule.apply(1, &[5]), vec![1, 5, 0]);
    }

    #[test]
    fn icc_satisfaction_via_scalar_dim() {
        let scop = two_nests();
        let ddg = analyze(&scop);
        let t = icc_schedule(&scop, &ddg);
        // The flow dep S0 -> S1 is satisfied by the leading scalar dim.
        assert!(t.sat_dim.iter().all(|d| *d == Some(0)), "{:?}", t.sat_dim);
    }

    #[test]
    fn rectangularity_test() {
        let mut b = ScopBuilder::new("tri", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::iter(0), Aff::param(0) - 1) // triangular
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(0.0))
            .done();
        b.stmt("S1", 2, &[1, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1) // rectangular
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(0.0))
            .done();
        let scop = b.build();
        assert!(!is_rectangular(&scop, 0));
        assert!(is_rectangular(&scop, 1));
    }

    #[test]
    fn icc_handles_mixed_depths() {
        let mut b = ScopBuilder::new("mix", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let r = b.array("r", &[Aff::param(0)]);
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Const(1.0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(r, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0), Aff::zero()])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let t = icc_schedule(&scop, &ddg);
        // 2d+1 for max depth 2: (β0, i, β1, j, β2).
        assert_eq!(t.schedule.n_dims(), 5);
        assert_eq!(t.schedule.apply(0, &[3, 4]), vec![0, 3, 0, 4, 0]);
        assert_eq!(t.schedule.apply(1, &[3]), vec![1, 3, 0, 0, 0]);
        assert_eq!(t.partitions, vec![0, 1]);
    }
}
