//! The one-pass [`Optimizer`] facade.
//!
//! [`optimize`](crate::optimize) re-runs exact polyhedral dependence
//! analysis — by far the most expensive reusable step of the pipeline —
//! every time it is called, so drivers that schedule the same SCoP under
//! all five fusion models (the `wfc compare` loop, the figure harnesses,
//! iterative search) used to pay for it five times. `Optimizer` is a
//! builder over one SCoP that computes the [`Ddg`] **once**, caches it,
//! and schedules any number of models against clones of it:
//!
//! ```
//! use wf_scop::{Aff, Expr, ScopBuilder};
//! use wf_wisefuse::{Model, Optimizer};
//!
//! let mut b = ScopBuilder::new("ex", &["N"]);
//! b.context_ge(Aff::param(0) - 4);
//! let a = b.array("A", &[Aff::param(0)]);
//! b.stmt("S0", 1, &[0, 0])
//!     .bounds(0, Aff::zero(), Aff::param(0) - 1)
//!     .write(a, &[Aff::iter(0)])
//!     .rhs(Expr::Const(1.0))
//!     .done();
//! let scop = b.build();
//!
//! // One model, builder style:
//! let opt = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
//! assert_eq!(opt.model, Model::Wisefuse);
//!
//! // All five models, dependence analysis performed once and the models
//! // scheduled concurrently on the worker pool:
//! let runs = Optimizer::new(&scop).run_all();
//! assert_eq!(runs.len(), Model::ALL.len());
//! ```
//!
//! Two more layers sit behind the facade:
//!
//! * **Parallel model scheduling.** The five models are independent given
//!   the shared DDG, so [`run_all`](Optimizer::run_all) distributes them
//!   over the shared [`pool::global`](wf_harness::pool::global) thread
//!   pool via [`ThreadPool::try_scope`](wf_harness::ThreadPool::try_scope).
//!   The worker count defaults to the pool's size (`WF_THREADS`, parsed
//!   once at pool construction) and can be pinned with
//!   [`threads`](Optimizer::threads); `1` runs serially inline. Results
//!   are returned in [`Model::ALL`] order regardless of completion order,
//!   and are **byte-identical** to the serial path.
//! * **Schedule memoization.** Each model's scheduling step is looked up
//!   in the process-wide [`cache`](crate::cache), keyed by a stable
//!   `(SCoP canonical text, model, config)` fingerprint; the ILP only
//!   runs on a miss. [`cache_off`](Optimizer::cache_off) bypasses it
//!   (timing harnesses that must measure the cold path use this).
//!
//! The same shape appears in Polly's scheduler integration and Pluto+'s
//! fusion/permutation driver: a reusable analysis object with a one-call
//! driver on top, so strategy exploration never repeats the analysis.

use crate::cache::{self, Fingerprint};
use crate::pipeline::{self, Model, Optimized};
use wf_deps::{analyze, Ddg};
use wf_harness::{fault, pool, WfError};
use wf_schedule::PlutoConfig;
use wf_scop::Scop;

/// Builder-style driver over one SCoP; see the module docs.
#[derive(Clone, Debug)]
pub struct Optimizer<'a> {
    scop: &'a Scop,
    model: Model,
    config: PlutoConfig,
    ddg: Option<Ddg>,
    /// Worker count for `run_all`; `None` defers to `WF_THREADS`.
    threads: Option<usize>,
    /// Consult/populate the process-wide schedule cache?
    use_cache: bool,
    /// Degrade budget/panic failures to the original-program-order
    /// fallback schedule instead of surfacing the error?
    fallback: bool,
    /// Run every emitted schedule (cache hits included) through the
    /// independent legality oracle?
    check_legality: bool,
    /// Memoized canonical-text digest of `scop`.
    scop_hash: Option<u64>,
}

impl<'a> Optimizer<'a> {
    /// Start a pipeline over `scop`. Defaults: [`Model::Wisefuse`],
    /// [`PlutoConfig::default`], dependence analysis deferred until first
    /// needed, schedule cache on, `run_all` parallelism from `WF_THREADS`.
    #[must_use]
    pub fn new(scop: &'a Scop) -> Optimizer<'a> {
        Optimizer {
            scop,
            model: Model::Wisefuse,
            config: PlutoConfig::default(),
            ddg: None,
            threads: None,
            use_cache: true,
            fallback: false,
            check_legality: false,
            scop_hash: None,
        }
    }

    /// The SCoP this facade drives (handy for helpers that are handed only
    /// the optimizer).
    #[must_use]
    pub fn scop(&self) -> &'a Scop {
        self.scop
    }

    /// Select the fusion model [`run`](Optimizer::run) will schedule.
    #[must_use]
    pub fn model(mut self, model: Model) -> Optimizer<'a> {
        self.model = model;
        self
    }

    /// Override the scheduling-engine tunables.
    #[must_use]
    pub fn config(mut self, config: PlutoConfig) -> Optimizer<'a> {
        self.config = config;
        self
    }

    /// Pin the worker count [`run_all`](Optimizer::run_all) uses (instead
    /// of the `WF_THREADS` default). `1` is the serial fallback: models
    /// are scheduled inline on the calling thread, no workers spawned.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Optimizer<'a> {
        self.threads = Some(threads.max(1));
        self
    }

    /// Bypass the process-wide schedule cache: every run re-solves the
    /// ILP. For timing harnesses that must observe the cold path.
    #[must_use]
    pub fn cache_off(mut self) -> Optimizer<'a> {
        self.use_cache = false;
        self
    }

    /// Degrade recoverable failures (ILP budget exhaustion, a worker-job
    /// panic, a dead-end schedule search) to the documented fallback: the
    /// original-program-order schedule with no fusion, exactly what the
    /// icc baseline model computes. The substitution is recorded in
    /// [`Optimized::degraded`] and never written to the schedule cache.
    /// Parse/I-O/usage errors are *not* degradable and still surface.
    #[must_use]
    pub fn fallback(mut self) -> Optimizer<'a> {
        self.fallback = true;
        self
    }

    /// Gate every emitted schedule behind the independent legality oracle
    /// ([`wf_verify::check_schedule`]): each dependence edge must be
    /// weakly preserved at every schedule level and strictly satisfied at
    /// some level, decided by the oracle's own delta construction and
    /// integer emptiness tests — none of the scheduling engine's code.
    /// The check covers **every** path a schedule can arrive by, including
    /// in-memory cache hits and entries deserialized from the on-disk
    /// spill, so a corrupted or stale cache entry is caught before it
    /// reaches codegen. A rejection surfaces as
    /// [`WfError::IllegalSchedule`] — degradable, so combined with
    /// [`fallback`](Optimizer::fallback) the pipeline substitutes the
    /// original-program-order schedule instead of failing. The fallback
    /// schedule itself is not re-checked: it is trivially legal by
    /// construction (the property suite proves it against the oracle), and
    /// re-checking would turn an injected `verify.legality` fault into an
    /// unbreakable rejection loop.
    #[must_use]
    pub fn check_legality(mut self, on: bool) -> Optimizer<'a> {
        self.check_legality = on;
        self
    }

    /// Inject an already-computed dependence graph (e.g. shared with a
    /// cache simulator), skipping the analysis entirely.
    #[must_use]
    pub fn with_ddg(mut self, ddg: Ddg) -> Optimizer<'a> {
        self.ddg = Some(ddg);
        self
    }

    /// The dependence graph, computing and caching it on first call.
    pub fn ddg(&mut self) -> &Ddg {
        if self.ddg.is_none() {
            self.ddg = Some(analyze(self.scop));
        }
        self.ddg.as_ref().expect("just populated")
    }

    /// Cache fingerprint for `model` under the current config, or `None`
    /// when caching is off.
    fn fingerprint(&mut self, model: Model) -> Option<Fingerprint> {
        if !self.use_cache {
            return None;
        }
        let scop = *self
            .scop_hash
            .get_or_insert_with(|| cache::scop_fingerprint(self.scop));
        Some(Fingerprint {
            scop,
            model,
            config: cache::config_fingerprint(&self.config),
        })
    }

    /// Schedule the selected model, consuming the builder. Equivalent to
    /// [`optimize_with`](crate::optimize_with) but reuses an injected DDG.
    pub fn run(mut self) -> Result<Optimized, WfError> {
        let model = self.model;
        self.run_model(model)
    }

    /// Schedule one specific model against the cached dependence graph.
    /// Call repeatedly to explore models; analysis still happens once.
    pub fn run_model(&mut self, model: Model) -> Result<Optimized, WfError> {
        let key = self.fingerprint(model);
        let (fallback, check) = (self.fallback, self.check_legality);
        self.ddg();
        let ddg = self.ddg.as_ref().expect("cached by ddg()");
        degrade(
            run_one(self.scop, ddg, model, &self.config, key, check),
            fallback,
            self.scop,
            ddg,
            model,
        )
    }

    /// Schedule **all five** fusion models of Table 1 against one shared
    /// dependence analysis, concurrently on up to
    /// [`threads`](Optimizer::threads) workers (default `WF_THREADS`), in
    /// [`Model::ALL`] reporting order. Individual models may fail to
    /// schedule — or their worker job may *panic* — without poisoning the
    /// rest: a panicking job surfaces as that model's
    /// [`WfError::JobPanic`] slot (or its fallback schedule under
    /// [`fallback`](Optimizer::fallback)) while every other model's result
    /// is unaffected. The result is identical to calling
    /// [`run_model`](Optimizer::run_model) serially per model — worker
    /// count cannot influence schedules.
    pub fn run_all(&mut self) -> Vec<(Model, Result<Optimized, WfError>)> {
        let mut _span = wf_harness::span!("optimizer.run_all", "scop" => self.scop.name.clone());
        let threads = self
            .threads
            .unwrap_or_else(|| pool::global().n_threads())
            .min(Model::ALL.len());
        let keys: Vec<Option<Fingerprint>> = Model::ALL
            .into_iter()
            .map(|m| self.fingerprint(m))
            .collect();
        let (fallback, check) = (self.fallback, self.check_legality);
        self.ddg();
        let ddg = self.ddg.as_ref().expect("cached by ddg()");
        let (scop, config) = (self.scop, &self.config);
        let slots = pool::global().try_scope(threads, Model::ALL.len(), |i| {
            fault::maybe_panic("optimizer.model_job");
            let m = Model::ALL[i];
            (m, run_one(scop, ddg, m, config, keys[i], check))
        });
        Model::ALL
            .into_iter()
            .zip(slots)
            .map(|(m, slot)| {
                let r = match slot {
                    Ok((m2, r)) => {
                        debug_assert_eq!(m, m2, "slot order is submission order");
                        r
                    }
                    Err(panicked) => Err(WfError::from(panicked)),
                };
                (m, degrade(r, fallback, scop, ddg, m))
            })
            .collect()
    }
}

/// Apply the degradation policy: under `fallback`, replace a degradable
/// error with the original-program-order schedule (annotated, uncached).
fn degrade(
    r: Result<Optimized, WfError>,
    fallback: bool,
    scop: &Scop,
    ddg: &Ddg,
    model: Model,
) -> Result<Optimized, WfError> {
    match r {
        Err(e) if fallback && e.is_degradable() => Ok(fallback_optimized(scop, ddg, model, &e)),
        other => other,
    }
}

/// The documented degradation fallback: the original-program-order,
/// no-fusion schedule (what the icc baseline model computes), which is
/// infallible and trivially legal. `degraded` records why it was
/// substituted; the result is never written to the schedule cache.
fn fallback_optimized(scop: &Scop, ddg: &Ddg, model: Model, cause: &WfError) -> Optimized {
    wf_harness::obs::add("optimizer.degraded", 1);
    let transformed = crate::icc::icc_schedule(scop, ddg);
    let props = pipeline::analyze_props(scop, ddg, model, &transformed);
    Optimized {
        model,
        ddg: ddg.clone(),
        transformed,
        props,
        degraded: Some(format!(
            "{} degraded to original program order: {cause}",
            model.name()
        )),
    }
}

/// Schedule one model (through the cache when `key` is set) and analyze
/// its loop properties. Free function so `run_all`'s workers can share it
/// with the serial `run_model` path — determinism by construction.
///
/// With `check_legality` the emitted schedule — freshly solved *or* pulled
/// from the cache — is judged by the independent oracle before any
/// property analysis; a rejection is a degradable
/// [`WfError::IllegalSchedule`].
fn run_one(
    scop: &Scop,
    ddg: &Ddg,
    model: Model,
    config: &PlutoConfig,
    key: Option<Fingerprint>,
    check_legality: bool,
) -> Result<Optimized, WfError> {
    let schedule = |scop, ddg, model, config| -> Result<_, WfError> {
        Ok(pipeline::schedule_model(scop, ddg, model, config)?)
    };
    let transformed = match key {
        Some(k) => match cache::global_lookup(&k) {
            Some(t) => t,
            None => {
                let t = schedule(scop, ddg, model, config)?;
                cache::global_insert(k, &t);
                t
            }
        },
        None => schedule(scop, ddg, model, config)?,
    };
    if check_legality {
        let report = wf_verify::check_schedule(scop, ddg, &transformed.schedule);
        if !report.is_legal() {
            return Err(WfError::IllegalSchedule {
                model: model.name().to_string(),
                detail: report.summary(),
            });
        }
    }
    let props = pipeline::analyze_props(scop, ddg, model, &transformed);
    Ok(Optimized {
        model,
        ddg: ddg.clone(),
        transformed,
        props,
        degraded: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn two_stmt_scop() -> Scop {
        let mut b = ScopBuilder::new("facade", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("C", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::mul(Expr::Load(0), Expr::Const(2.0)))
            .done();
        b.build()
    }

    #[test]
    fn facade_matches_wrapper() {
        let scop = two_stmt_scop();
        for model in Model::ALL {
            let via_facade = Optimizer::new(&scop)
                .model(model)
                .run()
                .expect("schedulable");
            let via_wrapper = crate::optimize(&scop, model).expect("schedulable");
            assert_eq!(
                via_facade.transformed.schedule, via_wrapper.transformed.schedule,
                "{model:?} schedules diverge"
            );
            assert_eq!(
                via_facade.transformed.partitions,
                via_wrapper.transformed.partitions
            );
            assert_eq!(via_facade.props, via_wrapper.props);
        }
    }

    #[test]
    fn run_all_covers_every_model_once() {
        let scop = two_stmt_scop();
        let runs = Optimizer::new(&scop).run_all();
        let models: Vec<Model> = runs.iter().map(|(m, _)| *m).collect();
        assert_eq!(models, Model::ALL.to_vec());
        for (m, r) in &runs {
            assert!(r.is_ok(), "{m:?} failed on a trivially schedulable SCoP");
        }
    }

    #[test]
    fn ddg_is_computed_once_and_shared() {
        let scop = two_stmt_scop();
        let mut o = Optimizer::new(&scop);
        let edges = o.ddg().edges.len();
        // Injected DDG path: a facade seeded with the cached graph must
        // produce identical results without re-analysis.
        let ddg = o.ddg().clone();
        let a = o.run_model(Model::Wisefuse).unwrap();
        let b = Optimizer::new(&scop).with_ddg(ddg).run().unwrap();
        assert_eq!(a.transformed.schedule, b.transformed.schedule);
        assert_eq!(a.ddg.edges.len(), edges);
    }

    #[test]
    fn parallel_run_all_matches_serial_run_all() {
        let scop = two_stmt_scop();
        let serial = Optimizer::new(&scop).cache_off().threads(1).run_all();
        let parallel = Optimizer::new(&scop).cache_off().threads(4).run_all();
        for ((ms, rs), (mp, rp)) in serial.iter().zip(&parallel) {
            assert_eq!(ms, mp);
            match (rs, rp) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transformed, b.transformed, "{ms:?} diverges");
                    assert_eq!(a.props, b.props);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("{ms:?}: serial and parallel disagree on success"),
            }
        }
    }

    // The fault switchboard is process-global and the runner is parallel:
    // every test that installs a `verify.legality` plan — or asserts the
    // oracle *accepts* while no plan may be installed — holds the
    // crate-wide gate (shared with the cache spill-fault tests).
    use crate::fault_gate;

    #[test]
    fn check_legality_accepts_clean_schedules() {
        let _gate = fault_gate();
        let scop = two_stmt_scop();
        for model in Model::ALL {
            let checked = Optimizer::new(&scop)
                .cache_off()
                .check_legality(true)
                .model(model)
                .run()
                .expect("legal schedule must pass the oracle");
            let unchecked = Optimizer::new(&scop)
                .cache_off()
                .model(model)
                .run()
                .unwrap();
            assert_eq!(checked.transformed, unchecked.transformed);
            assert!(checked.degraded.is_none());
        }
    }

    #[test]
    fn injected_legality_fault_degrades_or_surfaces() {
        use wf_harness::fault::FaultPlan;
        let _gate = fault_gate();
        let scop = two_stmt_scop();
        let plan = FaultPlan {
            site: Some("verify.legality".to_string()),
            ..FaultPlan::all(7, 1000)
        };

        // Strict shape: the rejection surfaces as IllegalSchedule.
        fault::install(plan.clone());
        let strict = Optimizer::new(&scop).cache_off().check_legality(true).run();
        fault::reset_to_env();
        match strict {
            Err(WfError::IllegalSchedule { model, .. }) => assert_eq!(model, "wisefuse"),
            other => panic!("expected IllegalSchedule, got {other:?}"),
        }

        // Fallback shape: degrade to program order, annotated; the
        // fallback schedule is not re-checked, so rate=1000 cannot loop.
        fault::install(plan);
        let degraded = Optimizer::new(&scop)
            .cache_off()
            .check_legality(true)
            .fallback()
            .run();
        fault::reset_to_env();
        let opt = degraded.expect("fallback absorbs the rejection");
        let why = opt.degraded.expect("degradation must be recorded");
        assert!(why.contains("legality oracle"), "cause missing: {why}");
    }

    #[test]
    fn check_legality_covers_cache_hits() {
        use wf_harness::fault::FaultPlan;
        let _gate = fault_gate();
        let scop = two_stmt_scop();
        // Warm the cache, then verify the *hit* path is checked: with the
        // oracle forced to reject, a cached schedule must still fail.
        Optimizer::new(&scop).model(Model::Maxfuse).run().unwrap();
        fault::install(FaultPlan {
            site: Some("verify.legality".to_string()),
            ..FaultPlan::all(11, 1000)
        });
        let hit = Optimizer::new(&scop)
            .model(Model::Maxfuse)
            .check_legality(true)
            .run();
        fault::reset_to_env();
        assert!(
            matches!(hit, Err(WfError::IllegalSchedule { .. })),
            "cache hits must pass through the oracle, got {hit:?}"
        );
    }

    #[test]
    fn cache_hit_path_equals_cold_path() {
        let scop = two_stmt_scop();
        let cold = Optimizer::new(&scop)
            .cache_off()
            .model(Model::Wisefuse)
            .run()
            .unwrap();
        let s0 = cache::stats();
        let first = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
        let second = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
        let s1 = cache::stats();
        assert!(s1.hits > s0.hits, "second cached run must hit");
        assert_eq!(first.transformed, cold.transformed);
        assert_eq!(second.transformed, cold.transformed);
        assert_eq!(second.props, cold.props);
    }
}
