//! The one-pass [`Optimizer`] facade.
//!
//! [`optimize`](crate::optimize) re-runs exact polyhedral dependence
//! analysis — by far the most expensive reusable step of the pipeline —
//! every time it is called, so drivers that schedule the same SCoP under
//! all five fusion models (the `wfc compare` loop, the figure harnesses,
//! iterative search) used to pay for it five times. `Optimizer` is a
//! builder over one SCoP that computes the [`Ddg`] **once**, caches it,
//! and schedules any number of models against clones of it:
//!
//! ```
//! use wf_scop::{Aff, Expr, ScopBuilder};
//! use wf_wisefuse::{Model, Optimizer};
//!
//! let mut b = ScopBuilder::new("ex", &["N"]);
//! b.context_ge(Aff::param(0) - 4);
//! let a = b.array("A", &[Aff::param(0)]);
//! b.stmt("S0", 1, &[0, 0])
//!     .bounds(0, Aff::zero(), Aff::param(0) - 1)
//!     .write(a, &[Aff::iter(0)])
//!     .rhs(Expr::Const(1.0))
//!     .done();
//! let scop = b.build();
//!
//! // One model, builder style:
//! let opt = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
//! assert_eq!(opt.model, Model::Wisefuse);
//!
//! // All five models, dependence analysis performed once:
//! let runs = Optimizer::new(&scop).run_all();
//! assert_eq!(runs.len(), Model::ALL.len());
//! ```
//!
//! The same shape appears in Polly's scheduler integration and Pluto+'s
//! fusion/permutation driver: a reusable analysis object with a one-call
//! driver on top, so strategy exploration never repeats the analysis.

use crate::pipeline::{optimize_with_ddg, Model, Optimized};
use wf_deps::{analyze, Ddg};
use wf_schedule::{PlutoConfig, SchedError};
use wf_scop::Scop;

/// Builder-style driver over one SCoP; see the module docs.
#[derive(Clone, Debug)]
pub struct Optimizer<'a> {
    scop: &'a Scop,
    model: Model,
    config: PlutoConfig,
    ddg: Option<Ddg>,
}

impl<'a> Optimizer<'a> {
    /// Start a pipeline over `scop`. Defaults: [`Model::Wisefuse`],
    /// [`PlutoConfig::default`], dependence analysis deferred until first
    /// needed.
    #[must_use]
    pub fn new(scop: &'a Scop) -> Optimizer<'a> {
        Optimizer {
            scop,
            model: Model::Wisefuse,
            config: PlutoConfig::default(),
            ddg: None,
        }
    }

    /// The SCoP this facade drives (handy for helpers that are handed only
    /// the optimizer).
    #[must_use]
    pub fn scop(&self) -> &'a Scop {
        self.scop
    }

    /// Select the fusion model [`run`](Optimizer::run) will schedule.
    #[must_use]
    pub fn model(mut self, model: Model) -> Optimizer<'a> {
        self.model = model;
        self
    }

    /// Override the scheduling-engine tunables.
    #[must_use]
    pub fn config(mut self, config: PlutoConfig) -> Optimizer<'a> {
        self.config = config;
        self
    }

    /// Inject an already-computed dependence graph (e.g. shared with a
    /// cache simulator), skipping the analysis entirely.
    #[must_use]
    pub fn with_ddg(mut self, ddg: Ddg) -> Optimizer<'a> {
        self.ddg = Some(ddg);
        self
    }

    /// The dependence graph, computing and caching it on first call.
    pub fn ddg(&mut self) -> &Ddg {
        if self.ddg.is_none() {
            self.ddg = Some(analyze(self.scop));
        }
        self.ddg.as_ref().expect("just populated")
    }

    /// Schedule the selected model, consuming the builder. Equivalent to
    /// [`optimize_with`](crate::optimize_with) but reuses an injected DDG.
    pub fn run(mut self) -> Result<Optimized, SchedError> {
        let model = self.model;
        self.run_model(model)
    }

    /// Schedule one specific model against the cached dependence graph.
    /// Call repeatedly to explore models; analysis still happens once.
    pub fn run_model(&mut self, model: Model) -> Result<Optimized, SchedError> {
        self.ddg();
        let ddg = self.ddg.clone().expect("cached by ddg()");
        optimize_with_ddg(self.scop, ddg, model, &self.config)
    }

    /// Schedule **all five** fusion models of Table 1 against one shared
    /// dependence analysis, in [`Model::ALL`] reporting order. Individual
    /// models may fail to schedule without poisoning the rest.
    pub fn run_all(&mut self) -> Vec<(Model, Result<Optimized, SchedError>)> {
        Model::ALL
            .into_iter()
            .map(|m| (m, self.run_model(m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_scop::{Aff, Expr, ScopBuilder};

    fn two_stmt_scop() -> Scop {
        let mut b = ScopBuilder::new("facade", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("C", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::mul(Expr::Load(0), Expr::Const(2.0)))
            .done();
        b.build()
    }

    #[test]
    fn facade_matches_wrapper() {
        let scop = two_stmt_scop();
        for model in Model::ALL {
            let via_facade = Optimizer::new(&scop)
                .model(model)
                .run()
                .expect("schedulable");
            let via_wrapper = crate::optimize(&scop, model).expect("schedulable");
            assert_eq!(
                via_facade.transformed.schedule, via_wrapper.transformed.schedule,
                "{model:?} schedules diverge"
            );
            assert_eq!(
                via_facade.transformed.partitions,
                via_wrapper.transformed.partitions
            );
            assert_eq!(via_facade.props, via_wrapper.props);
        }
    }

    #[test]
    fn run_all_covers_every_model_once() {
        let scop = two_stmt_scop();
        let runs = Optimizer::new(&scop).run_all();
        let models: Vec<Model> = runs.iter().map(|(m, _)| *m).collect();
        assert_eq!(models, Model::ALL.to_vec());
        for (m, r) in &runs {
            assert!(r.is_ok(), "{m:?} failed on a trivially schedulable SCoP");
        }
    }

    #[test]
    fn ddg_is_computed_once_and_shared() {
        let scop = two_stmt_scop();
        let mut o = Optimizer::new(&scop);
        let edges = o.ddg().edges.len();
        // Injected DDG path: a facade seeded with the cached graph must
        // produce identical results without re-analysis.
        let ddg = o.ddg().clone();
        let a = o.run_model(Model::Wisefuse).unwrap();
        let b = Optimizer::new(&scop).with_ddg(ddg).run().unwrap();
        assert_eq!(a.transformed.schedule, b.transformed.schedule);
        assert_eq!(a.ddg.edges.len(), edges);
    }
}
