//! **wisefuse** — the loop-fusion cost model of
//! *Revisiting Loop Fusion in the Polyhedral Framework* (PPoPP 2014).
//!
//! The algorithm has two objective functions:
//!
//! 1. **maximize data reuse** — [`prefusion::algorithm1`] computes a
//!    *pre-fusion schedule*: an ordering of the DDG's SCCs that (a) respects
//!    the precedence constraint, (b) places SCCs with data reuse — including
//!    reuse through **input (read-after-read) dependences**, invisible to
//!    PLuTo's DFS traversal — *and the same dimensionality* consecutively,
//!    and (c) considers SCCs in original program order;
//! 2. **preserve coarse-grained parallelism** — [`parallelism::algorithm2`]
//!    inspects the first (outermost) loop hyperplane the ILP finds and, for
//!    every unsatisfied forward dependence it would carry, cuts precisely
//!    between the two SCCs involved and re-solves, restoring an outer
//!    parallel loop at minimal loss of fusion.
//!
//! Both plug into the `wf-schedule` engine through
//! [`wf_schedule::FusionStrategy`]; [`optimize`] is the one-call pipeline
//! (dependence analysis → scheduling → loop-property analysis) used by the
//! examples and the benchmark harness.

#![warn(missing_docs)]

pub mod ablation;
pub mod cache;
pub mod icc;
pub mod optimizer;
pub mod parallelism;
pub mod pipeline;
pub mod prefusion;

pub use cache::{CacheStats, Fingerprint};
pub use icc::icc_schedule;
pub use optimizer::Optimizer;
pub use pipeline::{optimize, optimize_with, plan_from_optimized, Model, Optimized};
pub use wf_harness::WfError;

/// The end-to-end surface in one import: build → optimize → plan → execute.
///
/// ```
/// use wf_wisefuse::prelude::*;
/// ```
/// brings in the [`Optimizer`] facade (plus the [`optimize`] /
/// [`optimize_with`] wrappers and [`Model`] / [`Optimized`]), codegen's
/// [`ExecPlan`](wf_codegen::ExecPlan) / [`render_plan`](wf_codegen::render_plan),
/// and the runtime's executor types — everything the examples and the
/// figure harnesses touch.
pub mod prelude {
    pub use crate::{
        optimize, optimize_with, plan_from_optimized, Model, Optimized, Optimizer, WfError,
    };
    pub use wf_codegen::{render_plan, ExecPlan};
    pub use wf_runtime::{execute_reference, ExecContext, ExecOptions, ProgramData};
    pub use wf_schedule::PlutoConfig;
}

/// Serializes tests that install process-global [`wf_harness::fault`]
/// plans (or consult fault-targeted sites while one may be installed).
/// One crate-wide gate, not per-module statics: `fault::install`
/// overwrites a single global override, so two modules with private
/// gates would still stomp each other's plans under the parallel test
/// runner.
#[cfg(test)]
pub(crate) fn fault_gate() -> std::sync::MutexGuard<'static, ()> {
    static FAULT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    FAULT_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

use wf_deps::{Ddg, SccInfo};
use wf_schedule::fusion::{all_boundaries, dim_boundaries, failure_boundary};
use wf_schedule::pluto::SchedState;
use wf_schedule::transform::StmtRow;
use wf_schedule::FusionStrategy;
use wf_scop::Scop;

/// The wisefuse fusion strategy (the paper's contribution).
#[derive(Default, Clone, Copy, Debug)]
pub struct Wisefuse;

impl FusionStrategy for Wisefuse {
    fn name(&self) -> &'static str {
        "wisefuse"
    }

    fn pre_fusion_order(&self, scop: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        prefusion::algorithm1(scop, ddg, sccs)
    }

    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        // Same primary cut criterion as smartfuse — the difference is that
        // Algorithm 1 has already ordered same-dimensionality SCCs with
        // reuse consecutively, so these cuts sever far less reuse.
        dim_boundaries(state)
    }

    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        let cut = failure_boundary(state, failed);
        if !cut.is_empty() {
            return cut;
        }
        let dims = dim_boundaries(state);
        if !dims.is_empty() {
            return dims;
        }
        all_boundaries(state)
    }

    fn post_loop_cuts(&self, state: &SchedState<'_>, rows: &[StmtRow]) -> Vec<usize> {
        parallelism::algorithm2(state, rows)
    }
}
