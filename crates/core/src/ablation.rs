//! Ablation variants of wisefuse: each disables one ingredient so its
//! contribution can be measured in isolation (DESIGN.md's ablation study).
//!
//! * [`NoRar`] — Algorithm 1 without input-dependence reuse (only true
//!   dependences count as "reuse"): quantifies Heuristic 1's RAR half.
//! * [`NoAlgorithm2`] — Algorithm 1 ordering but no parallelism-restoring
//!   cuts: quantifies Algorithm 2 (advect/swim-class programs lose outer
//!   parallelism).
//! * [`Algorithm2Only`] — PLuTo's DFS pre-fusion order with Algorithm 2
//!   bolted on: quantifies Algorithm 1 (the ordering itself).

use crate::{parallelism, prefusion};
use wf_deps::{Ddg, SccInfo};
use wf_schedule::fusion::{all_boundaries, dfs_order, dim_boundaries, failure_boundary};
use wf_schedule::pluto::SchedState;
use wf_schedule::transform::StmtRow;
use wf_schedule::FusionStrategy;
use wf_scop::Scop;

fn default_failure_cuts(state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
    let cut = failure_boundary(state, failed);
    if !cut.is_empty() {
        return cut;
    }
    let dims = dim_boundaries(state);
    if !dims.is_empty() {
        return dims;
    }
    all_boundaries(state)
}

/// Wisefuse with input (RAR) dependences hidden from Algorithm 1.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoRar;

impl FusionStrategy for NoRar {
    fn name(&self) -> &'static str {
        "wisefuse-no-rar"
    }
    fn pre_fusion_order(&self, scop: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        let blind = Ddg {
            n: ddg.n,
            edges: ddg.edges.clone(),
            rar: Vec::new(),
        };
        prefusion::algorithm1(scop, &blind, sccs)
    }
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        dim_boundaries(state)
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        default_failure_cuts(state, failed)
    }
    fn post_loop_cuts(&self, state: &SchedState<'_>, rows: &[StmtRow]) -> Vec<usize> {
        parallelism::algorithm2(state, rows)
    }
}

/// Wisefuse without Algorithm 2 (fusion may forfeit outer parallelism).
#[derive(Default, Clone, Copy, Debug)]
pub struct NoAlgorithm2;

impl FusionStrategy for NoAlgorithm2 {
    fn name(&self) -> &'static str {
        "wisefuse-no-alg2"
    }
    fn pre_fusion_order(&self, scop: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        prefusion::algorithm1(scop, ddg, sccs)
    }
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        dim_boundaries(state)
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        default_failure_cuts(state, failed)
    }
}

/// PLuTo's DFS pre-fusion order, but with Algorithm 2's cuts.
#[derive(Default, Clone, Copy, Debug)]
pub struct Algorithm2Only;

impl FusionStrategy for Algorithm2Only {
    fn name(&self) -> &'static str {
        "dfs+alg2"
    }
    fn pre_fusion_order(&self, _: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
        dfs_order(ddg, sccs)
    }
    fn initial_cuts(&self, state: &SchedState<'_>) -> Vec<usize> {
        dim_boundaries(state)
    }
    fn cuts_on_failure(&self, state: &SchedState<'_>, failed: &[usize]) -> Vec<usize> {
        default_failure_cuts(state, failed)
    }
    fn post_loop_cuts(&self, state: &SchedState<'_>, rows: &[StmtRow]) -> Vec<usize> {
        parallelism::algorithm2(state, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_deps::analyze;
    use wf_schedule::{schedule_scop, PlutoConfig};
    use wf_scop::{Aff, Expr, ScopBuilder};

    /// Two 2-D statements with pure RAR reuse: full wisefuse fuses them; the
    /// RAR-blind variant treats them as disconnected and Algorithm 1 still
    /// visits them in program order — here adjacent, so the effect shows up
    /// only with an interloper of the same dimensionality in between.
    #[test]
    fn no_rar_misses_reuse_clusters() {
        let mut b = ScopBuilder::new("rar-abl", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let src = b.array("SRC", &[Aff::param(0)]);
        let o1 = b.array("O1", &[Aff::param(0)]);
        let dep_in = b.array("DIN", &[Aff::param(0)]);
        let o2 = b.array("O2", &[Aff::param(0)]);
        let o3 = b.array("O3", &[Aff::param(0)]);
        // S0 reads SRC.
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(o1, &[Aff::iter(0)])
            .read(src, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        // S1: depends on nothing, no reuse with S0.
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(dep_in, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        // S2: reads SRC (RAR with S0) — wisefuse pulls it next to S0.
        b.stmt("S2", 1, &[2, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(o2, &[Aff::iter(0)])
            .read(src, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        // S3: reads DIN (flow from S1).
        b.stmt("S3", 1, &[3, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(o3, &[Aff::iter(0)])
            .read(dep_in, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let cfg = PlutoConfig::default();
        let wise = schedule_scop(&scop, &ddg, &crate::Wisefuse, &cfg).unwrap();
        let blind = schedule_scop(&scop, &ddg, &NoRar, &cfg).unwrap();
        // Full wisefuse puts S2's SCC right after S0's.
        let pos = |t: &wf_schedule::pluto::Transformed, s: usize| {
            t.scc_order
                .iter()
                .position(|&c| c == t.sccs.scc_of[s])
                .unwrap()
        };
        assert_eq!(
            pos(&wise, 2),
            pos(&wise, 0) + 1,
            "wisefuse clusters the RAR pair"
        );
        assert_ne!(
            pos(&blind, 2),
            pos(&blind, 0) + 1,
            "RAR-blind keeps program order"
        );
    }

    /// On an advect-like conflict, disabling Algorithm 2 loses outer
    /// parallelism exactly like maxfuse.
    #[test]
    fn no_algorithm2_loses_parallelism() {
        let scop = advect_like();
        let ddg = analyze(&scop);
        let cfg = PlutoConfig::default();
        let wise = schedule_scop(&scop, &ddg, &crate::Wisefuse, &cfg).unwrap();
        let no2 = schedule_scop(&scop, &ddg, &NoAlgorithm2, &cfg).unwrap();
        let outer_parallel = |t: &wf_schedule::pluto::Transformed| {
            let props = wf_schedule::props::analyze(&scop, &ddg, t);
            wf_schedule::props::outer_parallel(&props, &t.schedule)
        };
        assert!(outer_parallel(&wise));
        assert!(!outer_parallel(&no2), "without Algorithm 2 the shift wins");
        // And Algorithm 2 on the DFS order also restores parallelism.
        let dfs2 = schedule_scop(&scop, &ddg, &Algorithm2Only, &cfg).unwrap();
        assert!(outer_parallel(&dfs2));
    }

    fn advect_like() -> wf_scop::Scop {
        let mut b = ScopBuilder::new("adv-abl", &["N"]);
        b.context_ge(Aff::param(0) - 8);
        let a = b.array("A", &[Aff::param(0)]);
        let out = b.array("B", &[Aff::param(0)]);
        b.stmt("S1", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Iter(0))
            .done();
        b.stmt("S4", 1, &[1, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 2)
            .write(out, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) - 1])
            .read(a, &[Aff::iter(0) + 1])
            .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
            .done();
        b.build()
    }
}
