//! The one-call optimization pipeline: dependence analysis → fusion-model
//! scheduling → loop-property analysis.

use crate::{icc::icc_schedule, Wisefuse};
use wf_codegen::ExecPlan;
use wf_deps::Ddg;
use wf_harness::WfError;
use wf_schedule::pluto::{schedule_scop, SchedError, Transformed};
use wf_schedule::props::{self, LoopProp};
use wf_schedule::{Maxfuse, Nofuse, PlutoConfig, Smartfuse};
use wf_scop::Scop;

/// The five fusion models of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Model {
    /// Intel-compiler-like baseline: original order, no fusion,
    /// conservative parallelization.
    Icc,
    /// Our fusion model (the paper's contribution).
    Wisefuse,
    /// PLuTo's default heuristic model.
    Smartfuse,
    /// Every SCC in its own loop nest.
    Nofuse,
    /// Maximal fusion.
    Maxfuse,
}

impl Model {
    /// All models, in the paper's reporting order.
    pub const ALL: [Model; 5] = [
        Model::Icc,
        Model::Wisefuse,
        Model::Smartfuse,
        Model::Nofuse,
        Model::Maxfuse,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::Icc => "icc",
            Model::Wisefuse => "wisefuse",
            Model::Smartfuse => "smartfuse",
            Model::Nofuse => "nofuse",
            Model::Maxfuse => "maxfuse",
        }
    }
}

/// A fully-analyzed optimization result.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The model that produced it.
    pub model: Model,
    /// The dependence graph (shared across models of one SCoP).
    pub ddg: Ddg,
    /// Schedule + satisfaction bookkeeping.
    pub transformed: Transformed,
    /// `props[dim][stmt]`: parallelism classification of loop dims.
    pub props: Vec<Vec<Option<LoopProp>>>,
    /// `Some(reason)` when this result is the documented degradation
    /// fallback (original program order, no fusion) rather than the
    /// requested model's schedule — produced when the model's solve hit a
    /// budget/panic condition and the caller opted into
    /// [`fallback`](crate::Optimizer::fallback). Degraded results are
    /// never written to the schedule cache.
    pub degraded: Option<String>,
}

impl Optimized {
    /// Is the outermost loop of every fusion partition parallel?
    #[must_use]
    pub fn outer_parallel(&self) -> bool {
        props::outer_parallel(&self.props, &self.transformed.schedule)
    }

    /// Number of top-level fusion partitions.
    #[must_use]
    pub fn n_partitions(&self) -> usize {
        self.transformed
            .partitions
            .iter()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// `flags[dim][stmt]`: is that schedule dimension a parallel loop? This
    /// is the shape codegen's planner and the tiler consume.
    #[must_use]
    pub fn parallel_flags(&self) -> Vec<Vec<bool>> {
        self.props
            .iter()
            .map(|row| {
                row.iter()
                    .map(|p| matches!(p, Some(LoopProp::Parallel)))
                    .collect()
            })
            .collect()
    }

    /// Build the execution plan for this result (bounds, inverse maps,
    /// guards), translating the loop-property analysis into per-dimension
    /// parallel flags.
    #[must_use]
    pub fn plan(&self, scop: &Scop) -> ExecPlan {
        wf_codegen::build_plan(scop, &self.transformed, self.parallel_flags())
    }
}

/// Free-function form of [`Optimized::plan`] (the call-site idiom the
/// examples and harnesses use).
#[must_use]
pub fn plan_from_optimized(scop: &Scop, opt: &Optimized) -> ExecPlan {
    opt.plan(scop)
}

/// Run the full pipeline on a SCoP under one fusion model.
///
/// Thin wrapper over [`crate::Optimizer`]; when scheduling several models
/// of the *same* SCoP, use the facade's
/// [`run_all`](crate::Optimizer::run_all) instead so dependence analysis
/// runs once, not once per model. Both wrappers go through the facade and
/// therefore through the process-wide [schedule cache](crate::cache).
pub fn optimize(scop: &Scop, model: Model) -> Result<Optimized, WfError> {
    optimize_with(scop, model, &PlutoConfig::default())
}

/// [`optimize`] with explicit engine tunables (also a facade wrapper).
pub fn optimize_with(
    scop: &Scop,
    model: Model,
    config: &PlutoConfig,
) -> Result<Optimized, WfError> {
    crate::Optimizer::new(scop)
        .model(model)
        .config(*config)
        .run()
}

/// The ILP-backed half of the pipeline: schedule one model against an
/// already-computed dependence graph. This is the step the schedule cache
/// memoizes — everything downstream ([`analyze_props`], plan building) is
/// cheap and recomputed per call.
pub(crate) fn schedule_model(
    scop: &Scop,
    ddg: &Ddg,
    model: Model,
    config: &PlutoConfig,
) -> Result<Transformed, SchedError> {
    let _span = wf_harness::span!("schedule.model", "model" => model.name());
    // Attribution labels: the model jobs run inside pool workers, so the
    // labels are installed on the thread that actually calls the solver.
    let _bench_label =
        wf_harness::attr::label_fmt(wf_harness::attr::Slot::Bench, || scop.name.clone());
    let _model_label = wf_harness::attr::label(wf_harness::attr::Slot::Model, model.name());
    Ok(match model {
        Model::Icc => icc_schedule(scop, ddg),
        Model::Wisefuse => schedule_scop(scop, ddg, &Wisefuse, config)?,
        Model::Smartfuse => schedule_scop(scop, ddg, &Smartfuse, config)?,
        Model::Nofuse => schedule_scop(scop, ddg, &Nofuse, config)?,
        Model::Maxfuse => schedule_scop(scop, ddg, &Maxfuse, config)?,
    })
}

/// Loop-property analysis for a scheduled model, including the icc model's
/// conservative parallelization downgrade. Deterministic in its inputs, so
/// a cache-hit [`Transformed`] reproduces the cold path's properties
/// exactly.
pub(crate) fn analyze_props(
    scop: &Scop,
    ddg: &Ddg,
    model: Model,
    transformed: &Transformed,
) -> Vec<Vec<Option<LoopProp>>> {
    let _span = wf_harness::span!("props.analyze", "model" => model.name());
    let mut props = props::analyze(scop, ddg, transformed);
    if model == Model::Icc {
        // The paper's observed icc behaviour (§5.3): auto-parallelization
        // declines non-rectangular iteration spaces (lu) and nests with any
        // carried dependence (gemver's S2/S4 reductions), rather than
        // extracting the parallel outer level the polyhedral models find.
        for s in 0..scop.n_statements() {
            let conservative = !crate::icc::is_rectangular(scop, s)
                || props
                    .iter()
                    .any(|row| matches!(row[s], Some(props::LoopProp::Forward)));
            if conservative {
                for row in &mut props {
                    if row[s].is_some() {
                        row[s] = Some(props::LoopProp::Forward);
                    }
                }
            }
        }
    }
    props
}
