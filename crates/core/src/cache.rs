//! Content-addressed memoization of scheduling results.
//!
//! Scheduling is the expensive half of the pipeline: every model other
//! than `icc` solves a chain of exact-rational ILPs. The result is a pure
//! function of `(SCoP, model, config)` — the dependence graph is itself
//! derived from the SCoP — so repeated invocations (the `wfc` CLI, the
//! figure harnesses, iterative schedule-space search re-visiting a
//! candidate) can skip the ILP entirely.
//!
//! A [`Fingerprint`] addresses an entry by content, not identity:
//!
//! * the SCoP is rendered to its canonical text
//!   ([`wf_scop::text::to_text`], which round-trips through the parser)
//!   and hashed with the stable FNV-1a hasher from `wf-harness` — two
//!   structurally identical SCoPs built by different code paths share
//!   entries, and the fingerprint survives across processes;
//! * the model contributes its name;
//! * every [`PlutoConfig`] knob is hashed field-by-field, so tuning the
//!   engine never serves stale schedules.
//!
//! Entries live in a bounded in-memory LRU behind a process-wide mutex
//! ([`global`]), shared by every [`Optimizer`](crate::Optimizer) in the
//! process. When the `WF_CACHE_DIR` environment variable names a
//! directory, entries additionally spill to
//! `<dir>/<scop>-<model>-<config>.json` and misses consult the spill
//! first, which is what makes a *second* `wfc bench-all` process report
//! cache hits. Only `Ok` results are cached; scheduling failures are
//! re-derived (they are rare and cheap — the engine fails fast).
//!
//! Determinism guarantee: a cache hit returns a byte-identical
//! [`Transformed`] to what the cold path would compute, because the cold
//! path is deterministic and the entry is keyed on every input that
//! influences it. The spill codec is versioned; any decode mismatch is
//! treated as a miss, never an error.
//!
//! Spill robustness: transient I/O failures (the `cache.spill_read` /
//! `cache.spill_write` fault sites, NFS hiccups, permission flaps) are
//! retried up to [`SPILL_IO_ATTEMPTS`] times with a bounded millisecond
//! backoff before degrading to a miss / surfaced error — a one-off
//! hiccup costs microseconds, not a lost entry. Pruning never touches
//! `.tmp-` files younger than [`TMP_GRACE_SECS`], closing the
//! cross-process race where one process's `spill_prune` could delete
//! another's fresh temp file between its write and its rename.

use crate::pipeline::Model;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use wf_harness::fault::{self, FaultKind};
use wf_harness::hash::Fnv64;
use wf_harness::json::Json;
use wf_schedule::pluto::Transformed;
use wf_schedule::transform::{DimKind, Schedule, StmtRow};
use wf_schedule::PlutoConfig;
use wf_scop::Scop;

/// Spill format version; bumped whenever the encoding changes.
const SPILL_VERSION: i128 = 1;

/// Content address of one scheduling result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint {
    /// FNV-1a digest of the SCoP's canonical text.
    pub scop: u64,
    /// The fusion model.
    pub model: Model,
    /// FNV-1a digest of the engine tunables.
    pub config: u64,
}

impl Fingerprint {
    /// Fingerprint of `(scop, model, config)`.
    #[must_use]
    pub fn new(scop: &Scop, model: Model, config: &PlutoConfig) -> Fingerprint {
        Fingerprint {
            scop: scop_fingerprint(scop),
            model,
            config: config_fingerprint(config),
        }
    }

    /// Incremental re-fingerprint: the same SCoP and model under a
    /// different `config`, rehashing **only** the config knobs.
    ///
    /// [`Fingerprint::new`] renders the SCoP's full canonical text to
    /// digest it — by far the dominant cost — so candidate enumeration in
    /// the iterative-search harness, which varies only the engine
    /// tunables, computes one base fingerprint and derives every
    /// candidate's key through this delta path. Identical by construction
    /// to `Fingerprint::new(scop, model, config)` for the SCoP the base
    /// was built from.
    #[must_use]
    pub fn with_config(&self, config: &PlutoConfig) -> Fingerprint {
        Fingerprint {
            scop: self.scop,
            model: self.model,
            config: config_fingerprint(config),
        }
    }

    /// The same SCoP and config under a different fusion `model`; like
    /// [`with_config`](Fingerprint::with_config), no SCoP re-render.
    #[must_use]
    pub fn with_model(&self, model: Model) -> Fingerprint {
        Fingerprint { model, ..*self }
    }

    /// The spill file stem: `<scop:016x>-<model>-<config:016x>`.
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!(
            "{:016x}-{}-{:016x}",
            self.scop,
            self.model.name(),
            self.config
        )
    }
}

/// Stable digest of a SCoP's canonical textual form.
#[must_use]
pub fn scop_fingerprint(scop: &Scop) -> u64 {
    wf_harness::fnv1a_64(wf_scop::text::to_text(scop).as_bytes())
}

/// Stable digest of every scheduling-engine knob.
#[must_use]
pub fn config_fingerprint(config: &PlutoConfig) -> u64 {
    let mut h = Fnv64::new();
    h.update_i128(config.coeff_bound)
        .update_i128(config.shift_bound)
        .update_i128(config.u_bound)
        .update_i128(config.w_bound)
        .update_usize(config.max_iters)
        .update_usize(config.ilp_node_budget)
        .update_u64(config.ilp_cell_budget)
        .update_usize(config.max_fusion_width);
    h.digest()
}

/// Hit/miss/store counters (monotone over the cache's lifetime).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// In-memory lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (in memory or on disk).
    pub misses: u64,
    /// Entries inserted after a cold computation.
    pub stores: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Misses rescued by the `WF_CACHE_DIR` spill.
    pub spill_hits: u64,
    /// Entries written to the spill directory.
    pub spill_stores: u64,
    /// Corrupt spill entries quarantined (renamed aside) and treated as
    /// misses.
    pub spill_quarantined: u64,
}

impl CacheStats {
    /// Total lookups served (in-memory hits + spill rescues + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.spill_hits + self.misses
    }

    /// Percentage of lookups served from memory or the spill (0 when no
    /// lookups have happened).
    #[must_use]
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.spill_hits) as f64 * 100.0 / total as f64
    }

    /// Percentage of lookups rescued by the `WF_CACHE_DIR` spill.
    #[must_use]
    pub fn spill_hit_rate_pct(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            return 0.0;
        }
        self.spill_hits as f64 * 100.0 / total as f64
    }

    /// Render as a JSON object (for `BENCH_all.json` and `--json` output).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("stores", Json::from(self.stores)),
            ("evictions", Json::from(self.evictions)),
            ("spill_hits", Json::from(self.spill_hits)),
            ("spill_stores", Json::from(self.spill_stores)),
            ("spill_quarantined", Json::from(self.spill_quarantined)),
            ("hit_rate_pct", Json::Num(self.hit_rate_pct())),
            ("spill_hit_rate_pct", Json::Num(self.spill_hit_rate_pct())),
        ])
    }
}

struct Entry {
    transformed: Transformed,
    last_used: u64,
}

/// A bounded LRU of scheduling results; see the module docs.
pub struct ScheduleCache {
    capacity: usize,
    tick: u64,
    map: HashMap<Fingerprint, Entry>,
    stats: CacheStats,
    /// Spill directory override; `None` defers to `WF_CACHE_DIR` at each
    /// operation (tests pin it to avoid racing on process environment).
    spill_override: Option<PathBuf>,
}

impl ScheduleCache {
    /// An empty cache holding at most `capacity` entries (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> ScheduleCache {
        ScheduleCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
            spill_override: None,
        }
    }

    /// Pin the spill directory instead of consulting `WF_CACHE_DIR`.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: PathBuf) -> ScheduleCache {
        self.spill_override = Some(dir);
        self
    }

    fn spill_target(&self) -> Option<PathBuf> {
        self.spill_override.clone().or_else(spill_dir)
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (counters are preserved; they are lifetime
    /// totals).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Look up a fingerprint, consulting the `WF_CACHE_DIR` spill on an
    /// in-memory miss. Returns a clone of the cached result.
    pub fn lookup(&mut self, key: &Fingerprint) -> Option<Transformed> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            wf_harness::obs::add("cache.hit", 1);
            return Some(e.transformed.clone());
        }
        if let Some(dir) = self.spill_target() {
            match spill_read(&dir, key) {
                SpillOutcome::Hit(t) => {
                    self.stats.spill_hits += 1;
                    wf_harness::obs::add("cache.spill_hit", 1);
                    self.insert_only(*key, (*t).clone());
                    return Some(*t);
                }
                SpillOutcome::Quarantined => self.stats.spill_quarantined += 1,
                SpillOutcome::Miss => {}
            }
        }
        self.stats.misses += 1;
        wf_harness::obs::add("cache.miss", 1);
        None
    }

    /// Insert a cold result, spilling it to `WF_CACHE_DIR` when set.
    /// Every [`SPILL_PRUNE_PERIOD`]-th successful spill store also prunes
    /// the spill directory against the [`SpillCaps`] from the environment,
    /// amortizing the directory scan.
    pub fn insert(&mut self, key: Fingerprint, t: &Transformed) {
        self.stats.stores += 1;
        wf_harness::obs::add("cache.store", 1);
        if let Some(dir) = self.spill_target() {
            if spill_write(&dir, &key, t).is_ok() {
                self.stats.spill_stores += 1;
                wf_harness::obs::add("cache.spill_store", 1);
                if self.stats.spill_stores.is_multiple_of(SPILL_PRUNE_PERIOD) {
                    let _ = spill_prune(&dir, &SpillCaps::from_env());
                }
            }
        }
        self.insert_only(key, t.clone());
    }

    fn insert_only(&mut self, key: Fingerprint, t: Transformed) {
        self.tick += 1;
        while self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(n) eviction scan: capacities are small (hundreds) and
            // insertions are rare next to the ILP they memoize.
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty at capacity");
            self.map.remove(&lru);
            self.stats.evictions += 1;
        }
        self.map.insert(
            key,
            Entry {
                transformed: t,
                last_used: self.tick,
            },
        );
    }
}

/// Default capacity of the process-wide cache: the whole catalog × all
/// models fits with room for search-harness candidates.
const GLOBAL_CAPACITY: usize = 256;

/// The process-wide schedule cache shared by every
/// [`Optimizer`](crate::Optimizer).
pub fn global() -> &'static Mutex<ScheduleCache> {
    static CACHE: OnceLock<Mutex<ScheduleCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ScheduleCache::new(GLOBAL_CAPACITY)))
}

fn global_guard() -> std::sync::MutexGuard<'static, ScheduleCache> {
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counters snapshot of the process-wide cache.
#[must_use]
pub fn stats() -> CacheStats {
    global_guard().stats()
}

/// Drop every entry of the process-wide cache (counters survive). Used by
/// phase profilers that need a cold run mid-process.
pub fn clear() {
    global_guard().clear();
}

pub(crate) fn global_lookup(key: &Fingerprint) -> Option<Transformed> {
    global_guard().lookup(key)
}

pub(crate) fn global_insert(key: Fingerprint, t: &Transformed) {
    global_guard().insert(key, t);
}

/// The spill directory (`WF_CACHE_DIR`), if configured.
#[must_use]
pub fn spill_dir() -> Option<PathBuf> {
    std::env::var_os("WF_CACHE_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// What a spill lookup found; quarantines are reported separately so the
/// stats can distinguish "never cached" from "cached but corrupt".
#[derive(Clone, PartialEq, Debug)]
pub enum SpillOutcome {
    /// A valid entry (boxed: the payload dwarfs the other variants).
    Hit(Box<Transformed>),
    /// No entry (or an unreadable file — crash-safety treats both as
    /// cold).
    Miss,
    /// The entry existed but failed to decode; it was renamed to
    /// `<stem>.json.quarantined` so it cannot poison future lookups, and
    /// this lookup proceeds as a miss.
    Quarantined,
}

/// Attempts (initial + retries) a transient spill I/O failure is given
/// before it is surfaced. Transient means: the `cache.spill_read/write`
/// fault sites, or an OS error that is not "file does not exist" — NFS
/// hiccups, `EMFILE` pressure, a concurrent prune racing the rename.
pub const SPILL_IO_ATTEMPTS: u32 = 3;

/// Backoff before retry `n` (1-based); bounded and tiny — spill I/O sits
/// on the scheduling path, and an entry that stays unreachable for ~5 ms
/// is better re-solved than waited on.
const SPILL_RETRY_BACKOFF: [std::time::Duration; 2] = [
    std::time::Duration::from_millis(1),
    std::time::Duration::from_millis(4),
];

/// Sleep before retry number `retry` (1-based) and count it.
fn spill_backoff(retry: u32) {
    wf_harness::obs::add("cache.spill_retry", 1);
    let idx = (retry as usize - 1).min(SPILL_RETRY_BACKOFF.len() - 1);
    std::thread::sleep(SPILL_RETRY_BACKOFF[idx]);
}

/// Write one entry under `dir` (which is created as needed).
///
/// Crash-safe: the entry is written to a process-unique temp file and
/// atomically renamed into place, so a reader (or a crash mid-write)
/// never observes a torn entry under the final name.
///
/// Transient failures (including the `cache.spill_write` fault site) are
/// retried up to [`SPILL_IO_ATTEMPTS`] times with a bounded backoff
/// before the error surfaces — a one-off hiccup costs a few
/// milliseconds, not a lost store.
///
/// # Errors
/// Propagates the last filesystem error; callers treat it as "no spill".
pub fn spill_write(dir: &Path, key: &Fingerprint, t: &Transformed) -> std::io::Result<()> {
    let mut last = None;
    for attempt in 0..SPILL_IO_ATTEMPTS {
        if attempt > 0 {
            spill_backoff(attempt);
        }
        match spill_write_once(dir, key, t) {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

fn spill_write_once(dir: &Path, key: &Fingerprint, t: &Transformed) -> std::io::Result<()> {
    if fault::should_inject("cache.spill_write", FaultKind::Io) {
        return Err(std::io::Error::other("injected spill-write fault"));
    }
    std::fs::create_dir_all(dir)?;
    let final_path = dir.join(format!("{}.json", key.file_stem()));
    // Write-then-rename so a concurrent reader never sees a torn file.
    let tmp = dir.join(format!("{}.tmp-{}", key.file_stem(), std::process::id()));
    std::fs::write(&tmp, transformed_to_json(t).render())?;
    std::fs::rename(&tmp, &final_path)
}

/// Read one entry back. A missing file is an immediate
/// [`SpillOutcome::Miss`]; a *transient* read failure (the
/// `cache.spill_read` fault site, or an OS error on a file that exists)
/// is retried up to [`SPILL_IO_ATTEMPTS`] times with a bounded backoff
/// before being reported as a miss. A file that *reads* but fails to
/// parse or decode (torn by a crash predating atomic writes, truncated
/// by a full disk, or hand-edited) is renamed aside without retrying —
/// corruption is not transient — and reported as
/// [`SpillOutcome::Quarantined`]; if a concurrent process (another
/// bench shard's amortized prune) deletes the file before the rename,
/// the lookup is a clean [`SpillOutcome::Miss`] instead.
#[must_use]
pub fn spill_read(dir: &Path, key: &Fingerprint) -> SpillOutcome {
    let path = dir.join(format!("{}.json", key.file_stem()));
    let mut text = None;
    for attempt in 0..SPILL_IO_ATTEMPTS {
        if attempt > 0 {
            spill_backoff(attempt);
        }
        if fault::should_inject("cache.spill_read", FaultKind::Io) {
            continue; // simulated unreadable file; maybe transient
        }
        match std::fs::read_to_string(&path) {
            Ok(t) => {
                text = Some(t);
                break;
            }
            // Absent is definitive: the entry was never written (or was
            // pruned); retrying cannot make it appear.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SpillOutcome::Miss,
            Err(_) => {} // transient (permissions flap, NFS hiccup): retry
        }
    }
    let Some(text) = text else {
        return SpillOutcome::Miss;
    };
    let decoded = Json::parse(&text)
        .ok()
        .and_then(|j| transformed_from_json(&j));
    match decoded {
        Some(t) => SpillOutcome::Hit(Box::new(t)),
        None => quarantine_corrupt(&path),
    }
}

/// Move a corrupt entry aside (best-effort; delete if even the rename
/// fails) so the decode cost is paid once. If the file is already gone
/// when we try — a concurrent shard's prune or quarantine won the race
/// between our read and the rename — the entry simply no longer exists:
/// that is a clean [`SpillOutcome::Miss`], not a quarantine, exactly as
/// if the prune had run a moment earlier.
fn quarantine_corrupt(path: &Path) -> SpillOutcome {
    let aside = path.with_extension("json.quarantined");
    match std::fs::rename(path, &aside) {
        Ok(()) => SpillOutcome::Quarantined,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => SpillOutcome::Miss,
        Err(_) => match std::fs::remove_file(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => SpillOutcome::Miss,
            // Deleted, or stuck in place (it may poison again, so the
            // caller should still count it): either way it was corrupt.
            _ => SpillOutcome::Quarantined,
        },
    }
}

/// Amortization period for [`spill_prune`] inside
/// [`ScheduleCache::insert`].
pub const SPILL_PRUNE_PERIOD: u64 = 32;

/// Size/age bounds for the spill directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpillCaps {
    /// Maximum total bytes across entries (oldest evicted first beyond
    /// it).
    pub max_bytes: u64,
    /// Entries older than this many seconds are removed (`None` = no age
    /// cap).
    pub max_age_secs: Option<u64>,
}

impl SpillCaps {
    /// Default size cap: 256 MiB.
    pub const DEFAULT_MAX_BYTES: u64 = 256 * 1024 * 1024;

    /// Read `WF_CACHE_MAX_BYTES` / `WF_CACHE_MAX_AGE_SECS`, validated.
    ///
    /// # Errors
    /// [`wf_harness::WfError::Invalid`] (exit code 2) when either variable
    /// is set but is not a non-negative integer — `wfc` validates this up
    /// front instead of silently running with the defaults.
    pub fn try_from_env() -> Result<SpillCaps, wf_harness::WfError> {
        let parse = |name: &str| -> Result<Option<u64>, wf_harness::WfError> {
            match std::env::var(name) {
                Ok(v) => v.trim().parse::<u64>().map(Some).map_err(|_| {
                    wf_harness::WfError::invalid(format!(
                        "{name} must be a non-negative integer, got {v:?}"
                    ))
                }),
                Err(_) => Ok(None),
            }
        };
        Ok(SpillCaps {
            max_bytes: parse("WF_CACHE_MAX_BYTES")?.unwrap_or(Self::DEFAULT_MAX_BYTES),
            max_age_secs: parse("WF_CACHE_MAX_AGE_SECS")?,
        })
    }

    /// Infallible [`SpillCaps::try_from_env`] for library paths that cannot
    /// surface errors: malformed values fall back to the defaults (256 MiB,
    /// no age cap).
    #[must_use]
    pub fn from_env() -> SpillCaps {
        Self::try_from_env().unwrap_or(SpillCaps {
            max_bytes: Self::DEFAULT_MAX_BYTES,
            max_age_secs: None,
        })
    }
}

/// Everything prune-relevant in the spill directory: entries,
/// quarantined entries, and orphaned temp files from crashed writers.
fn spill_files(dir: &Path) -> Vec<(PathBuf, u64, Option<std::time::SystemTime>)> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in rd.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let relevant = name.ends_with(".json")
            || name.ends_with(".json.quarantined")
            || name.contains(".tmp-");
        if !relevant {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        out.push((path, meta.len(), meta.modified().ok()));
    }
    out
}

/// One spill-directory entry as reported by `wfc cache --stats`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpillEntry {
    /// File name within the spill directory.
    pub file: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Seconds since last modification (`None` when the filesystem has no
    /// usable mtime).
    pub age_secs: Option<u64>,
}

/// Per-entry inventory of the spill directory (entries + quarantined +
/// orphaned temp files), sorted by file name for stable output.
#[must_use]
pub fn spill_entries(dir: &Path) -> Vec<SpillEntry> {
    let now = std::time::SystemTime::now();
    let mut out: Vec<SpillEntry> = spill_files(dir)
        .into_iter()
        .map(|(path, bytes, modified)| SpillEntry {
            file: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            bytes,
            age_secs: modified
                .and_then(|m| now.duration_since(m).ok())
                .map(|d| d.as_secs()),
        })
        .collect();
    out.sort_by(|a, b| a.file.cmp(&b.file));
    out
}

/// Entry count and total bytes of the spill directory (entries +
/// quarantined + orphaned temp files).
#[must_use]
pub fn spill_usage(dir: &Path) -> (usize, u64) {
    let files = spill_files(dir);
    let bytes = files.iter().map(|(_, len, _)| len).sum();
    (files.len(), bytes)
}

/// Grace window during which a `.tmp-` file is presumed to belong to a
/// live writer in another process and must not be pruned. `spill_write`
/// creates the temp file and renames it within milliseconds, so a minute
/// of slack covers even a heavily-loaded writer; anything older is an
/// orphan from a crash.
pub const TMP_GRACE_SECS: u64 = 60;

/// Is this a `.tmp-` file young enough that a concurrent `spill_write`
/// may still be about to rename it? Files with a *future* mtime (clock
/// skew) are treated as in-grace — we cannot prove they are orphans.
/// Unknown mtimes are not protected: a temp file whose metadata cannot
/// be read is overwhelmingly a leftover, not a live write.
fn tmp_in_grace(
    path: &Path,
    modified: Option<std::time::SystemTime>,
    now: std::time::SystemTime,
) -> bool {
    let is_tmp = path
        .file_name()
        .is_some_and(|n| n.to_string_lossy().contains(".tmp-"));
    if !is_tmp {
        return false;
    }
    match modified {
        Some(m) => match now.duration_since(m) {
            Ok(age) => age.as_secs() < TMP_GRACE_SECS,
            Err(_) => true, // future mtime: assume live
        },
        None => false,
    }
}

/// Enforce `caps` on the spill directory: drop entries older than the age
/// cap, then drop oldest-first until the byte cap holds. Returns how many
/// files were removed. Failures to remove individual files are skipped —
/// pruning is hygiene, not correctness.
///
/// `.tmp-` files younger than [`TMP_GRACE_SECS`] are never removed (by
/// either pass): `spill_write` in *another process* may be between its
/// write and its rename, and deleting the temp file out from under it
/// turns an atomic store into a spurious I/O error. In-grace temp files
/// still count toward the byte total — they will become entries (or
/// prunable orphans) momentarily.
pub fn spill_prune(dir: &Path, caps: &SpillCaps) -> usize {
    let now = std::time::SystemTime::now();
    let mut files = spill_files(dir);
    let mut removed = 0usize;
    if let Some(max_age) = caps.max_age_secs {
        files.retain(|(path, _, modified)| {
            if tmp_in_grace(path, *modified, now) {
                return true;
            }
            let expired = modified
                .and_then(|m| now.duration_since(m).ok())
                .is_some_and(|age| age.as_secs() > max_age);
            if expired && std::fs::remove_file(path).is_ok() {
                removed += 1;
                return false;
            }
            true
        });
    }
    let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
    if total > caps.max_bytes {
        // Oldest first; files with unknown mtimes go first (they are
        // orphaned temp files more often than live entries).
        files.sort_by_key(|(_, _, modified)| *modified);
        for (path, len, modified) in files {
            if total <= caps.max_bytes {
                break;
            }
            if tmp_in_grace(&path, modified, now) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
                total = total.saturating_sub(len);
            }
        }
    }
    removed
}

/// Remove every spill entry (plus quarantined and temp files), returning
/// how many files were deleted.
///
/// # Errors
/// Propagates a failure to list the directory; per-file removal failures
/// are skipped.
pub fn spill_clear(dir: &Path) -> std::io::Result<usize> {
    if !dir.exists() {
        return Ok(0);
    }
    std::fs::read_dir(dir)?; // surface unreadable dirs as an error
    let mut removed = 0;
    for (path, _, _) in spill_files(dir) {
        if std::fs::remove_file(path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Encode a scheduling result for the disk spill.
#[must_use]
pub fn transformed_to_json(t: &Transformed) -> Json {
    let opt = |v: &Option<usize>| v.map_or(Json::Null, Json::from);
    let usizes = |v: &[usize]| Json::Arr(v.iter().map(|&x| Json::from(x)).collect());
    Json::obj([
        ("version", Json::Int(SPILL_VERSION)),
        (
            "dims",
            Json::Arr(
                t.schedule
                    .dims
                    .iter()
                    .map(|d| match d {
                        DimKind::Loop => Json::str("loop"),
                        DimKind::Scalar => Json::str("scalar"),
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                t.schedule
                    .rows
                    .iter()
                    .map(|dim| {
                        Json::Arr(
                            dim.iter()
                                .map(|r| {
                                    Json::obj([
                                        (
                                            "c",
                                            Json::Arr(
                                                r.coeffs.iter().map(|&c| Json::Int(c)).collect(),
                                            ),
                                        ),
                                        ("k", Json::Int(r.konst)),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        ("sat_dim", Json::Arr(t.sat_dim.iter().map(opt).collect())),
        ("scc_of", usizes(&t.sccs.scc_of)),
        (
            "scc_members",
            Json::Arr(t.sccs.members.iter().map(|m| usizes(m)).collect()),
        ),
        ("scc_order", usizes(&t.scc_order)),
        ("partitions", usizes(&t.partitions)),
        ("strategy", Json::str(t.strategy.as_str())),
        (
            "band_of_dim",
            Json::Arr(t.band_of_dim.iter().map(opt).collect()),
        ),
    ])
}

/// Decode a spilled scheduling result; `None` on any shape or version
/// mismatch.
#[must_use]
pub fn transformed_from_json(j: &Json) -> Option<Transformed> {
    if j.get("version")?.as_i128()? != SPILL_VERSION {
        return None;
    }
    let usize_of = |v: &Json| -> Option<usize> { usize::try_from(v.as_i128()?).ok() };
    let usizes = |v: &Json| -> Option<Vec<usize>> { v.as_arr()?.iter().map(usize_of).collect() };
    let opts = |v: &Json| -> Option<Vec<Option<usize>>> {
        v.as_arr()?
            .iter()
            .map(|x| match x {
                Json::Null => Some(None),
                other => usize_of(other).map(Some),
            })
            .collect()
    };
    let dims = j
        .get("dims")?
        .as_arr()?
        .iter()
        .map(|d| match d.as_str() {
            Some("loop") => Some(DimKind::Loop),
            Some("scalar") => Some(DimKind::Scalar),
            _ => None,
        })
        .collect::<Option<Vec<DimKind>>>()?;
    let rows = j
        .get("rows")?
        .as_arr()?
        .iter()
        .map(|dim| {
            dim.as_arr()?
                .iter()
                .map(|r| {
                    Some(StmtRow {
                        coeffs: r
                            .get("c")?
                            .as_arr()?
                            .iter()
                            .map(Json::as_i128)
                            .collect::<Option<Vec<i128>>>()?,
                        konst: r.get("k")?.as_i128()?,
                    })
                })
                .collect::<Option<Vec<StmtRow>>>()
        })
        .collect::<Option<Vec<Vec<StmtRow>>>>()?;
    if rows.len() != dims.len() {
        return None;
    }
    Some(Transformed {
        schedule: Schedule { dims, rows },
        sat_dim: opts(j.get("sat_dim")?)?,
        sccs: wf_deps::SccInfo {
            scc_of: usizes(j.get("scc_of")?)?,
            members: j
                .get("scc_members")?
                .as_arr()?
                .iter()
                .map(usizes)
                .collect::<Option<Vec<Vec<usize>>>>()?,
        },
        scc_order: usizes(j.get("scc_order")?)?,
        partitions: usizes(j.get("partitions")?)?,
        strategy: j.get("strategy")?.as_str()?.to_string(),
        band_of_dim: opts(j.get("band_of_dim")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_transformed(tag: i128) -> Transformed {
        Transformed {
            schedule: Schedule {
                dims: vec![DimKind::Scalar, DimKind::Loop],
                rows: vec![
                    vec![StmtRow::scalar(2, tag), StmtRow::scalar(2, 1)],
                    vec![
                        StmtRow {
                            coeffs: vec![1, 0],
                            konst: 0,
                        },
                        StmtRow {
                            coeffs: vec![0, 1],
                            konst: -3,
                        },
                    ],
                ],
            },
            sat_dim: vec![Some(1), None],
            sccs: wf_deps::SccInfo {
                scc_of: vec![0, 1],
                members: vec![vec![0], vec![1]],
            },
            scc_order: vec![0, 1],
            partitions: vec![0, 1],
            strategy: "wisefuse".to_string(),
            band_of_dim: vec![None, Some(0)],
        }
    }

    fn key(n: u64) -> Fingerprint {
        Fingerprint {
            scop: n,
            model: Model::Wisefuse,
            config: 7,
        }
    }

    #[test]
    fn spill_codec_round_trips() {
        let t = sample_transformed(5);
        let j = transformed_to_json(&t);
        assert_eq!(transformed_from_json(&j), Some(t.clone()));
        // Through the actual serializer/parser as well.
        let reparsed = Json::parse(&j.render()).unwrap();
        assert_eq!(transformed_from_json(&reparsed), Some(t));
    }

    #[test]
    fn spill_codec_rejects_version_and_shape_mismatches() {
        let t = sample_transformed(5);
        let mut j = transformed_to_json(&t);
        match &mut j {
            Json::Obj(fields) => fields[0].1 = Json::Int(999),
            _ => unreachable!(),
        }
        assert_eq!(transformed_from_json(&j), None);
        assert_eq!(transformed_from_json(&Json::obj([])), None);
    }

    #[test]
    fn lru_bounds_and_counters() {
        let mut c = ScheduleCache::new(2);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), &sample_transformed(1));
        c.insert(key(2), &sample_transformed(2));
        assert!(c.lookup(&key(1)).is_some()); // 1 now most recent
        c.insert(key(3), &sample_transformed(3)); // evicts 2
        assert!(c.lookup(&key(2)).is_none());
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.lookup(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (3, 2));
        assert_eq!((s.stores, s.evictions), (3, 1));
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().stores, 3, "counters survive clear");
    }

    #[test]
    fn with_config_matches_full_fingerprint() {
        use wf_scop::{Aff, Expr, ScopBuilder};
        let mut b = ScopBuilder::new("fp", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        let scop = b.build();

        let base = Fingerprint::new(&scop, Model::Wisefuse, &PlutoConfig::default());
        let tweaked = PlutoConfig {
            max_fusion_width: 3,
            ..PlutoConfig::default()
        };
        // The delta path must agree with a from-scratch fingerprint…
        assert_eq!(
            base.with_config(&tweaked),
            Fingerprint::new(&scop, Model::Wisefuse, &tweaked)
        );
        assert_eq!(base.with_config(&PlutoConfig::default()), base);
        // …and distinct configs must not collide on the config digest.
        assert_ne!(base.with_config(&tweaked).config, base.config);
        // Same for the model delta.
        assert_eq!(
            base.with_model(Model::Nofuse),
            Fingerprint::new(&scop, Model::Nofuse, &PlutoConfig::default())
        );
    }

    #[test]
    fn cached_value_is_returned_verbatim() {
        let mut c = ScheduleCache::new(8);
        let t = sample_transformed(9);
        c.insert(key(9), &t);
        assert_eq!(c.lookup(&key(9)), Some(t));
    }

    // Tests below exercise spill I/O, whose `cache.spill_read/write`
    // fault sites some sibling tests target with installed plans — all
    // of them hold the crate-wide fault gate.
    use crate::fault_gate;
    use wf_harness::fault::{self, FaultPlan};

    fn spill_plan(seed: u64, rate: u32, site: &str) -> FaultPlan {
        FaultPlan {
            site: Some(site.to_string()),
            ..FaultPlan::all(seed, rate)
        }
    }

    /// A seed whose decision sequence at `site` is: visit 1 injects,
    /// visits 2 and 3 do not — i.e. exactly one transient fault that a
    /// single retry rescues. Found by search so the test never depends
    /// on hash-function internals.
    fn one_shot_fault_seed(site: &str, rate: u32) -> u64 {
        (0..10_000)
            .find(|&seed| {
                let p = spill_plan(seed, rate, site);
                fault::decide(&p, site, 1)
                    && !fault::decide(&p, site, 2)
                    && !fault::decide(&p, site, 3)
            })
            .expect("a one-shot seed exists within 10k candidates")
    }

    #[test]
    fn spill_files_round_trip_via_explicit_dir() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample_transformed(4);
        let k = key(4);
        assert_eq!(spill_read(&dir, &k), SpillOutcome::Miss);
        spill_write(&dir, &k, &t).expect("spill write");
        assert_eq!(spill_read(&dir, &k), SpillOutcome::Hit(Box::new(t)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_entry_is_quarantined_once_then_misses() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(6);
        let entry = dir.join(format!("{}.json", k.file_stem()));
        // A truncated write from a crashed pre-atomic-rename era.
        std::fs::write(&entry, "{\"version\": 1, \"dims\": [\"lo").unwrap();
        assert_eq!(spill_read(&dir, &k), SpillOutcome::Quarantined);
        assert!(!entry.exists(), "corrupt entry must be moved aside");
        assert!(
            entry.with_extension("json.quarantined").exists(),
            "quarantine keeps the evidence"
        );
        // Second lookup: plain miss, no re-quarantine churn.
        assert_eq!(spill_read(&dir, &k), SpillOutcome::Miss);
        // A fresh write recovers the slot.
        let t = sample_transformed(6);
        spill_write(&dir, &k, &t).unwrap();
        assert_eq!(spill_read(&dir, &k), SpillOutcome::Hit(Box::new(t)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_lookup_counts_and_misses() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-quarstat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(11);
        std::fs::write(dir.join(format!("{}.json", k.file_stem())), "not json").unwrap();
        let mut c = ScheduleCache::new(4).with_spill_dir(dir.clone());
        assert!(c.lookup(&k).is_none());
        let s = c.stats();
        assert_eq!((s.spill_quarantined, s.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_enforces_size_and_age_caps() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for n in 0..4 {
            spill_write(&dir, &key(n), &sample_transformed(n as i128)).unwrap();
        }
        let (files, bytes) = spill_usage(&dir);
        assert_eq!(files, 4);
        assert!(bytes > 0);
        let per_entry = bytes / 4;
        // Size cap that fits only ~2 entries.
        let removed = spill_prune(
            &dir,
            &SpillCaps {
                max_bytes: per_entry * 2 + 1,
                max_age_secs: None,
            },
        );
        assert_eq!(removed, 2, "oldest two entries pruned");
        assert_eq!(spill_usage(&dir).0, 2);
        // Age cap of zero seconds is not instant-expiry (mtime == now is
        // not *older* than 0), so backdate via a large cap sanity check:
        // nothing else is removed.
        let removed = spill_prune(
            &dir,
            &SpillCaps {
                max_bytes: u64::MAX,
                max_age_secs: Some(3600),
            },
        );
        assert_eq!(removed, 0);
        // clear() removes the rest.
        assert_eq!(spill_clear(&dir).unwrap(), 2);
        assert_eq!(spill_usage(&dir), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_spares_fresh_tmp_files() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-tmpgrace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for n in 0..2 {
            spill_write(&dir, &key(n), &sample_transformed(n as i128)).unwrap();
        }
        // Another process's in-flight write, seconds from its rename.
        let tmp = dir.join("inflight.tmp-424242");
        std::fs::write(&tmp, "{\"version\": 1").unwrap();
        // Size pass under a zero byte cap: real entries go, tmp stays.
        let removed = spill_prune(
            &dir,
            &SpillCaps {
                max_bytes: 0,
                max_age_secs: None,
            },
        );
        assert_eq!(removed, 2, "only the finished entries are prunable");
        assert!(tmp.exists(), "fresh tmp survives the size pass");
        // Age pass: older than the age cap but inside the tmp grace
        // window must still survive.
        let backdate = |secs: u64| {
            let then = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
            std::fs::File::options()
                .write(true)
                .open(&tmp)
                .unwrap()
                .set_modified(then)
                .unwrap();
        };
        backdate(TMP_GRACE_SECS / 2);
        let removed = spill_prune(
            &dir,
            &SpillCaps {
                max_bytes: u64::MAX,
                max_age_secs: Some(1),
            },
        );
        assert_eq!(removed, 0, "in-grace tmp survives the age pass");
        assert!(tmp.exists());
        // Past the grace window it is an orphan from a crashed writer
        // and pruning reclaims it.
        backdate(TMP_GRACE_SECS + 5);
        let removed = spill_prune(
            &dir,
            &SpillCaps {
                max_bytes: 0,
                max_age_secs: None,
            },
        );
        assert_eq!(removed, 1, "expired tmp is reclaimed");
        assert!(!tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_write_retry_rescues_a_transient_fault() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-wretry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let site = "cache.spill_write";
        // install() resets visit counters, so the first attempt is
        // visit 1: it injects, the retry (visit 2) does not.
        fault::install(spill_plan(one_shot_fault_seed(site, 500), 500, site));
        let t = sample_transformed(3);
        assert!(
            spill_write(&dir, &key(3), &t).is_ok(),
            "one transient fault must be absorbed by the retry"
        );
        fault::reset_to_env();
        assert_eq!(spill_read(&dir, &key(3)), SpillOutcome::Hit(Box::new(t)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_write_surfaces_persistent_faults() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-wfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Rate 1000: every attempt injects; the bounded retry must give
        // up rather than spin.
        fault::install(spill_plan(7, 1000, "cache.spill_write"));
        let err = spill_write(&dir, &key(5), &sample_transformed(5));
        fault::reset_to_env();
        assert!(
            err.is_err(),
            "persistent faults surface after {SPILL_IO_ATTEMPTS} attempts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_read_retry_rescues_then_persistent_fault_misses() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-rretry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample_transformed(8);
        spill_write(&dir, &key(8), &t).unwrap();
        let site = "cache.spill_read";
        // One transient unreadable-file fault: the retry recovers the hit.
        fault::install(spill_plan(one_shot_fault_seed(site, 500), 500, site));
        assert_eq!(
            spill_read(&dir, &key(8)),
            SpillOutcome::Hit(Box::new(t)),
            "one transient read fault must be absorbed by the retry"
        );
        // Persistent unreadability degrades to a miss, never an error.
        fault::install(spill_plan(7, 1000, site));
        assert_eq!(spill_read(&dir, &key(8)), SpillOutcome::Miss);
        fault::reset_to_env();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_entry_is_clean_miss_without_retry_or_quarantine() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-prace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // An entry another shard just validated…
        let k = key(12);
        spill_write(&dir, &k, &sample_transformed(12)).unwrap();
        // …then its amortized prune deletes before our read gets there.
        std::fs::remove_file(dir.join(format!("{}.json", k.file_stem()))).unwrap();
        let prev = wf_harness::obs::enabled();
        wf_harness::obs::set_enabled(prev | wf_harness::obs::METRICS);
        let before = wf_harness::obs::metrics().counter("cache.spill_retry");
        let mut c = ScheduleCache::new(4).with_spill_dir(dir.clone());
        let hit = c.lookup(&k);
        let after = wf_harness::obs::metrics().counter("cache.spill_retry");
        wf_harness::obs::set_enabled(prev);
        assert!(hit.is_none());
        assert_eq!(after - before, 0, "ENOENT must not burn spill retries");
        let s = c.stats();
        assert_eq!(
            (s.spill_quarantined, s.misses, s.spill_hits),
            (0, 1, 0),
            "a pruned entry is a clean miss, never a quarantine"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fault_then_prune_race_reads_as_clean_miss() {
        let _gate = fault_gate();
        let dir = std::env::temp_dir().join(format!("wf-cache-fprace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let k = key(13);
        spill_write(&dir, &k, &sample_transformed(13)).unwrap();
        let site = "cache.spill_read";
        // Attempt 1 hits a transient fault; by the retry the file has
        // been pruned by a sibling process. The retry must discover the
        // ENOENT and stop cleanly rather than keep retrying or
        // quarantine anything.
        fault::install(spill_plan(one_shot_fault_seed(site, 500), 500, site));
        std::fs::remove_file(dir.join(format!("{}.json", k.file_stem()))).unwrap();
        let outcome = spill_read(&dir, &k);
        fault::reset_to_env();
        assert_eq!(outcome, SpillOutcome::Miss);
        assert!(
            !dir.join(format!("{}.json.quarantined", k.file_stem()))
                .exists(),
            "nothing to quarantine when the entry is simply gone"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_rename_race_is_clean_miss() {
        let dir = std::env::temp_dir().join(format!("wf-cache-qrace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // The corrupt file vanished between our read and the quarantine
        // rename (a sibling pruned or quarantined it first).
        let path = dir.join("gone.json");
        assert_eq!(quarantine_corrupt(&path), SpillOutcome::Miss);
        assert!(!path.with_extension("json.quarantined").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_covers_every_knob() {
        let base = PlutoConfig::default();
        let fp = config_fingerprint(&base);
        let variants = [
            PlutoConfig {
                coeff_bound: base.coeff_bound + 1,
                ..base
            },
            PlutoConfig {
                shift_bound: base.shift_bound + 1,
                ..base
            },
            PlutoConfig {
                u_bound: base.u_bound + 1,
                ..base
            },
            PlutoConfig {
                w_bound: base.w_bound + 1,
                ..base
            },
            PlutoConfig {
                max_iters: base.max_iters + 1,
                ..base
            },
            PlutoConfig {
                ilp_node_budget: base.ilp_node_budget + 1,
                ..base
            },
            PlutoConfig {
                ilp_cell_budget: base.ilp_cell_budget + 1,
                ..base
            },
            PlutoConfig {
                max_fusion_width: base.max_fusion_width + 1,
                ..base
            },
        ];
        for v in &variants {
            assert_ne!(config_fingerprint(v), fp, "knob not fingerprinted: {v:?}");
        }
    }
}
