//! Algorithm 2: enabling outer-level parallelism.
//!
//! The pre-fusion schedule from Algorithm 1 maximizes reuse, but merging
//! statements into one loop nest can introduce a *forward* loop-carried
//! dependence at the outermost loop — legal (pipelined parallel) yet far
//! from optimal because of per-wavefront communication. Algorithm 2
//! inspects the first non-serial hyperplane the ILP finds: every dependence
//! that is (a) not yet satisfied, (b) between two *different* SCCs in the
//! same fusion partition, and (c) forward at that hyperplane
//! (`φ_Sj(t) − φ_Si(s) > 0` for some instance, Eq. 5) triggers a cut
//! between exactly those two SCCs. The hyperplane is then re-solved with the
//! updated DDG; because only the offending SCCs are distributed, data-reuse
//! loss is minimal (contrast PLuTo's shift-and-fuse which serializes the
//! outer loop, Fig. 4c vs Fig. 6).

use wf_harness::obs;
use wf_linalg::Rat;
use wf_polyhedra::poly::Extremum;
use wf_schedule::pluto::{rows_summary, SchedState};
use wf_schedule::transform::StmtRow;

/// Inspect a candidate outermost hyperplane; return the cut boundaries that
/// restore outer-loop parallelism (empty = hyperplane is already parallel).
#[must_use]
pub fn algorithm2(state: &SchedState<'_>, rows: &[StmtRow]) -> Vec<usize> {
    // Collect the position intervals (pos_src, pos_dst] of every forward
    // dependence between distinct, co-located SCCs.
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    for &e in &state.unsatisfied() {
        let edge = &state.ddg.edges[e];
        let (ca, cb) = (state.sccs.scc_of[edge.src], state.sccs.scc_of[edge.dst]);
        if ca == cb {
            // Intra-SCC dependences cannot be cut away; if they serialize
            // the loop, pipelining is the best anyone can do.
            continue;
        }
        if state.partition_of_scc(ca) != state.partition_of_scc(cb) {
            continue; // already distributed
        }
        let delta = state.delta_max(edge, rows);
        let forward = match delta {
            Extremum::Value(v) => v > Rat::ZERO,
            Extremum::Unbounded => true,
            Extremum::Empty => false,
        };
        if forward {
            if obs::decisions_on() {
                obs::decision(
                    "alg2.cut",
                    format!(
                        "forward loop-carried dependence {} -> {} (SCC {ca} -> SCC {cb}, \
                         max delta {delta:?}) would serialize the fused outer loop; \
                         cutting between the two SCCs (Algorithm 2)",
                        state.scop.statements[edge.src].name, state.scop.statements[edge.dst].name
                    ),
                    vec![
                        (
                            "dependence",
                            format!(
                                "{} -> {}",
                                state.scop.statements[edge.src].name,
                                state.scop.statements[edge.dst].name
                            ),
                        ),
                        ("sccs", format!("{ca} -> {cb}")),
                        ("delta_max", format!("{delta:?}")),
                        ("hyperplane_before", rows_summary(rows)),
                    ],
                );
            }
            intervals.push((state.pos[ca], state.pos[cb]));
        }
    }
    // Minimal distribution: one boundary per *uncovered* interval, placed
    // right before the target SCC so later (larger-source) intervals can
    // share it. This is the "cut between the SCCs carrying the actual
    // dependence and not arbitrarily" of §4.2.
    intervals.sort_unstable_by_key(|&(_, d)| d);
    let mut cuts: Vec<usize> = Vec::new();
    for (src, dst) in intervals {
        if !cuts.iter().any(|&b| src < b && b <= dst) {
            cuts.push(dst);
        }
    }
    cuts.sort_unstable();
    cuts
}
