//! Algorithm 1: finding a good pre-fusion schedule.
//!
//! The ordering of the SCCs ("pre-fusion schedule") decides which SCCs
//! survive the dimensionality-based cuts issued during hyperplane search and
//! hence which statements end up fused. Algorithm 1 orders SCCs by three
//! criteria (§4.1):
//!
//! * **Constraint** — the precedence constraint must hold (the order is a
//!   topological order of the SCC condensation);
//! * **Heuristic 1** — SCCs that allow data reuse (through true *or input*
//!   dependences) and have the same dimensionality are ordered
//!   consecutively;
//! * **Heuristic 2** — SCCs are considered for re-ordering in original
//!   program order.

use wf_deps::{Ddg, SccInfo};
use wf_harness::obs;
use wf_scop::Scop;

/// Compute the wisefuse pre-fusion schedule: a permutation of the canonical
/// SCC ids (a topological order of the condensation).
///
/// This is Algorithm 1 of the paper, lifted from statements to SCCs: walk
/// statements in program order; each time an unplaced statement is found,
/// place its SCC and then greedily append every still-unplaced SCC that
/// (same dimensionality) ∧ (reuse with the statements already in the
/// cluster) ∧ (all dependence predecessors placed), scanning candidates in
/// program order.
#[must_use]
pub fn algorithm1(scop: &Scop, ddg: &Ddg, sccs: &SccInfo) -> Vec<usize> {
    let n = scop.n_statements();
    let depths: Vec<usize> = scop.statements.iter().map(|s| s.depth).collect();
    let n_sccs = sccs.len();
    let mut placed = vec![false; n_sccs];
    let mut order: Vec<usize> = Vec::with_capacity(n_sccs);

    // Predecessor SCCs of each SCC (for the precedence check).
    let mut preds: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n_sccs];
    for e in &ddg.edges {
        let (a, b) = (sccs.scc_of[e.src], sccs.scc_of[e.dst]);
        if a != b {
            preds[b].insert(a);
        }
    }
    let ready = |c: usize, placed: &[bool]| preds[c].iter().all(|&p| placed[p]);

    while order.len() < n_sccs {
        // Seed: first statement (program order) whose SCC is unplaced and
        // whose predecessors are all placed.
        let seed = (0..n)
            .map(|s| sccs.scc_of[s])
            .find(|&c| !placed[c] && ready(c, &placed))
            .expect("condensation is acyclic, a ready SCC always exists");
        placed[seed] = true;
        order.push(seed);
        let seed_dim = sccs.dimensionality(seed, &depths);
        if obs::decisions_on() {
            let first = sccs.members[seed][0];
            obs::decision(
                "alg1.seed",
                format!(
                    "seeded cluster with SCC {seed} ({}): earliest unplaced ready \
                     statement in program order (Heuristic 2), dimensionality {seed_dim}",
                    scop.statements[first].name
                ),
                vec![
                    ("scc", seed.to_string()),
                    ("statement", scop.statements[first].name.clone()),
                    ("dim", seed_dim.to_string()),
                ],
            );
        }
        let mut fusable: Vec<usize> = sccs.members[seed].clone();

        // Greedy extension: statements t in program order whose SCC is
        // unplaced, has the seed's dimensionality, has reuse with the
        // fusable set, and satisfies the precedence constraint.
        let mut changed = true;
        while changed {
            changed = false;
            for t in 0..n {
                let ct = sccs.scc_of[t];
                if placed[ct] || sccs.dimensionality(ct, &depths) != seed_dim || !ready(ct, &placed)
                {
                    continue;
                }
                let reuse_pair = fusable.iter().find_map(|&i| {
                    sccs.members[ct]
                        .iter()
                        .find(|&&j| ddg.has_reuse(i, j))
                        .map(|&j| (i, j))
                });
                let Some((ri, rj)) = reuse_pair else {
                    continue;
                };
                if obs::decisions_on() {
                    obs::decision(
                        "alg1.fuse",
                        format!(
                            "appended SCC {ct} ({}) to the cluster: data reuse between \
                             {} and {} with matching dimensionality {seed_dim} (Heuristic 1)",
                            scop.statements[t].name,
                            scop.statements[ri].name,
                            scop.statements[rj].name
                        ),
                        vec![
                            ("scc", ct.to_string()),
                            ("statement", scop.statements[t].name.clone()),
                            (
                                "reuse_edge",
                                format!(
                                    "{} -> {}",
                                    scop.statements[ri].name, scop.statements[rj].name
                                ),
                            ),
                            ("dim", seed_dim.to_string()),
                        ],
                    );
                }
                placed[ct] = true;
                order.push(ct);
                fusable.extend_from_slice(&sccs.members[ct]);
                changed = true;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_deps::{analyze, tarjan};
    use wf_scop::{Aff, Expr, ScopBuilder};

    /// Three independent 2-D statements reading the same array (pure RAR
    /// reuse), with an unrelated 1-D statement between S1 and S2 in program
    /// order. Algorithm 1 must order the three 2-D SCCs consecutively
    /// despite the interloper; a reuse-blind order would leave them where
    /// program order puts them.
    #[test]
    fn rar_reuse_groups_same_dimensionality() {
        let mut b = ScopBuilder::new("rar3", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let src = b.array("P", &[Aff::param(0), Aff::param(0)]);
        let o1 = b.array("U", &[Aff::param(0), Aff::param(0)]);
        let bnd = b.array("E", &[Aff::param(0)]);
        let o2 = b.array("V", &[Aff::param(0), Aff::param(0)]);
        let o3 = b.array("W", &[Aff::param(0), Aff::param(0)]);
        let idx = [Aff::iter(0), Aff::iter(1)];
        b.stmt("S1", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(o1, &idx.clone())
            .read(src, &idx.clone())
            .rhs(Expr::Load(0))
            .done();
        // Interloper: 1-D statement touching an unrelated array.
        b.stmt("SB", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(bnd, &[Aff::iter(0)])
            .rhs(Expr::Const(0.0))
            .done();
        b.stmt("S2", 2, &[2, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(o2, &idx.clone())
            .read(src, &idx.clone())
            .rhs(Expr::Load(0))
            .done();
        b.stmt("S3", 2, &[3, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(o3, &idx.clone())
            .read(src, &idx)
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let sccs = tarjan(&ddg);
        assert_eq!(sccs.len(), 4, "four singleton SCCs");
        let order = algorithm1(&scop, &ddg, &sccs);
        // Positions of the three 2-D statements' SCCs must be consecutive.
        let pos_of_stmt = |s: usize| order.iter().position(|&c| c == sccs.scc_of[s]).unwrap();
        let (p1, p2, p3) = (pos_of_stmt(0), pos_of_stmt(2), pos_of_stmt(3));
        let (lo, hi) = (p1.min(p2).min(p3), p1.max(p2).max(p3));
        assert_eq!(hi - lo, 2, "2-D reuse SCCs consecutive: order {order:?}");
        // And the interloper is pushed outside the cluster.
        let pb = pos_of_stmt(1);
        assert!(pb < lo || pb > hi, "interloper inside cluster: {order:?}");
    }

    /// Without reuse there is nothing to group: pure program order results.
    #[test]
    fn no_reuse_keeps_program_order() {
        let mut b = ScopBuilder::new("indep", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        for (beta0, name) in ["A", "B", "C"].iter().enumerate() {
            let arr = b.array(name, &[Aff::param(0)]);
            b.stmt(&format!("S{name}"), 1, &[beta0, 0])
                .bounds(0, Aff::zero(), Aff::param(0) - 1)
                .write(arr, &[Aff::iter(0)])
                .rhs(Expr::Const(1.0))
                .done();
        }
        let scop = b.build();
        let ddg = analyze(&scop);
        let sccs = tarjan(&ddg);
        let order = algorithm1(&scop, &ddg, &sccs);
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Precedence constraint: an SCC whose producer is unplaced cannot be
    /// pulled forward even with reuse.
    #[test]
    fn precedence_blocks_early_placement() {
        let mut b = ScopBuilder::new("prec", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let p = b.array("P", &[Aff::param(0)]);
        let q = b.array("Q", &[Aff::param(0)]);
        let r = b.array("R", &[Aff::param(0)]);
        // S0 reads A (reuse partner for S2).
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(p, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        // S1 produces Q.
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(q, &[Aff::iter(0)])
            .rhs(Expr::Const(2.0))
            .done();
        // S2 reads A (reuse with S0) but also Q (depends on S1).
        b.stmt("S2", 1, &[2, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(r, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0)])
            .read(q, &[Aff::iter(0)])
            .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let sccs = tarjan(&ddg);
        let order = algorithm1(&scop, &ddg, &sccs);
        let pos = |s: usize| order.iter().position(|&c| c == sccs.scc_of[s]).unwrap();
        assert!(
            pos(1) < pos(2),
            "S2 cannot precede its producer S1: {order:?}"
        );
    }

    /// Dimensionality heuristic: a same-dim SCC with reuse is preferred even
    /// when a different-dim SCC with reuse sits earlier in program order.
    #[test]
    fn same_dimensionality_preferred() {
        let mut b = ScopBuilder::new("dims", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0), Aff::param(0)]);
        let o1 = b.array("O1", &[Aff::param(0), Aff::param(0)]);
        let o2 = b.array("O2", &[Aff::param(0)]);
        let o3 = b.array("O3", &[Aff::param(0), Aff::param(0)]);
        // S0: 2-D reads A.
        b.stmt("S0", 2, &[0, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(o1, &[Aff::iter(0), Aff::iter(1)])
            .read(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Load(0))
            .done();
        // S1: 1-D also reads A (reuse but wrong dimensionality).
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(o2, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0), Aff::zero()])
            .rhs(Expr::Load(0))
            .done();
        // S2: 2-D reads A (reuse, same dimensionality as S0).
        b.stmt("S2", 2, &[2, 0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .bounds(1, Aff::zero(), Aff::param(0) - 1)
            .write(o3, &[Aff::iter(0), Aff::iter(1)])
            .read(a, &[Aff::iter(0), Aff::iter(1)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let sccs = tarjan(&ddg);
        let order = algorithm1(&scop, &ddg, &sccs);
        let pos = |s: usize| order.iter().position(|&c| c == sccs.scc_of[s]).unwrap();
        assert_eq!(pos(2), pos(0) + 1, "S2 pulled next to S0: {order:?}");
        assert!(pos(1) > pos(2), "1-D S1 ordered after the 2-D cluster");
    }

    /// The order is always a legal topological order, on every fixture.
    #[test]
    fn order_is_topological() {
        // Chain with a cycle in the middle.
        let mut b = ScopBuilder::new("cyc", &["N"]);
        b.context_ge(Aff::param(0) - 4);
        let a = b.array("A", &[Aff::param(0)]);
        let c = b.array("C", &[Aff::param(0)]);
        b.stmt("S0", 1, &[0, 0])
            .bounds(0, Aff::zero(), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .rhs(Expr::Const(1.0))
            .done();
        // S1/S2 form a cycle through A and C (carried).
        b.stmt("S1", 1, &[1, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .write(c, &[Aff::iter(0)])
            .read(a, &[Aff::iter(0) - 1])
            .rhs(Expr::Load(0))
            .done();
        b.stmt("S2", 1, &[2, 0])
            .bounds(0, Aff::konst(1), Aff::param(0) - 1)
            .write(a, &[Aff::iter(0)])
            .read(c, &[Aff::iter(0)])
            .rhs(Expr::Load(0))
            .done();
        let scop = b.build();
        let ddg = analyze(&scop);
        let sccs = tarjan(&ddg);
        let order = algorithm1(&scop, &ddg, &sccs);
        let mut pos = vec![0usize; sccs.len()];
        for (p, &cid) in order.iter().enumerate() {
            pos[cid] = p;
        }
        for e in &ddg.edges {
            let (x, y) = (sccs.scc_of[e.src], sccs.scc_of[e.dst]);
            if x != y {
                assert!(pos[x] < pos[y], "edge {} -> {} reordered", e.src, e.dst);
            }
        }
    }
}
