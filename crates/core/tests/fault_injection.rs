//! Deterministic fault-injection property tests for the whole pipeline
//! (tentpole part 5 of the robustness PR).
//!
//! One seeded [`FaultPlan`] at a time is installed over the pipeline's
//! three crash-prone seams — cache-spill I/O, worker-job panics, and ILP
//! budget exhaustion — and the properties checked are:
//!
//! 1. **no panic ever escapes** `Optimizer::run_all`, under any of the
//!    ≥100 seeds (injected worker panics surface as per-model
//!    [`WfError::JobPanic`] slots);
//! 2. every fault surfaces as a **typed, degradable error** (never
//!    `Parse`/`Io`/`Invalid`, which would mislabel an injected fault);
//! 3. with [`Optimizer::fallback`], every slot is `Ok` — recoverable
//!    faults degrade to the original-program-order schedule and say so in
//!    [`Optimized::degraded`];
//! 4. injection is **deterministic**: the same seed over a serial run
//!    reproduces the same per-model outcomes;
//! 5. after `fault::disable()` the pipeline's results are **identical**
//!    to the pre-fault baseline (fault machinery has zero residue);
//! 6. forced solver-memo misses (`polyhedra.memo` Io faults) are
//!    **unobservable** in results: a forced-miss run is byte-identical
//!    to the warm run it shadows.
//!
//! Everything lives in a single `#[test]` because the fault plan, the
//! schedule cache, and `WF_CACHE_DIR` are process-global; parallel test
//! threads would race on them.

use std::panic::{self, AssertUnwindSafe};
use wf_harness::fault::{self, FaultPlan};
use wf_runtime::{ExecContext, ProgramData};
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::{cache, plan_from_optimized, Model, Optimized, Optimizer, WfError};

/// Two producer/consumer statements — small enough that 240 fault runs
/// stay fast, real enough that every seam (dependence ILP, fusion ILP,
/// pool jobs, cache spill) is exercised.
fn small_scop() -> Scop {
    let mut b = ScopBuilder::new("faulty", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(2.0)))
        .done();
    b.build()
}

type Runs = Vec<(Model, Result<Optimized, WfError>)>;

fn run_all(scop: &Scop, threads: usize, fallback: bool, cached: bool) -> Runs {
    let mut o = Optimizer::new(scop).threads(threads);
    if fallback {
        o = o.fallback();
    }
    if !cached {
        o = o.cache_off();
    }
    o.run_all()
}

fn same_runs(a: &Runs, b: &Runs) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ma, ra), (mb, rb))| {
            ma == mb
                && match (ra, rb) {
                    (Ok(x), Ok(y)) => {
                        x.transformed == y.transformed
                            && x.props == y.props
                            && x.degraded == y.degraded
                    }
                    (Err(x), Err(y)) => x == y,
                    _ => false,
                }
        })
}

#[test]
fn pipeline_survives_every_injected_fault() {
    // Route the spill through a scratch dir so `cache.spill_read` /
    // `cache.spill_write` faults actually fire (safe: this test binary is
    // its own process and this is its only test).
    let spill = std::env::temp_dir().join(format!("wf-fault-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    std::fs::create_dir_all(&spill).expect("scratch spill dir");
    std::env::set_var("WF_CACHE_DIR", &spill);

    let scop = small_scop();

    // Fault-free baseline, cache bypassed so later cache traffic cannot
    // influence the byte-identity check in property 5.
    fault::disable();
    let baseline = run_all(&scop, 1, false, false);
    for (m, r) in &baseline {
        assert!(r.is_ok(), "{m:?} must schedule fault-free");
    }

    // Silence the default per-panic backtrace spew for the ~hundreds of
    // injected panics; restored before the test returns.
    let quiet = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let (mut errs, mut panics, mut budgets, mut degraded) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..120u64 {
        // Strict pass: faults must surface as typed, degradable errors.
        cache::clear(); // force spill reads so Io sites are consulted
        fault::install(FaultPlan::all(seed, 300));
        let runs = panic::catch_unwind(AssertUnwindSafe(|| run_all(&scop, 4, false, true)))
            .unwrap_or_else(|_| panic!("seed {seed}: a panic escaped run_all"));
        assert_eq!(runs.len(), Model::ALL.len());
        for (m, r) in &runs {
            if let Err(e) = r {
                errs += 1;
                assert!(
                    e.is_degradable(),
                    "seed {seed}: {m:?} surfaced a non-degradable {e:?} for an injected fault"
                );
                match e {
                    WfError::JobPanic { .. } => panics += 1,
                    WfError::Budget { .. } => budgets += 1,
                    _ => {}
                }
            }
        }

        // Fallback pass: the same fault climate, but every slot must come
        // back Ok — degraded slots say why.
        cache::clear();
        fault::install(FaultPlan::all(seed, 300));
        let runs = panic::catch_unwind(AssertUnwindSafe(|| run_all(&scop, 4, true, true)))
            .unwrap_or_else(|_| panic!("seed {seed}: a panic escaped the fallback run"));
        for (m, r) in &runs {
            let opt = r
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed}: {m:?} not degraded under fallback: {e}"));
            if let Some(reason) = &opt.degraded {
                degraded += 1;
                assert!(
                    reason.contains(m.name()),
                    "degradation note must name the model: {reason}"
                );
            }
        }
    }

    // At a 30% per-visit rate over 120 seeds the harness must actually
    // have fired every fault class it claims to cover.
    assert!(errs > 0, "no injected fault ever surfaced");
    assert!(panics > 0, "no injected job panic was contained");
    assert!(budgets > 0, "no injected budget exhaustion surfaced");
    assert!(degraded > 0, "no fallback degradation ever happened");

    // Property 4: serial + same seed => byte-identical outcomes, errors
    // included.
    fault::install(FaultPlan::all(42, 300));
    let first = run_all(&scop, 1, false, false);
    fault::install(FaultPlan::all(42, 300));
    let second = run_all(&scop, 1, false, false);
    assert!(
        same_runs(&first, &second),
        "seed 42 must reproduce identical injections on a serial run"
    );

    // Property 4b: the pooled executor under site-targeted partition
    // faults. Panics injected at `runtime.partition` must surface as
    // typed degradable `JobPanic` errors, never escape, reproduce under
    // the same seed, and leave no residue once disabled.
    fault::disable();
    let opt = wf_wisefuse::optimize(&scop, Model::Wisefuse).expect("wisefuse fault-free");
    let plan = plan_from_optimized(&scop, &opt);
    let mut init = ProgramData::new(&scop, &[32]);
    init.init_random(11);
    let mut expected = init.clone();
    ExecContext::with_threads(4)
        .execute(&scop, &opt.transformed, &plan, &mut expected)
        .expect("fault-free pooled execution");

    let mut exec_panics = 0u32;
    let exec_under = |seed: u64, threads: usize, init: &ProgramData| {
        fault::install(FaultPlan {
            site: Some("runtime.partition".to_string()),
            ..FaultPlan::all(seed, 300)
        });
        let mut data = init.clone();
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            ExecContext::with_threads(threads).execute(&scop, &opt.transformed, &plan, &mut data)
        }))
        .unwrap_or_else(|_| panic!("seed {seed}: a partition panic escaped the executor"));
        (r, data)
    };
    for seed in 0..120u64 {
        let (r, data) = exec_under(seed, 4, &init);
        match r {
            Ok(()) => assert!(
                data == expected,
                "seed {seed}: un-faulted pooled run diverged"
            ),
            Err(e) => {
                exec_panics += 1;
                assert!(
                    matches!(e, WfError::JobPanic { .. }) && e.is_degradable(),
                    "seed {seed}: injected partition fault surfaced as {e:?}"
                );
            }
        }
    }
    assert!(
        exec_panics > 0,
        "no partition fault ever fired in 120 seeds"
    );
    let (first_exec, _) = exec_under(42, 4, &init);
    let (second_exec, _) = exec_under(42, 4, &init);
    assert_eq!(
        first_exec.is_ok(),
        second_exec.is_ok(),
        "seed 42 must reproduce the same executor outcome"
    );

    // Property 4c: the solver memo under site-targeted forced misses.
    // An Io fault at `polyhedra.memo` makes a memo lookup miss and
    // re-solve cold; since hits are byte-identical to cold solves by
    // construction, every forced-miss run must reproduce the warm
    // baseline exactly — the memo can change timings, never results.
    fault::disable();
    let warm = run_all(&scop, 1, false, false);
    let memo_before = wf_polyhedra::memo::stats();
    for seed in 0..120u64 {
        fault::install(FaultPlan {
            site: Some("polyhedra.memo".to_string()),
            ..FaultPlan::all(seed, 300)
        });
        let forced = run_all(&scop, 1, false, false);
        assert!(
            same_runs(&warm, &forced),
            "seed {seed}: memo-forced-miss run diverged from the warm run"
        );
    }
    fault::disable();
    let memo_after = wf_polyhedra::memo::stats();
    assert!(
        memo_after.misses > memo_before.misses,
        "no forced memo miss ever fired across 120 seeds ({memo_before:?} -> {memo_after:?})"
    );

    panic::set_hook(quiet);

    // Property 5: faults off => results identical to the pre-fault
    // baseline; the injection machinery leaves no residue.
    fault::disable();
    let replay = run_all(&scop, 1, false, false);
    assert!(
        same_runs(&baseline, &replay),
        "fault-free replay diverged from the pre-fault baseline"
    );

    // And the spill survives the abuse: a fault-free cached run still
    // schedules everything (corrupt entries were quarantined, not fatal).
    cache::clear();
    let cached = run_all(&scop, 4, false, true);
    for (m, r) in &cached {
        assert!(r.is_ok(), "{m:?} failed through the post-fault spill");
    }

    std::env::remove_var("WF_CACHE_DIR");
    let _ = std::fs::remove_dir_all(&spill);
}
