//! Pipeline-level observability contracts: enabling any instrument never
//! changes schedules, and the fusion decision log is deterministic across
//! worker counts. The obs switchboard is process-global, so these tests
//! serialize on one lock and reset state around each body.

use std::sync::Mutex;
use wf_harness::obs;
use wf_scop::{Aff, Expr, Scop, ScopBuilder};
use wf_wisefuse::{Model, Optimizer};

static LOCK: Mutex<()> = Mutex::new(());

fn exclusive(f: impl FnOnce()) {
    let _guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = obs::enabled();
    let reset = || {
        obs::set_enabled(0);
        let _ = obs::take_events();
        let _ = obs::drain_decisions();
        obs::reset_metrics();
        let _ = obs::stream_close();
        wf_harness::attr::reset();
    };
    reset();
    f();
    reset();
    obs::set_enabled(prev);
}

/// Producer/consumer with reuse, no loop-carried dependence: Algorithm 1
/// fuses the two SCCs and the fused loop stays parallel.
fn fusable_scop() -> Scop {
    let mut b = ScopBuilder::new("fusable", &["N"]);
    b.context_ge(Aff::param(0) - 4);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(c, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0)])
        .rhs(Expr::mul(Expr::Load(0), Expr::Const(2.0)))
        .done();
    b.build()
}

/// Producer/consumer where the consumer reads a *symmetric* stencil
/// `A[i-1] + A[i+1]` (the advect trap, in 1-D): no shift aligns both
/// offsets, so fusing the two SCCs puts a forward loop-carried dependence
/// on the outer loop — exactly what Algorithm 2 cuts.
fn forward_dep_scop() -> Scop {
    let mut b = ScopBuilder::new("fwd", &["N"]);
    b.context_ge(Aff::param(0) - 8);
    let a = b.array("A", &[Aff::param(0)]);
    let c = b.array("C", &[Aff::param(0)]);
    b.stmt("S0", 1, &[0, 0])
        .bounds(0, Aff::zero(), Aff::param(0) - 1)
        .write(a, &[Aff::iter(0)])
        .rhs(Expr::Iter(0))
        .done();
    b.stmt("S1", 1, &[1, 0])
        .bounds(0, Aff::konst(1), Aff::param(0) - 2)
        .write(c, &[Aff::iter(0)])
        .read(a, &[Aff::iter(0) - 1])
        .read(a, &[Aff::iter(0) + 1])
        .rhs(Expr::add(Expr::Load(0), Expr::Load(1)))
        .done();
    b.build()
}

#[test]
fn traced_schedules_are_byte_identical_to_untraced() {
    exclusive(|| {
        let scop = fusable_scop();
        let names: Vec<String> = scop.statements.iter().map(|s| s.name.clone()).collect();
        let mut plain = Vec::new();
        for model in Model::ALL {
            let opt = Optimizer::new(&scop)
                .cache_off()
                .model(model)
                .run()
                .expect("schedulable");
            plain.push((opt.transformed.clone(), opt.props.clone()));
        }
        obs::set_enabled(obs::TRACE | obs::METRICS | obs::DECISIONS);
        // The untraced loop warmed the solver memo; clear it so the traced
        // pass actually solves and the `ilp.solves` counter moves.
        wf_polyhedra::memo::clear();
        for (model, (t, p)) in Model::ALL.into_iter().zip(&plain) {
            let opt = Optimizer::new(&scop)
                .cache_off()
                .model(model)
                .run()
                .expect("schedulable");
            assert_eq!(
                &opt.transformed, t,
                "{model:?}: tracing changed the schedule"
            );
            assert_eq!(&opt.props, p, "{model:?}: tracing changed properties");
            assert_eq!(
                opt.transformed.schedule.render(&names),
                t.schedule.render(&names),
                "{model:?}: rendered schedules differ traced vs untraced"
            );
        }
        // And the instruments did actually record something.
        assert!(!obs::take_events().is_empty(), "spans were recorded");
        assert!(obs::metrics().counter("ilp.solves") > 0, "metrics moved");
        assert!(!obs::drain_decisions().is_empty(), "decisions were logged");
    });
}

#[test]
fn decision_log_is_deterministic_across_worker_counts() {
    exclusive(|| {
        let scop = forward_dep_scop();
        obs::set_enabled(obs::DECISIONS);
        let serial = Optimizer::new(&scop).cache_off().threads(1).run_all();
        let d1 = obs::drain_decisions();
        let parallel = Optimizer::new(&scop).cache_off().threads(4).run_all();
        let d4 = obs::drain_decisions();
        assert!(!d1.is_empty(), "scheduling logged decisions");
        assert_eq!(d1, d4, "decision log depends on the worker count");
        for ((ms, rs), (mp, rp)) in serial.iter().zip(&parallel) {
            assert_eq!(ms, mp);
            assert_eq!(
                rs.as_ref().unwrap().transformed,
                rp.as_ref().unwrap().transformed
            );
        }
    });
}

#[test]
fn forward_dependence_yields_an_algorithm2_cut_decision() {
    exclusive(|| {
        let scop = forward_dep_scop();
        obs::set_enabled(obs::DECISIONS);
        let opt = Optimizer::new(&scop)
            .cache_off()
            .model(Model::Wisefuse)
            .run()
            .expect("schedulable");
        let decisions = obs::drain_decisions();
        let wisefuse: Vec<_> = decisions.iter().filter(|d| d.scope == "wisefuse").collect();
        assert!(
            wisefuse.iter().any(|d| d.kind == "alg1.seed"),
            "Algorithm 1 rationale missing: {wisefuse:?}"
        );
        let cut = wisefuse
            .iter()
            .find(|d| d.kind == "alg2.cut")
            .unwrap_or_else(|| panic!("no Algorithm 2 cut recorded: {wisefuse:?}"));
        let data = |k: &str| {
            cut.data
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(data("dependence"), Some("S0 -> S1"), "offending dependence");
        assert!(data("hyperplane_before").is_some());
        // The cut really distributed the two statements.
        assert_eq!(opt.transformed.partitions, vec![0, 1]);
    });
}

#[test]
fn metrics_observe_the_ilp_and_cache() {
    exclusive(|| {
        let scop = fusable_scop();
        obs::set_enabled(obs::METRICS);
        // A sibling test may have warmed the solver memo on this SCoP;
        // clear it so the counters below actually move.
        wf_polyhedra::memo::clear();
        let before = obs::metrics();
        let _ = Optimizer::new(&scop)
            .cache_off()
            .model(Model::Wisefuse)
            .run()
            .expect("schedulable");
        let d = obs::metrics().delta(&before);
        assert!(d.counter("ilp.solves") > 0);
        assert!(d.counter("ilp.nodes") > 0);
        assert!(d.counter("simplex.pivots") > 0);
        assert!(d.counter("deps.analyses") > 0);
        assert!(d.histogram("ilp.nodes_per_solve").is_some());
        // Cached path: a lookup miss then a store, then a hit.
        let before = obs::metrics();
        let _ = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
        let _ = Optimizer::new(&scop).model(Model::Wisefuse).run().unwrap();
        let d = obs::metrics().delta(&before);
        assert!(d.counter("cache.hit") > 0, "second run must hit: {d:?}");
    });
}

#[test]
fn attribution_reconciles_with_the_simplex_cells_counter() {
    exclusive(|| {
        let scop = fusable_scop();
        obs::set_enabled(obs::METRICS);
        wf_polyhedra::memo::clear();
        let m0 = obs::metrics();
        let a0 = wf_harness::attr::snapshot();
        let _ = Optimizer::new(&scop).cache_off().threads(4).run_all();
        let cells = obs::metrics().delta(&m0).counter("simplex.cells");
        let attributed = wf_harness::attr::snapshot().delta(&a0);
        assert!(cells > 0, "the solver did work");
        assert_eq!(
            attributed.total_cells(),
            cells,
            "every simplex cell must be attributed to exactly one cost center"
        );
        // Labels flowed from the pipeline into the rows, including across
        // the pool's worker threads.
        assert!(
            attributed
                .entries
                .iter()
                .all(|(k, _)| k[wf_harness::attr::Slot::Bench as usize] == "fusable"),
            "benchmark label missing on some rows: {attributed:?}"
        );
        assert!(
            attributed
                .entries
                .iter()
                .any(|(k, _)| !k[wf_harness::attr::Slot::Unit as usize].is_empty()),
            "component labels missing: {attributed:?}"
        );
    });
}

#[test]
fn profile_critical_path_is_bounded_by_wall_time() {
    exclusive(|| {
        let scop = fusable_scop();
        obs::set_enabled(obs::TRACE);
        let _ = Optimizer::new(&scop).cache_off().threads(4).run_all();
        let events: Vec<wf_harness::profile::ProfEvent> = obs::take_events()
            .iter()
            .map(wf_harness::profile::ProfEvent::from)
            .collect();
        assert!(!events.is_empty());
        let prof = wf_harness::profile::fold(&events);
        assert!(
            prof.critical_path_us <= prof.wall_us,
            "pool-aware critical path {} exceeds wall {}",
            prof.critical_path_us,
            prof.wall_us
        );
        assert!(prof.spans.contains_key("schedule.model"));
        assert!(!prof.critical_path.is_empty());
    });
}

#[test]
fn streamed_schedules_are_byte_identical_to_unstreamed() {
    exclusive(|| {
        let scop = fusable_scop();
        let names: Vec<String> = scop.statements.iter().map(|s| s.name.clone()).collect();
        let plain = Optimizer::new(&scop)
            .cache_off()
            .model(Model::Wisefuse)
            .run()
            .expect("schedulable");
        // Re-solve with the streaming sink swallowing every span as it
        // closes — the WF_TRACE_STREAM surface.
        obs::set_enabled(obs::TRACE | obs::METRICS);
        let dir = std::env::temp_dir().join(format!("wf-obs-sched-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("stream.jsonl");
        obs::stream_open(path.to_str().unwrap()).unwrap();
        wf_polyhedra::memo::clear();
        let streamed = Optimizer::new(&scop)
            .cache_off()
            .model(Model::Wisefuse)
            .run()
            .expect("schedulable");
        let lines = obs::stream_close().unwrap().expect("stream was open");
        assert!(lines > 0, "spans were streamed");
        assert_eq!(
            streamed.transformed, plain.transformed,
            "streaming changed the schedule"
        );
        assert_eq!(
            streamed.transformed.schedule.render(&names),
            plain.transformed.schedule.render(&names),
            "rendered schedules differ streamed vs unstreamed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}
